//! Umbrella crate for the Concilium reproduction workspace.
//!
//! Re-exports every subsystem crate so that examples and integration tests
//! can use a single dependency. Library users should depend on the
//! individual crates (most commonly [`concilium`]) directly.

#![forbid(unsafe_code)]

pub use concilium;
pub use concilium_crypto as crypto;
pub use concilium_overlay as overlay;
pub use concilium_sim as sim;
pub use concilium_tomography as tomography;
pub use concilium_topology as topology;
pub use concilium_types as types;
