//! Probe trees T_H and their collapsed logical form.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use concilium_topology::IpPath;
use concilium_types::{Id, LinkId, RouterId};

/// The communication tree T_H: the IP paths from a root host to each of
/// its routing peers (§3.2).
///
/// Paths are stored verbatim; [`ProbeTree::logical`] collapses them into
/// the branching-point tree that the MINC estimator needs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProbeTree {
    root: RouterId,
    leaves: Vec<(Id, IpPath)>,
}

impl ProbeTree {
    /// Builds a tree from the root's paths to its peers.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] if no paths are given, a path does not start
    /// at `root`, a trivial (zero-hop) path is supplied, a leaf identifier
    /// repeats, or two paths diverge and later re-merge (which would make
    /// the union a DAG, not a tree — real BFS route sets never do this).
    pub fn from_paths(root: RouterId, leaves: Vec<(Id, IpPath)>) -> Result<Self, TreeError> {
        if leaves.is_empty() {
            return Err(TreeError::Empty);
        }
        let mut seen = Vec::with_capacity(leaves.len());
        for (id, path) in &leaves {
            if path.source() != root {
                return Err(TreeError::WrongRoot { leaf: *id });
            }
            if path.hop_count() == 0 {
                return Err(TreeError::TrivialPath { leaf: *id });
            }
            if seen.contains(id) {
                return Err(TreeError::DuplicateLeaf { leaf: *id });
            }
            seen.push(*id);
        }
        let tree = ProbeTree { root, leaves };
        tree.check_tree_shape()?;
        Ok(tree)
    }

    /// Paths that diverge must never re-merge: for any two paths, once the
    /// routers differ at some depth, they must differ at all later depths.
    fn check_tree_shape(&self) -> Result<(), TreeError> {
        // parent[router] must be unique across all paths.
        let mut parent: HashMap<RouterId, (RouterId, LinkId)> = HashMap::new();
        for (id, path) in &self.leaves {
            let routers = path.routers();
            for (i, &link) in path.links().iter().enumerate() {
                let (from, to) = (routers[i], routers[i + 1]);
                match parent.get(&to) {
                    None => {
                        parent.insert(to, (from, link));
                    }
                    Some(&(pf, pl)) if pf == from && pl == link => {}
                    Some(_) => return Err(TreeError::Remerge { leaf: *id, router: to }),
                }
            }
        }
        Ok(())
    }

    /// The root router (the probing host's attachment point).
    pub fn root(&self) -> RouterId {
        self.root
    }

    /// The (leaf overlay id, path) pairs.
    pub fn leaves(&self) -> &[(Id, IpPath)] {
        &self.leaves
    }

    /// The number of leaves (routing peers).
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// The path to a given leaf, if present.
    pub fn path_to(&self, leaf: Id) -> Option<&IpPath> {
        self.leaves.iter().find(|(id, _)| *id == leaf).map(|(_, p)| p)
    }

    /// The distinct physical links in the tree.
    pub fn link_set(&self) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self
            .leaves
            .iter()
            .flat_map(|(_, p)| p.links().iter().copied())
            .collect();
        links.sort();
        links.dedup();
        links
    }

    /// Collapses the tree to its logical form: maximal unbranched link
    /// segments become single logical edges.
    pub fn logical(&self) -> LogicalTree {
        LogicalTree::from_probe_tree(self)
    }
}

/// A node in a [`LogicalTree`].
#[derive(Clone, Debug, Serialize, Deserialize)]
struct LogicalNode {
    /// Physical links on the segment from the parent node to this node
    /// (empty only for the root).
    segment: Vec<LinkId>,
    children: Vec<usize>,
    /// Index into the leaf list when this node is a leaf.
    leaf: Option<usize>,
}

/// The collapsed (branching-point) form of a probe tree.
///
/// Node 0 is the root. Every other node has exactly one incoming *edge*
/// consisting of one or more physical links with no branching between
/// them; inference estimates one pass rate per edge. Edges are identified
/// by the index of their child node (1-based over nodes, but exposed as
/// `0..num_edges()` mapping to node `edge + 1`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogicalTree {
    nodes: Vec<LogicalNode>,
    /// Leaf overlay ids, in the order used by probe records.
    leaf_ids: Vec<Id>,
    /// For each leaf, the node index where it sits.
    leaf_nodes: Vec<usize>,
}

impl LogicalTree {
    fn from_probe_tree(tree: &ProbeTree) -> Self {
        // Build the full trie keyed by physical link sequence, then
        // collapse unbranched chains.
        #[derive(Default)]
        struct TrieNode {
            children: Vec<(LinkId, usize)>,
            leaf: Option<usize>,
        }
        let mut trie: Vec<TrieNode> = vec![TrieNode::default()];
        let mut leaf_ids = Vec::with_capacity(tree.num_leaves());
        for (leaf_idx, (id, path)) in tree.leaves().iter().enumerate() {
            leaf_ids.push(*id);
            let mut cur = 0usize;
            for &link in path.links() {
                let next = match trie[cur].children.iter().find(|(l, _)| *l == link) {
                    Some(&(_, n)) => n,
                    None => {
                        let n = trie.len();
                        trie.push(TrieNode::default());
                        trie[cur].children.push((link, n));
                        n
                    }
                };
                cur = next;
            }
            trie[cur].leaf = Some(leaf_idx);
        }

        // Collapse: walk from the root; each child subtree becomes a
        // logical node whose segment is the chain of single-child,
        // non-leaf trie nodes.
        let mut nodes = vec![LogicalNode { segment: Vec::new(), children: Vec::new(), leaf: None }];
        let mut leaf_nodes = vec![usize::MAX; leaf_ids.len()];
        // Stack of (trie node, logical parent).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        while let Some((t, parent)) = stack.pop() {
            for &(first_link, mut child) in &trie[t].children {
                let mut segment = vec![first_link];
                // Extend through unbranched, non-leaf chain.
                while trie[child].children.len() == 1 && trie[child].leaf.is_none() {
                    let (l, n) = trie[child].children[0];
                    segment.push(l);
                    child = n;
                }
                let idx = nodes.len();
                nodes.push(LogicalNode {
                    segment,
                    children: Vec::new(),
                    leaf: trie[child].leaf,
                });
                nodes[parent].children.push(idx);
                if let Some(li) = trie[child].leaf {
                    leaf_nodes[li] = idx;
                }
                stack.push((child, idx));
            }
        }
        debug_assert!(leaf_nodes.iter().all(|&n| n != usize::MAX));
        LogicalTree { nodes, leaf_ids, leaf_nodes }
    }

    /// Number of logical nodes (including the root).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of logical edges (= nodes − 1).
    pub fn num_edges(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaf_ids.len()
    }

    /// The overlay ids of the leaves, in probe-record order.
    pub fn leaf_ids(&self) -> &[Id] {
        &self.leaf_ids
    }

    /// The physical links making up logical edge `edge`
    /// (`0 ≤ edge < num_edges()`).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_links(&self, edge: usize) -> &[LinkId] {
        &self.nodes[edge + 1].segment
    }

    /// The child node indices of node `node` (0 = root).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.nodes[node].children
    }

    /// The leaf index at `node`, if that node is a leaf.
    pub fn leaf_at(&self, node: usize) -> Option<usize> {
        self.nodes[node].leaf
    }

    /// The node index where leaf `leaf` sits.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn leaf_node(&self, leaf: usize) -> usize {
        self.leaf_nodes[leaf]
    }

    /// The logical edges on the path from the root to leaf `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn leaf_edges(&self, leaf: usize) -> Vec<usize> {
        // Walk down from root looking for the leaf; trees are small, a
        // simple DFS with path tracking suffices.
        let target = self.leaf_nodes[leaf];
        let mut path = Vec::new();
        self.find_path(0, target, &mut path);
        path
    }

    fn find_path(&self, node: usize, target: usize, path: &mut Vec<usize>) -> bool {
        if node == target {
            return true;
        }
        for &c in &self.nodes[node].children {
            path.push(c - 1); // edge index of child c is c - 1
            if self.find_path(c, target, path) {
                return true;
            }
            path.pop();
        }
        false
    }
}

/// Errors from probe-tree construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeError {
    /// No paths supplied.
    Empty,
    /// A path does not start at the declared root.
    WrongRoot {
        /// The offending leaf.
        leaf: Id,
    },
    /// A zero-hop path was supplied.
    TrivialPath {
        /// The offending leaf.
        leaf: Id,
    },
    /// The same leaf id appears twice.
    DuplicateLeaf {
        /// The offending leaf.
        leaf: Id,
    },
    /// Two paths diverge and re-merge, so the union is not a tree.
    Remerge {
        /// A leaf whose path re-merges.
        leaf: Id,
        /// The router where the merge was detected.
        router: RouterId,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => f.write_str("a probe tree needs at least one leaf"),
            TreeError::WrongRoot { leaf } => {
                write!(f, "path to leaf {leaf} does not start at the root")
            }
            TreeError::TrivialPath { leaf } => {
                write!(f, "path to leaf {leaf} has no links")
            }
            TreeError::DuplicateLeaf { leaf } => write!(f, "duplicate leaf {leaf}"),
            TreeError::Remerge { leaf, router } => {
                write!(f, "path to leaf {leaf} re-merges at router {router}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(routers: &[u32], links: &[u32]) -> IpPath {
        IpPath::new(
            routers.iter().copied().map(RouterId).collect(),
            links.iter().copied().map(LinkId).collect(),
        )
    }

    /// Root 0 → router 1 (link 0), then 1 → 2 (link 1, leaf A),
    /// 1 → 3 (link 2) → 4 (link 3, leaf B), 1 → 3 → 5 (link 4, leaf C).
    fn sample_tree() -> ProbeTree {
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2], &[0, 1])),
                (Id::from_u64(2), p(&[0, 1, 3, 4], &[0, 2, 3])),
                (Id::from_u64(3), p(&[0, 1, 3, 5], &[0, 2, 4])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn link_set_is_deduplicated() {
        let t = sample_tree();
        assert_eq!(
            t.link_set(),
            vec![LinkId(0), LinkId(1), LinkId(2), LinkId(3), LinkId(4)]
        );
    }

    #[test]
    fn path_lookup() {
        let t = sample_tree();
        assert_eq!(t.path_to(Id::from_u64(2)).unwrap().hop_count(), 3);
        assert!(t.path_to(Id::from_u64(9)).is_none());
    }

    #[test]
    fn logical_tree_collapses_chains() {
        let t = sample_tree();
        let l = t.logical();
        // Logical structure: root → branch at router 1.
        //   edge to leaf A: segment [link 0? no...]
        // Careful: link 0 is shared by all leaves, so the first logical
        // edge is [0] ending at the branch node; then [1] to leaf A, and
        // [2] to the second branch... wait, router 3 branches to 4 and 5,
        // so [2] is its own edge, then [3] and [4].
        assert_eq!(l.num_leaves(), 3);
        assert_eq!(l.num_edges(), 5);
        // Shared edge [0]: on every leaf's edge path.
        for leaf in 0..3 {
            let edges = l.leaf_edges(leaf);
            assert_eq!(l.edge_links(edges[0]), &[LinkId(0)]);
        }
        // Leaf A has 2 edges; B and C have 3.
        assert_eq!(l.leaf_edges(0).len(), 2);
        assert_eq!(l.leaf_edges(1).len(), 3);
        assert_eq!(l.leaf_edges(2).len(), 3);
    }

    #[test]
    fn long_chain_collapses_to_one_edge() {
        let t = ProbeTree::from_paths(
            RouterId(0),
            vec![(Id::from_u64(1), p(&[0, 1, 2, 3, 4], &[0, 1, 2, 3]))],
        )
        .unwrap();
        let l = t.logical();
        assert_eq!(l.num_edges(), 1);
        assert_eq!(
            l.edge_links(0),
            &[LinkId(0), LinkId(1), LinkId(2), LinkId(3)]
        );
        assert_eq!(l.leaf_edges(0), vec![0]);
    }

    #[test]
    fn errors_detected() {
        assert_eq!(ProbeTree::from_paths(RouterId(0), vec![]), Err(TreeError::Empty));

        let wrong_root = ProbeTree::from_paths(
            RouterId(9),
            vec![(Id::from_u64(1), p(&[0, 1], &[0]))],
        );
        assert_eq!(wrong_root, Err(TreeError::WrongRoot { leaf: Id::from_u64(1) }));

        let trivial = ProbeTree::from_paths(
            RouterId(0),
            vec![(Id::from_u64(1), p(&[0], &[]))],
        );
        assert_eq!(trivial, Err(TreeError::TrivialPath { leaf: Id::from_u64(1) }));

        let dup = ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1], &[0])),
                (Id::from_u64(1), p(&[0, 2], &[1])),
            ],
        );
        assert_eq!(dup, Err(TreeError::DuplicateLeaf { leaf: Id::from_u64(1) }));

        // Diverge at 0 (via links 0/1) then re-merge at router 3.
        let remerge = ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 3], &[0, 2])),
                (Id::from_u64(2), p(&[0, 2, 3], &[1, 3])),
            ],
        );
        assert!(matches!(remerge, Err(TreeError::Remerge { .. })));
    }

    // PartialEq needed for assert_eq on Results above.
    impl PartialEq for ProbeTree {
        fn eq(&self, other: &Self) -> bool {
            self.root == other.root && self.leaves == other.leaves
        }
    }
}
