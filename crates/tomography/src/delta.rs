//! Snapshot diffs (§4.4).
//!
//! "This overhead can be decreased by sending diffs for updated entries
//! instead of entire tables." A [`SnapshotDelta`] carries only the link
//! observations that changed since a base snapshot (plus links that left
//! the tree), signed like a full snapshot so receivers can still hold the
//! origin to its words.

use serde::{Deserialize, Serialize};

use concilium_crypto::{KeyPair, PublicKey, Signable, Signature};
use concilium_types::{Id, LinkId, SimTime};

use crate::snapshot::{LinkObservation, TomographySnapshot};

/// A signed delta between two snapshots from the same origin.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SnapshotDelta {
    origin: Id,
    /// Time of the base snapshot this delta applies to.
    base_time: SimTime,
    /// Time of the resulting snapshot.
    time: SimTime,
    /// New or changed observations.
    changed: Vec<LinkObservation>,
    /// Links no longer in the origin's tree.
    removed: Vec<LinkId>,
    sig: Signature,
}

impl SnapshotDelta {
    /// Computes the delta that turns `base` into `new`, signed by the
    /// origin.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots have different origins or `new` is not
    /// strictly newer than `base`.
    pub fn between<R: rand::Rng + ?Sized>(
        base: &TomographySnapshot,
        new: &TomographySnapshot,
        origin_keys: &KeyPair,
        rng: &mut R,
    ) -> Self {
        assert_eq!(base.origin(), new.origin(), "snapshots from different origins");
        assert!(new.time() > base.time(), "delta must move time forward");
        let changed: Vec<LinkObservation> = new
            .observations()
            .iter()
            .filter(|obs| base.observation_for(obs.link) != Some(*obs))
            .copied()
            .collect();
        let removed: Vec<LinkId> = base
            .observations()
            .iter()
            .filter(|obs| new.observation_for(obs.link).is_none())
            .map(|obs| obs.link)
            .collect();
        let mut delta = SnapshotDelta {
            origin: base.origin(),
            base_time: base.time(),
            time: new.time(),
            changed,
            removed,
            sig: Signature::dummy(),
        };
        delta.sig = origin_keys.sign(&delta.to_signable_vec(), rng);
        delta
    }

    /// The origin host.
    pub fn origin(&self) -> Id {
        self.origin
    }

    /// Time of the resulting snapshot.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Number of changed observations carried.
    pub fn num_changed(&self) -> usize {
        self.changed.len()
    }

    /// Verifies the origin's signature.
    pub fn verify(&self, origin_key: &PublicKey) -> bool {
        origin_key.verify(&self.to_signable_vec(), &self.sig)
    }

    /// Applies the delta to its base, reconstructing the new snapshot's
    /// observation list. Returns `None` when `base` is not the snapshot
    /// this delta was computed against (wrong origin or time).
    pub fn apply(&self, base: &TomographySnapshot) -> Option<Vec<LinkObservation>> {
        if base.origin() != self.origin || base.time() != self.base_time {
            return None;
        }
        let mut out: Vec<LinkObservation> = base
            .observations()
            .iter()
            .filter(|obs| !self.removed.contains(&obs.link))
            .map(|obs| {
                self.changed
                    .iter()
                    .find(|c| c.link == obs.link)
                    .copied()
                    .unwrap_or(*obs)
            })
            .collect();
        for c in &self.changed {
            if base.observation_for(c.link).is_none() {
                out.push(*c);
            }
        }
        Some(out)
    }

    /// Estimated wire size in bytes: 5 bytes per changed observation
    /// (4-byte link id + bucket), 4 per removal, plus the fixed header
    /// (origin id, two timestamps, signature at the paper's 128 bytes).
    pub fn wire_bytes(&self) -> usize {
        20 + 8 + 8 + 128 + 5 * self.changed.len() + 4 * self.removed.len()
    }
}

impl Signable for SnapshotDelta {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"snapdelta");
        out.extend_from_slice(self.origin.as_bytes());
        out.extend_from_slice(&self.base_time.as_micros().to_be_bytes());
        out.extend_from_slice(&self.time.as_micros().to_be_bytes());
        out.extend_from_slice(&(self.changed.len() as u64).to_be_bytes());
        for obs in &self.changed {
            out.extend_from_slice(&obs.link.0.to_be_bytes());
            out.push(obs.bucket.code());
        }
        out.extend_from_slice(&(self.removed.len() as u64).to_be_bytes());
        for l in &self.removed {
            out.extend_from_slice(&l.0.to_be_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snapshot(
        keys: &KeyPair,
        t: u64,
        obs: &[(u32, bool)],
        rng: &mut StdRng,
    ) -> TomographySnapshot {
        TomographySnapshot::new_signed(
            Id::from_u64(7),
            SimTime::from_secs(t),
            obs.iter().map(|&(l, up)| LinkObservation::binary(LinkId(l), up)).collect(),
            keys,
            rng,
        )
    }

    #[test]
    fn delta_round_trips() {
        let mut rng = StdRng::seed_from_u64(71);
        let keys = KeyPair::generate(&mut rng);
        let base = snapshot(&keys, 100, &[(1, true), (2, true), (3, false)], &mut rng);
        // Link 2 flips down, link 3 leaves the tree, link 4 appears.
        let new = snapshot(&keys, 160, &[(1, true), (2, false), (4, true)], &mut rng);
        let delta = SnapshotDelta::between(&base, &new, &keys, &mut rng);
        assert!(delta.verify(&keys.public()));
        assert_eq!(delta.num_changed(), 2); // links 2 and 4

        let mut rebuilt = delta.apply(&base).unwrap();
        rebuilt.sort_by_key(|o| o.link);
        let mut want: Vec<LinkObservation> = new.observations().to_vec();
        want.sort_by_key(|o| o.link);
        assert_eq!(rebuilt, want);
    }

    #[test]
    fn delta_is_smaller_than_full_snapshot_for_small_changes() {
        let mut rng = StdRng::seed_from_u64(72);
        let keys = KeyPair::generate(&mut rng);
        let many: Vec<(u32, bool)> = (0..600).map(|i| (i, true)).collect();
        let base = snapshot(&keys, 100, &many, &mut rng);
        let mut changed = many.clone();
        changed[5].1 = false;
        let new = snapshot(&keys, 160, &changed, &mut rng);
        let delta = SnapshotDelta::between(&base, &new, &keys, &mut rng);
        assert_eq!(delta.num_changed(), 1);
        // Full table: 600 × 5 bytes ≈ 3 kB of observations; the delta
        // carries one.
        assert!(delta.wire_bytes() < 200);
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let mut rng = StdRng::seed_from_u64(73);
        let keys = KeyPair::generate(&mut rng);
        let base = snapshot(&keys, 100, &[(1, true)], &mut rng);
        let new = snapshot(&keys, 160, &[(1, false)], &mut rng);
        let other_base = snapshot(&keys, 130, &[(1, true)], &mut rng);
        let delta = SnapshotDelta::between(&base, &new, &keys, &mut rng);
        assert!(delta.apply(&other_base).is_none());
    }

    #[test]
    fn tampered_delta_rejected() {
        let mut rng = StdRng::seed_from_u64(74);
        let keys = KeyPair::generate(&mut rng);
        let base = snapshot(&keys, 100, &[(1, true), (2, true)], &mut rng);
        let new = snapshot(&keys, 160, &[(1, true), (2, false)], &mut rng);
        let delta = SnapshotDelta::between(&base, &new, &keys, &mut rng);
        let mut forged = delta.clone();
        forged.changed[0] = LinkObservation::binary(LinkId(2), true);
        assert!(!forged.verify(&keys.public()));
    }

    #[test]
    #[should_panic(expected = "move time forward")]
    fn backwards_delta_rejected() {
        let mut rng = StdRng::seed_from_u64(75);
        let keys = KeyPair::generate(&mut rng);
        let base = snapshot(&keys, 100, &[(1, true)], &mut rng);
        let old = snapshot(&keys, 50, &[(1, true)], &mut rng);
        let _ = SnapshotDelta::between(&base, &old, &keys, &mut rng);
    }
}
