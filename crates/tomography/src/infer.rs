//! MINC maximum-likelihood inference of per-edge pass rates
//! (Cáceres, Duffield, Horowitz, Towsley; adapted to striped unicast).
//!
//! For each logical node *k*, let γ_k be the probability that at least one
//! leaf in *k*'s subtree acknowledges a stripe, and let A_k be the
//! cumulative pass probability from the root to *k*. Under independent
//! per-edge Bernoulli loss, the MLE satisfies, at every branching node,
//!
//! ```text
//! 1 − γ_k / A_k = Π_{j ∈ children(k)} (1 − γ_j / A_k)
//! ```
//!
//! which is solved by bisection. Leaves take Â_leaf = γ̂_leaf directly, the
//! root has A = 1 by definition, and per-edge rates follow as
//! α_k = A_k / A_parent(k).
//!
//! Loss on a shared segment below the root with no branching cannot be
//! separated from its continuation; the logical-tree collapse already
//! merges such segments into single edges, so every estimated edge is
//! identifiable (up to the conventions documented on
//! [`infer_pass_rates`]).

use std::fmt;

use crate::error::TomographyError;
use crate::probe::{PartialProbeRecord, ProbeRecord};
use crate::tree::LogicalTree;

/// Estimated pass rates for every logical edge of a tree.
#[derive(Clone, Debug, PartialEq)]
pub struct PassRates {
    /// Cumulative root→node pass probability, per node.
    cumulative: Vec<f64>,
    /// Per-edge pass rate (`edge` = child node − 1).
    alpha: Vec<f64>,
}

impl PassRates {
    /// The estimated pass rate of logical edge `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_pass_rate(&self, edge: usize) -> f64 {
        self.alpha[edge]
    }

    /// The estimated loss rate of logical edge `edge` (1 − pass rate).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_loss_rate(&self, edge: usize) -> f64 {
        1.0 - self.alpha[edge]
    }

    /// Whether edge `edge` is considered *up* at a loss threshold
    /// (e.g. 0.5 for the binary up/down verdicts of the evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_is_up(&self, edge: usize, loss_threshold: f64) -> bool {
        self.edge_loss_rate(edge) < loss_threshold
    }

    /// Cumulative root→node pass probability.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cumulative(&self, node: usize) -> f64 {
        self.cumulative[node]
    }

    /// Number of edges estimated.
    pub fn num_edges(&self) -> usize {
        self.alpha.len()
    }
}

/// Errors from inference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InferError {
    /// The probe record's leaf count does not match the tree.
    LeafMismatch {
        /// Leaves in the tree.
        tree: usize,
        /// Leaves in the record.
        record: usize,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::LeafMismatch { tree, record } => write!(
                f,
                "probe record has {record} leaves but the tree has {tree}"
            ),
        }
    }
}

impl std::error::Error for InferError {}

/// A node's view of one stripe under partial feedback: fully known (with
/// the subtree-ack indicator) or indeterminate because some leaf's cell is
/// missing.
#[derive(Clone, Copy, PartialEq)]
enum StripeView {
    Known {
        acked: bool,
    },
    Indeterminate,
}

/// Reusable working memory for the MINC estimator.
///
/// Inference runs once per (host, window) in the simulator and thousands of
/// times per experiment sweep; each call needs roughly eight short-lived
/// vectors sized by the tree. A scratch value owns those buffers so repeated
/// calls stop hitting the allocator: create one, pass it to
/// [`infer_pass_rates_with`] / [`infer_pass_rates_tolerant_with`] in a loop,
/// and the buffers are cleared and resized (never reallocated once warm)
/// on every call.
///
/// Using a scratch value never changes results: the `_with` variants are
/// bit-identical to [`infer_pass_rates`] / [`infer_pass_rates_tolerant`],
/// which are themselves now thin wrappers allocating a fresh scratch.
#[derive(Default)]
pub struct InferScratch {
    /// Post-order traversal of the current tree.
    order: Vec<usize>,
    /// Per-node ack counts (γ̂ numerators / tolerant acked counts).
    acked: Vec<u64>,
    /// Per-node informative-stripe counts (tolerant estimator only).
    informative: Vec<u64>,
    /// Per-node "any leaf in subtree acked this stripe" flags.
    seen: Vec<bool>,
    /// Per-node per-stripe view for the tolerant estimator.
    state: Vec<StripeView>,
    /// Per-node γ̂ estimates.
    gamma: Vec<f64>,
    /// Per-leaf direct-stream ack rates.
    leaf_rates: Vec<f64>,
    /// DFS stack for the top-down solve.
    stack: Vec<usize>,
    /// Effective children γ's for one bisection solve.
    child_gammas: Vec<f64>,
    /// Inference passes that ran on this scratch.
    uses: u64,
}

impl InferScratch {
    pub(crate) fn note_use(&mut self) {
        self.uses += 1;
    }

    /// How many inference passes have run on this scratch — every use
    /// past the first reused its buffers instead of allocating fresh
    /// ones. A buffer-reuse counter for the metrics registry.
    pub fn uses(&self) -> u64 {
        self.uses
    }
}

impl std::fmt::Debug for InferScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InferScratch")
            .field("capacity_nodes", &self.gamma.capacity())
            .field("uses", &self.uses)
            .finish()
    }
}

/// Runs the MINC estimator over a tree and its probe record.
///
/// Conventions for degenerate cases:
///
/// * A subtree that never acknowledged anything (γ̂ = 0) gets cumulative
///   rate 0; edges *below* a dead segment are reported with pass rate 1
///   (no evidence of additional loss — loss cannot be localised below a
///   dead shared segment).
/// * If the bisection bracket degenerates because of sampling noise
///   (γ̂_k ≈ combined children), the cumulative rate clamps to 1.
///
/// # Errors
///
/// Returns [`InferError::LeafMismatch`] if the record does not match the
/// tree.
pub fn infer_pass_rates(
    tree: &LogicalTree,
    record: &ProbeRecord,
) -> Result<PassRates, InferError> {
    infer_pass_rates_with(tree, record, &mut InferScratch::default())
}

/// [`infer_pass_rates`] with caller-provided working memory.
///
/// Bit-identical results; reuse `scratch` across calls to avoid per-call
/// allocation. See [`InferScratch`].
///
/// # Errors
///
/// Returns [`InferError::LeafMismatch`] if the record does not match the
/// tree.
pub fn infer_pass_rates_with(
    tree: &LogicalTree,
    record: &ProbeRecord,
    scratch: &mut InferScratch,
) -> Result<PassRates, InferError> {
    let _span = concilium_obs::span("tomo.infer");
    scratch.note_use();
    if record.num_leaves() != tree.num_leaves() {
        return Err(InferError::LeafMismatch {
            tree: tree.num_leaves(),
            record: record.num_leaves(),
        });
    }
    let n_nodes = tree.num_nodes();
    let stripes = record.num_stripes();

    // γ̂_k: fraction of stripes where any leaf in k's subtree acked.
    // Computed bottom-up per stripe with an explicit post-order.
    post_order_into(tree, &mut scratch.order, &mut scratch.stack);
    scratch.acked.clear();
    scratch.acked.resize(n_nodes, 0);
    scratch.seen.clear();
    scratch.seen.resize(n_nodes, false);
    for s in 0..stripes {
        for &node in &scratch.order {
            let mut any = tree
                .leaf_at(node)
                .map(|leaf| record.received(s, leaf))
                .unwrap_or(false);
            if !any {
                any = tree.children(node).iter().any(|&c| scratch.seen[c]);
            }
            scratch.seen[node] = any;
            if any {
                scratch.acked[node] += 1;
            }
        }
    }
    scratch.gamma.clear();
    scratch
        .gamma
        .extend(scratch.acked.iter().map(|&c| c as f64 / stripes as f64));
    scratch.leaf_rates.clear();
    scratch
        .leaf_rates
        .extend((0..tree.num_leaves()).map(|l| record.leaf_ack_rate(l)));

    Ok(solve_from_gammas(
        tree,
        &scratch.gamma,
        &scratch.leaf_rates,
        &mut scratch.stack,
        &mut scratch.child_gammas,
    ))
}

/// Runs the MINC estimator over a *partial* probe record, discounting
/// indeterminate feedback instead of misreading it as loss.
///
/// A stripe is *informative* for a logical node only when the feedback
/// of **every** leaf in the node's subtree is known; any missing cell
/// makes the stripe indeterminate there and it is excluded from that
/// node's estimate entirely. γ̂_k is then the acked fraction of the
/// informative stripes.
///
/// Excluding whole stripes (rather than, say, treating "no *visible*
/// ack" as loss, or discounting only stripes with no known ack) is what
/// keeps the estimate unbiased: censoring is independent of probe fate,
/// so the informative subset is a uniform sample of all stripes. Any
/// per-cell mixing rule conditions on the outcomes themselves —
/// stripes that arrived are more likely to have had an ack censored —
/// and skews γ̂ upward. The price is data: a subtree spanning `m`
/// leaves keeps `(1 − c)^m` of its stripes under per-cell censoring
/// rate `c`. On a fully known record this reduces exactly to
/// [`infer_pass_rates`].
///
/// # Errors
///
/// [`TomographyError::LeafMismatch`] when the record does not match the
/// tree, and [`TomographyError::NoInformativeStripes`] when every stripe
/// of some node is indeterminate — so much feedback is missing that no
/// estimate exists; callers should treat this like an unprobed link, not
/// as evidence either way.
pub fn infer_pass_rates_tolerant(
    tree: &LogicalTree,
    record: &PartialProbeRecord,
) -> Result<PassRates, TomographyError> {
    infer_pass_rates_tolerant_with(tree, record, &mut InferScratch::default())
}

/// [`infer_pass_rates_tolerant`] with caller-provided working memory.
///
/// Bit-identical results; reuse `scratch` across calls to avoid per-call
/// allocation. See [`InferScratch`].
///
/// # Errors
///
/// Same as [`infer_pass_rates_tolerant`].
pub fn infer_pass_rates_tolerant_with(
    tree: &LogicalTree,
    record: &PartialProbeRecord,
    scratch: &mut InferScratch,
) -> Result<PassRates, TomographyError> {
    let _span = concilium_obs::span("tomo.infer");
    scratch.note_use();
    if record.num_leaves() != tree.num_leaves() {
        return Err(TomographyError::LeafMismatch {
            tree: tree.num_leaves(),
            record: record.num_leaves(),
        });
    }
    let n_nodes = tree.num_nodes();
    let stripes = record.num_stripes();
    post_order_into(tree, &mut scratch.order, &mut scratch.stack);

    scratch.acked.clear();
    scratch.acked.resize(n_nodes, 0);
    scratch.informative.clear();
    scratch.informative.resize(n_nodes, 0);
    scratch.state.clear();
    scratch.state.resize(n_nodes, StripeView::Indeterminate);
    for s in 0..stripes {
        for &node in &scratch.order {
            let own = tree.leaf_at(node).map(|leaf| record.outcome(s, leaf));
            let mut any_ack = own == Some(Some(true));
            let mut any_unknown = own == Some(None);
            for &c in tree.children(node) {
                match scratch.state[c] {
                    StripeView::Known { acked: true } => any_ack = true,
                    StripeView::Known { acked: false } => {}
                    StripeView::Indeterminate => any_unknown = true,
                }
            }
            scratch.state[node] = if any_unknown {
                StripeView::Indeterminate
            } else {
                StripeView::Known { acked: any_ack }
            };
            if let StripeView::Known { acked: a } = scratch.state[node] {
                scratch.informative[node] += 1;
                scratch.acked[node] += u64::from(a);
            }
        }
    }
    scratch.gamma.clear();
    scratch.gamma.resize(n_nodes, 0.0);
    for node in 0..n_nodes {
        if scratch.informative[node] == 0 {
            return Err(TomographyError::NoInformativeStripes { node });
        }
        scratch.gamma[node] = scratch.acked[node] as f64 / scratch.informative[node] as f64;
    }

    // Per-leaf direct-stream rates over the known cells only.
    scratch.leaf_rates.clear();
    scratch.leaf_rates.resize(tree.num_leaves(), 0.0);
    for leaf in 0..tree.num_leaves() {
        let mut acks = 0u64;
        let mut known = 0u64;
        for s in 0..stripes {
            match record.outcome(s, leaf) {
                Some(true) => {
                    acks += 1;
                    known += 1;
                }
                Some(false) => known += 1,
                None => {}
            }
        }
        if known == 0 {
            return Err(TomographyError::NoInformativeStripes {
                node: tree.leaf_node(leaf),
            });
        }
        scratch.leaf_rates[leaf] = acks as f64 / known as f64;
    }

    Ok(solve_from_gammas(
        tree,
        &scratch.gamma,
        &scratch.leaf_rates,
        &mut scratch.stack,
        &mut scratch.child_gammas,
    ))
}

/// The shared top-down half of the estimator: cumulative rates by
/// bisection, then per-edge α = A_child / A_parent with the dead-segment
/// convention.
fn solve_from_gammas(
    tree: &LogicalTree,
    gamma: &[f64],
    leaf_rates: &[f64],
    stack: &mut Vec<usize>,
    child_gammas: &mut Vec<f64>,
) -> PassRates {
    let n_nodes = tree.num_nodes();
    // `cumulative` and `alpha` are the *result*, owned by the returned
    // `PassRates`; only the traversal stack and bisection inputs are scratch.
    let mut cumulative = vec![f64::NAN; n_nodes];
    cumulative[0] = 1.0;
    stack.clear();
    stack.push(0usize);
    while let Some(node) = stack.pop() {
        for &child in tree.children(node) {
            cumulative[child] = estimate_cumulative(tree, gamma, leaf_rates, child, child_gammas);
            stack.push(child);
        }
    }

    let mut alpha = vec![1.0; tree.num_edges()];
    stack.clear();
    stack.push(0usize);
    while let Some(node) = stack.pop() {
        for &child in tree.children(node) {
            let a_parent = cumulative[node];
            let a_child = cumulative[child];
            alpha[child - 1] = if a_parent <= 0.0 {
                1.0 // unidentifiable below a dead segment
            } else {
                (a_child / a_parent).clamp(0.0, 1.0)
            };
            stack.push(child);
        }
    }

    PassRates { cumulative, alpha }
}

/// Estimates A_k for a non-root node.
fn estimate_cumulative(
    tree: &LogicalTree,
    gamma: &[f64],
    leaf_rates: &[f64],
    node: usize,
    child_gammas: &mut Vec<f64>,
) -> f64 {
    let g_k = gamma[node];
    if g_k <= 0.0 {
        return 0.0;
    }
    // Effective children γ's: child subtrees, plus the node's own direct
    // observation stream when it is itself a leaf with children.
    child_gammas.clear();
    child_gammas.extend(tree.children(node).iter().map(|&c| gamma[c]));
    if let Some(leaf) = tree.leaf_at(node) {
        if !tree.children(node).is_empty() {
            child_gammas.push(leaf_rates[leaf]);
        } else {
            // Pure leaf: Â = γ̂ directly.
            return g_k;
        }
    }
    if child_gammas.len() < 2 {
        // Single effective child: its subtree's γ equals ours, the edge is
        // unidentifiable here; defer to the child (handled because the
        // child will estimate against the same cumulative value). Treat A
        // as the best available bound: γ_k itself.
        return g_k.clamp(0.0, 1.0);
    }

    // Solve h(A) = γ_k/A − 1 + Π (1 − γ_j/A) = 0 on (γ_k, 1].
    let h = |a: f64| {
        g_k / a - 1.0 + child_gammas.iter().map(|&g| 1.0 - g / a).product::<f64>()
    };
    let mut lo = g_k.min(1.0);
    let mut hi = 1.0;
    if h(hi) >= 0.0 {
        return 1.0; // noise: subtree looks lossless above k
    }
    // h(lo+) ≥ 0 analytically; nudge off the singularity.
    lo += 1e-12;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if h(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Post-order traversal (children before parents) into a reused buffer.
///
/// `stack` encodes the "expanded" bit in the high bit of the node index so
/// the same `Vec<usize>` scratch serves both this and the top-down solve.
fn post_order_into(tree: &LogicalTree, order: &mut Vec<usize>, stack: &mut Vec<usize>) {
    const EXPANDED: usize = 1 << (usize::BITS - 1);
    order.clear();
    order.reserve(tree.num_nodes());
    stack.clear();
    stack.push(0usize);
    while let Some(entry) = stack.pop() {
        if entry & EXPANDED != 0 {
            order.push(entry & !EXPANDED);
        } else {
            stack.push(entry | EXPANDED);
            for &c in tree.children(entry) {
                stack.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::simulate_stripes;
    use crate::tree::ProbeTree;
    use concilium_topology::IpPath;
    use concilium_types::{Id, LinkId, RouterId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(routers: &[u32], links: &[u32]) -> IpPath {
        IpPath::new(
            routers.iter().copied().map(RouterId).collect(),
            links.iter().copied().map(LinkId).collect(),
        )
    }

    /// Root → branch (link 0) → {leaf1 (link 1), leaf2 (link 2)}.
    fn y_tree() -> LogicalTree {
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2], &[0, 1])),
                (Id::from_u64(2), p(&[0, 1, 3], &[0, 2])),
            ],
        )
        .unwrap()
        .logical()
    }

    /// A three-level tree with 4 leaves.
    fn deep_tree() -> LogicalTree {
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2, 4], &[0, 1, 3])),
                (Id::from_u64(2), p(&[0, 1, 2, 5], &[0, 1, 4])),
                (Id::from_u64(3), p(&[0, 1, 3, 6], &[0, 2, 5])),
                (Id::from_u64(4), p(&[0, 1, 3, 7], &[0, 2, 6])),
            ],
        )
        .unwrap()
        .logical()
    }

    fn edge_by_links(tree: &LogicalTree, links: &[u32]) -> usize {
        let want: Vec<LinkId> = links.iter().copied().map(LinkId).collect();
        (0..tree.num_edges())
            .find(|&e| tree.edge_links(e) == want.as_slice())
            .expect("edge exists")
    }

    #[test]
    fn recovers_uniform_rates() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(100);
        let rec = simulate_stripes(&tree, &|_| 0.9, 20_000, &mut rng);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        for e in 0..tree.num_edges() {
            assert!(
                (rates.edge_pass_rate(e) - 0.9).abs() < 0.01,
                "edge {e}: {}",
                rates.edge_pass_rate(e)
            );
        }
    }

    #[test]
    fn localises_shared_vs_last_mile_loss() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(101);
        // Shared link 0 lossy (0.7), leaf-1 link lossy (0.8), leaf-2 clean.
        let pass = |l: LinkId| match l.0 {
            0 => 0.7,
            1 => 0.8,
            _ => 1.0,
        };
        let rec = simulate_stripes(&tree, &pass, 30_000, &mut rng);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        let shared = edge_by_links(&tree, &[0]);
        let leaf1 = edge_by_links(&tree, &[1]);
        let leaf2 = edge_by_links(&tree, &[2]);
        assert!((rates.edge_pass_rate(shared) - 0.7).abs() < 0.02);
        assert!((rates.edge_pass_rate(leaf1) - 0.8).abs() < 0.02);
        assert!((rates.edge_pass_rate(leaf2) - 1.0).abs() < 0.02);
    }

    #[test]
    fn duffield_accuracy_on_deep_tree() {
        // "inferred link loss rates within 1% of the actual ones" — with
        // plenty of stripes we should match that on a 3-level tree.
        let tree = deep_tree();
        let mut rng = StdRng::seed_from_u64(102);
        let pass = |l: LinkId| match l.0 {
            0 => 0.95,
            1 => 0.90,
            2 => 0.85,
            _ => 0.92,
        };
        let rec = simulate_stripes(&tree, &pass, 50_000, &mut rng);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        for (links, want) in [
            (vec![0u32], 0.95),
            (vec![1], 0.90),
            (vec![2], 0.85),
            (vec![3], 0.92),
            (vec![4], 0.92),
            (vec![5], 0.92),
            (vec![6], 0.92),
        ] {
            let e = edge_by_links(&tree, &links);
            assert!(
                (rates.edge_pass_rate(e) - want).abs() < 0.01,
                "links {links:?}: got {} want {want}",
                rates.edge_pass_rate(e)
            );
        }
    }

    #[test]
    fn dead_shared_edge_detected() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(103);
        let pass = |l: LinkId| if l.0 == 0 { 0.0 } else { 0.9 };
        let rec = simulate_stripes(&tree, &pass, 1_000, &mut rng);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        let shared = edge_by_links(&tree, &[0]);
        assert_eq!(rates.edge_pass_rate(shared), 0.0);
        assert!(!rates.edge_is_up(shared, 0.5));
        // Below a dead segment the convention is pass rate 1 (no evidence).
        let leaf1 = edge_by_links(&tree, &[1]);
        assert_eq!(rates.edge_pass_rate(leaf1), 1.0);
    }

    #[test]
    fn leaf_mismatch_rejected() {
        let tree = y_tree();
        let rec = ProbeRecord::new(vec![vec![true; 3]]);
        assert_eq!(
            infer_pass_rates(&tree, &rec),
            Err(InferError::LeafMismatch { tree: 2, record: 3 })
        );
    }

    #[test]
    fn tolerant_on_complete_record_matches_exactly() {
        let tree = deep_tree();
        let mut rng = StdRng::seed_from_u64(105);
        let rec = simulate_stripes(&tree, &|_| 0.9, 5_000, &mut rng);
        let full = infer_pass_rates(&tree, &rec).unwrap();
        let partial = crate::probe::PartialProbeRecord::from_complete(&rec);
        let tolerant = infer_pass_rates_tolerant(&tree, &partial).unwrap();
        assert_eq!(full, tolerant, "no censoring ⇒ identical estimates");
    }

    #[test]
    fn tolerant_discounts_missing_feedback() {
        // 20% of all feedback cells lost uniformly. Naively mapping the
        // missing cells to "not received" deflates every estimate; the
        // tolerant estimator stays near the truth.
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(106);
        let pass = |l: LinkId| match l.0 {
            0 => 0.9,
            1 => 0.8,
            _ => 0.95,
        };
        let rec = simulate_stripes(&tree, &pass, 30_000, &mut rng);
        let mut partial = crate::probe::PartialProbeRecord::from_complete(&rec);
        partial.censor_random(0.2, &mut rng);
        assert!((partial.censored_fraction() - 0.2).abs() < 0.01);
        let rates = infer_pass_rates_tolerant(&tree, &partial).unwrap();
        for (links, want) in [(vec![0u32], 0.9), (vec![1], 0.8), (vec![2], 0.95)] {
            let e = edge_by_links(&tree, &links);
            assert!(
                (rates.edge_pass_rate(e) - want).abs() < 0.03,
                "links {links:?}: got {} want {want}",
                rates.edge_pass_rate(e)
            );
        }

        // The naive reading of the same censored data is visibly biased
        // on the last-mile edges (each loses ~20% of its acks).
        let naive_rows: Vec<Vec<bool>> = (0..partial.num_stripes())
            .map(|s| {
                (0..partial.num_leaves())
                    .map(|l| partial.outcome(s, l).unwrap_or(false))
                    .collect()
            })
            .collect();
        let naive = infer_pass_rates(&tree, &ProbeRecord::new(naive_rows)).unwrap();
        let leaf1 = edge_by_links(&tree, &[1]);
        assert!(
            naive.edge_pass_rate(leaf1) < 0.8 - 0.1,
            "naive estimate should be deflated, got {}",
            naive.edge_pass_rate(leaf1)
        );
    }

    #[test]
    fn tolerant_rejects_a_fully_starved_leaf() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(107);
        let rec = simulate_stripes(&tree, &|_| 0.9, 100, &mut rng);
        let mut partial = crate::probe::PartialProbeRecord::from_complete(&rec);
        for s in 0..partial.num_stripes() {
            partial.censor(s, 0);
        }
        let err = infer_pass_rates_tolerant(&tree, &partial).unwrap_err();
        assert!(
            matches!(err, TomographyError::NoInformativeStripes { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn tolerant_leaf_mismatch_is_typed() {
        let tree = y_tree();
        let partial =
            crate::probe::PartialProbeRecord::try_new(vec![vec![Some(true); 3]]).unwrap();
        assert_eq!(
            infer_pass_rates_tolerant(&tree, &partial),
            Err(TomographyError::LeafMismatch { tree: 2, record: 3 })
        );
    }

    #[test]
    fn scratch_reuse_matches_fresh_alloc_path() {
        // One scratch driven across different trees, records, and both
        // estimators must reproduce the fresh-allocation results exactly.
        let mut scratch = InferScratch::default();
        let mut rng = StdRng::seed_from_u64(108);

        for (tree, seed) in [(y_tree(), 1u64), (deep_tree(), 2), (y_tree(), 3)] {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let rec = simulate_stripes(&tree, &|l: LinkId| 0.8 + 0.05 * (l.0 % 3) as f64, 2_000, &mut rng2);
            let fresh = infer_pass_rates(&tree, &rec).unwrap();
            let reused = infer_pass_rates_with(&tree, &rec, &mut scratch).unwrap();
            assert_eq!(fresh, reused);

            let mut partial = crate::probe::PartialProbeRecord::from_complete(&rec);
            partial.censor_random(0.1, &mut rng);
            let fresh_t = infer_pass_rates_tolerant(&tree, &partial).unwrap();
            let reused_t = infer_pass_rates_tolerant_with(&tree, &partial, &mut scratch).unwrap();
            assert_eq!(fresh_t, reused_t);
        }

        // Error paths leave the scratch reusable too.
        let tree = y_tree();
        let bad = ProbeRecord::new(vec![vec![true; 3]]);
        assert!(infer_pass_rates_with(&tree, &bad, &mut scratch).is_err());
        let mut rng3 = StdRng::seed_from_u64(4);
        let rec = simulate_stripes(&tree, &|_| 0.9, 500, &mut rng3);
        assert_eq!(
            infer_pass_rates(&tree, &rec).unwrap(),
            infer_pass_rates_with(&tree, &rec, &mut scratch).unwrap()
        );
    }

    #[test]
    fn suppressing_leaf_ruins_shared_inference() {
        // §3.3 (after Arya et al.): a leaf that drops acknowledgments for
        // probes it received "can ruin many inferences throughout the
        // tree". With one of two leaves silent, the branch node has a
        // single informative child, so loss on the shared segment can no
        // longer be separated from the sibling's last mile: the shared
        // edge reads lossless and its loss is mis-attributed downstream.
        // This is exactly why Concilium needs the feedback-verification
        // tests in `feedback`.
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(104);
        let mut rec = simulate_stripes(&tree, &|_| 0.95, 20_000, &mut rng);
        rec.suppress_leaf(0);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        let shared = edge_by_links(&tree, &[0]);
        let leaf1 = edge_by_links(&tree, &[1]);
        let leaf2 = edge_by_links(&tree, &[2]);
        assert!(rates.edge_pass_rate(shared) > 0.98, "shared loss hidden");
        assert!(rates.edge_pass_rate(leaf1) < 0.01, "suppressed leaf looks dead");
        // The sibling's edge absorbs the shared loss: ≈ 0.95² ≈ 0.9025.
        assert!(
            (rates.edge_pass_rate(leaf2) - 0.9025).abs() < 0.02,
            "sibling absorbs shared loss, got {}",
            rates.edge_pass_rate(leaf2)
        );
    }
}
