//! MINC maximum-likelihood inference of per-edge pass rates
//! (Cáceres, Duffield, Horowitz, Towsley; adapted to striped unicast).
//!
//! For each logical node *k*, let γ_k be the probability that at least one
//! leaf in *k*'s subtree acknowledges a stripe, and let A_k be the
//! cumulative pass probability from the root to *k*. Under independent
//! per-edge Bernoulli loss, the MLE satisfies, at every branching node,
//!
//! ```text
//! 1 − γ_k / A_k = Π_{j ∈ children(k)} (1 − γ_j / A_k)
//! ```
//!
//! which is solved by bisection. Leaves take Â_leaf = γ̂_leaf directly, the
//! root has A = 1 by definition, and per-edge rates follow as
//! α_k = A_k / A_parent(k).
//!
//! Loss on a shared segment below the root with no branching cannot be
//! separated from its continuation; the logical-tree collapse already
//! merges such segments into single edges, so every estimated edge is
//! identifiable (up to the conventions documented on
//! [`infer_pass_rates`]).
//!
//! # Kernel layout (DESIGN.md §16)
//!
//! The bottom-up γ̂ pass is bit-packed SoA: per-leaf stripe outcomes are
//! transposed once into `u64` bitmasks (one bit per stripe, 64 stripes per
//! block), the tree shape is flattened once per shape into a post-order
//! node list with a CSR child table ([`InferScratch`] caches it across
//! calls), and the per-node "any leaf in subtree acked" indicator becomes
//! a word-wide OR over child rows followed by a popcount. The integer ack
//! counts are *identical* to the scalar recurrence — OR is exactly the
//! "any" fold — so γ̂ and everything downstream is bit-identical to the
//! retained scalar kernels ([`infer_pass_rates_reference`],
//! [`infer_pass_rates_tolerant_reference`]); a property test enforces
//! this over random trees and records. [`infer_pass_rates_batch`] /
//! [`infer_pass_rates_tolerant_batch`] amortize the shape flattening and
//! buffer reuse across all records of a verdict window.

use std::fmt;

use crate::error::TomographyError;
use crate::probe::{PartialProbeRecord, ProbeRecord};
use crate::tree::LogicalTree;

/// Estimated pass rates for every logical edge of a tree.
#[derive(Clone, Debug, PartialEq)]
pub struct PassRates {
    /// Cumulative root→node pass probability, per node.
    cumulative: Vec<f64>,
    /// Per-edge pass rate (`edge` = child node − 1).
    alpha: Vec<f64>,
}

impl PassRates {
    /// The estimated pass rate of logical edge `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_pass_rate(&self, edge: usize) -> f64 {
        self.alpha[edge]
    }

    /// The estimated loss rate of logical edge `edge` (1 − pass rate).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_loss_rate(&self, edge: usize) -> f64 {
        1.0 - self.alpha[edge]
    }

    /// Whether edge `edge` is considered *up* at a loss threshold
    /// (e.g. 0.5 for the binary up/down verdicts of the evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_is_up(&self, edge: usize, loss_threshold: f64) -> bool {
        self.edge_loss_rate(edge) < loss_threshold
    }

    /// Cumulative root→node pass probability.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cumulative(&self, node: usize) -> f64 {
        self.cumulative[node]
    }

    /// Number of edges estimated.
    pub fn num_edges(&self) -> usize {
        self.alpha.len()
    }
}

/// Errors from inference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InferError {
    /// The probe record's leaf count does not match the tree.
    LeafMismatch {
        /// Leaves in the tree.
        tree: usize,
        /// Leaves in the record.
        record: usize,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::LeafMismatch { tree, record } => write!(
                f,
                "probe record has {record} leaves but the tree has {tree}"
            ),
        }
    }
}

impl std::error::Error for InferError {}

/// A node's view of one stripe under partial feedback: fully known (with
/// the subtree-ack indicator) or indeterminate because some leaf's cell is
/// missing. Used by the scalar reference kernel; the packed kernel
/// represents the same tri-state as an (ack, unknown) bit pair.
#[derive(Clone, Copy, PartialEq)]
enum StripeView {
    Known {
        acked: bool,
    },
    Indeterminate,
}

/// Reusable working memory for the MINC estimator.
///
/// Inference runs once per (host, window) in the simulator and thousands of
/// times per experiment sweep. A scratch value owns the estimator's
/// buffers *and* the flattened tree shape, so repeated calls stop hitting
/// both the allocator and the pointer-chasing tree walk:
///
/// * **Shape cache.** The post-order node list, a CSR child table in
///   post-position space, and the per-position leaf assignment are
///   computed once per tree *shape* and revalidated by an exact O(nodes)
///   structural comparison on every call — reusing one scratch across
///   different trees is always correct, merely fastest when consecutive
///   calls share a shape (as the per-host DST loop and the experiment
///   sweeps do).
/// * **Bit planes.** Per-leaf and per-node stripe indicators live in
///   flat `u64` blocks (64 stripes each), resized but never reallocated
///   once warm.
///
/// Using a scratch value never changes results: the `_with` variants are
/// bit-identical to [`infer_pass_rates`] / [`infer_pass_rates_tolerant`],
/// which are themselves thin wrappers allocating a fresh scratch, and all
/// of them are property-tested equal to the scalar reference kernels.
#[derive(Default)]
pub struct InferScratch {
    /// Encoded shape of the cached tree (empty = nothing cached).
    shape_sig: Vec<u32>,
    /// Scratch for the candidate signature of the incoming tree.
    sig_tmp: Vec<u32>,
    /// Post-order traversal of the cached tree (node ids).
    order: Vec<usize>,
    /// Node id at each post position (`order` as u32).
    post: Vec<u32>,
    /// Post position of each node id.
    pos_of: Vec<u32>,
    /// CSR offsets into `kids`, one slot per post position (+1).
    kids_off: Vec<u32>,
    /// Children as post positions (always < the parent's position).
    kids: Vec<u32>,
    /// Per post position: leaf index + 1, or 0 when not a leaf.
    leaf_of_pos: Vec<u32>,
    /// Per-leaf stripe-ack bitmask rows (`leaves × blocks`).
    leaf_ack: Vec<u64>,
    /// Per-leaf indeterminate-cell bitmask rows (tolerant only).
    leaf_unk: Vec<u64>,
    /// Per-node subtree-ack bitmask rows (post-position-major).
    node_ack: Vec<u64>,
    /// Per-node indeterminate bitmask rows (tolerant only).
    node_unk: Vec<u64>,
    /// Per-node ack counts (γ̂ numerators / tolerant acked counts).
    acked: Vec<u64>,
    /// Per-node informative-stripe counts (tolerant estimator only).
    informative: Vec<u64>,
    /// Per-node γ̂ estimates.
    gamma: Vec<f64>,
    /// Per-leaf direct-stream ack rates.
    leaf_rates: Vec<f64>,
    /// DFS stack for the traversals.
    stack: Vec<usize>,
    /// Effective children γ's for one bisection solve.
    child_gammas: Vec<f64>,
    /// Inference passes that ran on this scratch.
    uses: u64,
}

impl InferScratch {
    pub(crate) fn note_use(&mut self) {
        self.uses += 1;
    }

    /// How many inference passes have run on this scratch — every use
    /// past the first reused its buffers instead of allocating fresh
    /// ones. A buffer-reuse counter for the metrics registry.
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Flattens `tree` into the SoA shape cache unless the cached shape
    /// already matches it exactly (structural comparison, not identity).
    fn ensure_shape(&mut self, tree: &LogicalTree) {
        encode_shape(tree, &mut self.sig_tmp);
        if !self.shape_sig.is_empty() && self.sig_tmp == self.shape_sig {
            return;
        }
        std::mem::swap(&mut self.shape_sig, &mut self.sig_tmp);

        post_order_into(tree, &mut self.order, &mut self.stack);
        let n_nodes = tree.num_nodes();
        self.pos_of.clear();
        self.pos_of.resize(n_nodes, 0);
        for (i, &node) in self.order.iter().enumerate() {
            self.pos_of[node] = i as u32;
        }
        self.post.clear();
        self.post.extend(self.order.iter().map(|&n| n as u32));
        self.kids_off.clear();
        self.kids.clear();
        self.leaf_of_pos.clear();
        self.kids_off.push(0);
        for &node in &self.order {
            for &c in tree.children(node) {
                self.kids.push(self.pos_of[c]);
            }
            self.kids_off.push(self.kids.len() as u32);
            self.leaf_of_pos
                .push(tree.leaf_at(node).map(|l| l as u32 + 1).unwrap_or(0));
        }
    }
}

impl std::fmt::Debug for InferScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferScratch")
            .field("capacity_nodes", &self.gamma.capacity())
            .field("uses", &self.uses)
            .finish()
    }
}

/// Exact structural encoding of a tree shape: node count, leaf count,
/// then per node its child list and leaf assignment. Two trees encode
/// equally iff every accessor the estimator consults agrees.
fn encode_shape(tree: &LogicalTree, out: &mut Vec<u32>) {
    out.clear();
    out.push(tree.num_nodes() as u32);
    out.push(tree.num_leaves() as u32);
    for node in 0..tree.num_nodes() {
        let kids = tree.children(node);
        out.push(kids.len() as u32);
        out.extend(kids.iter().map(|&c| c as u32));
        out.push(tree.leaf_at(node).map(|l| l as u32 + 1).unwrap_or(0));
    }
}

/// Runs the MINC estimator over a tree and its probe record.
///
/// Conventions for degenerate cases:
///
/// * A subtree that never acknowledged anything (γ̂ = 0) gets cumulative
///   rate 0; edges *below* a dead segment are reported with pass rate 1
///   (no evidence of additional loss — loss cannot be localised below a
///   dead shared segment).
/// * If the bisection bracket degenerates because of sampling noise
///   (γ̂_k ≈ combined children), the cumulative rate clamps to 1.
///
/// # Errors
///
/// Returns [`InferError::LeafMismatch`] if the record does not match the
/// tree.
pub fn infer_pass_rates(
    tree: &LogicalTree,
    record: &ProbeRecord,
) -> Result<PassRates, InferError> {
    infer_pass_rates_with(tree, record, &mut InferScratch::default())
}

/// [`infer_pass_rates`] with caller-provided working memory.
///
/// Bit-identical results; reuse `scratch` across calls to avoid per-call
/// allocation and tree re-flattening. See [`InferScratch`].
///
/// # Errors
///
/// Returns [`InferError::LeafMismatch`] if the record does not match the
/// tree.
pub fn infer_pass_rates_with(
    tree: &LogicalTree,
    record: &ProbeRecord,
    scratch: &mut InferScratch,
) -> Result<PassRates, InferError> {
    let _span = concilium_obs::span("tomo.infer");
    scratch.note_use();
    scratch.ensure_shape(tree);
    infer_strict_packed(tree, record, scratch)
}

/// Runs the MINC estimator over every record of a verdict window in one
/// call, amortizing the tree flattening and buffer reuse across stripesets
/// (the DST inner loop and the `fig4`/`fig5` experiments call this).
///
/// Per-record results are bit-identical to calling
/// [`infer_pass_rates_with`] on each record in order — including per-record
/// errors, which do not disturb the other entries.
pub fn infer_pass_rates_batch(
    tree: &LogicalTree,
    records: &[ProbeRecord],
    scratch: &mut InferScratch,
) -> Vec<Result<PassRates, InferError>> {
    let _span = concilium_obs::span("tomo.infer");
    scratch.ensure_shape(tree);
    records
        .iter()
        .map(|record| {
            scratch.note_use();
            infer_strict_packed(tree, record, scratch)
        })
        .collect()
}

/// The bit-packed strict kernel: assumes `scratch`'s shape cache matches
/// `tree`.
fn infer_strict_packed(
    tree: &LogicalTree,
    record: &ProbeRecord,
    scratch: &mut InferScratch,
) -> Result<PassRates, InferError> {
    if record.num_leaves() != tree.num_leaves() {
        return Err(InferError::LeafMismatch {
            tree: tree.num_leaves(),
            record: record.num_leaves(),
        });
    }
    let n_nodes = tree.num_nodes();
    let n_leaves = tree.num_leaves();
    let stripes = record.num_stripes();
    let blocks = stripes.div_ceil(64);

    // Transpose the record once: one stripe-bit row per leaf.
    scratch.leaf_ack.clear();
    scratch.leaf_ack.resize(n_leaves * blocks, 0);
    for s in 0..stripes {
        let row = record.row(s);
        let blk = s / 64;
        let bit = 1u64 << (s % 64);
        for (leaf, &acked) in row.iter().enumerate() {
            if acked {
                scratch.leaf_ack[leaf * blocks + blk] |= bit;
            }
        }
    }

    // Bottom-up subtree-OR: a node's row is the OR of its children's rows
    // and its own leaf row — exactly the scalar "any leaf in subtree
    // acked" recurrence, 64 stripes per word. γ̂ numerators by popcount.
    scratch.node_ack.clear();
    scratch.node_ack.resize(n_nodes * blocks, 0);
    scratch.acked.clear();
    scratch.acked.resize(n_nodes, 0);
    for i in 0..n_nodes {
        let (lower, upper) = scratch.node_ack.split_at_mut(i * blocks);
        let dst = &mut upper[..blocks];
        let ks = scratch.kids_off[i] as usize;
        let ke = scratch.kids_off[i + 1] as usize;
        for &cpos in &scratch.kids[ks..ke] {
            let src = &lower[cpos as usize * blocks..cpos as usize * blocks + blocks];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d |= s;
            }
        }
        let leaf_plus_one = scratch.leaf_of_pos[i];
        if leaf_plus_one != 0 {
            let l = (leaf_plus_one - 1) as usize * blocks;
            let src = &scratch.leaf_ack[l..l + blocks];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d |= s;
            }
        }
        let count: u64 = dst.iter().map(|&w| u64::from(w.count_ones())).sum();
        scratch.acked[scratch.post[i] as usize] = count;
    }

    scratch.gamma.clear();
    scratch
        .gamma
        .extend(scratch.acked.iter().map(|&c| c as f64 / stripes as f64));
    scratch.leaf_rates.clear();
    for leaf in 0..n_leaves {
        let row = &scratch.leaf_ack[leaf * blocks..(leaf + 1) * blocks];
        let acks: u64 = row.iter().map(|&w| u64::from(w.count_ones())).sum();
        scratch.leaf_rates.push(acks as f64 / stripes as f64);
    }

    Ok(solve_from_gammas(
        tree,
        &scratch.gamma,
        &scratch.leaf_rates,
        &mut scratch.stack,
        &mut scratch.child_gammas,
    ))
}

/// Runs the MINC estimator over a *partial* probe record, discounting
/// indeterminate feedback instead of misreading it as loss.
///
/// A stripe is *informative* for a logical node only when the feedback
/// of **every** leaf in the node's subtree is known; any missing cell
/// makes the stripe indeterminate there and it is excluded from that
/// node's estimate entirely. γ̂_k is then the acked fraction of the
/// informative stripes.
///
/// Excluding whole stripes (rather than, say, treating "no *visible*
/// ack" as loss, or discounting only stripes with no known ack) is what
/// keeps the estimate unbiased: censoring is independent of probe fate,
/// so the informative subset is a uniform sample of all stripes. Any
/// per-cell mixing rule conditions on the outcomes themselves —
/// stripes that arrived are more likely to have had an ack censored —
/// and skews γ̂ upward. The price is data: a subtree spanning `m`
/// leaves keeps `(1 − c)^m` of its stripes under per-cell censoring
/// rate `c`. On a fully known record this reduces exactly to
/// [`infer_pass_rates`].
///
/// # Errors
///
/// [`TomographyError::LeafMismatch`] when the record does not match the
/// tree, and [`TomographyError::NoInformativeStripes`] when every stripe
/// of some node is indeterminate — so much feedback is missing that no
/// estimate exists; callers should treat this like an unprobed link, not
/// as evidence either way.
pub fn infer_pass_rates_tolerant(
    tree: &LogicalTree,
    record: &PartialProbeRecord,
) -> Result<PassRates, TomographyError> {
    infer_pass_rates_tolerant_with(tree, record, &mut InferScratch::default())
}

/// [`infer_pass_rates_tolerant`] with caller-provided working memory.
///
/// Bit-identical results; reuse `scratch` across calls to avoid per-call
/// allocation and tree re-flattening. See [`InferScratch`].
///
/// # Errors
///
/// Same as [`infer_pass_rates_tolerant`].
pub fn infer_pass_rates_tolerant_with(
    tree: &LogicalTree,
    record: &PartialProbeRecord,
    scratch: &mut InferScratch,
) -> Result<PassRates, TomographyError> {
    let _span = concilium_obs::span("tomo.infer");
    scratch.note_use();
    scratch.ensure_shape(tree);
    infer_tolerant_packed(tree, record, scratch)
}

/// Tolerant counterpart of [`infer_pass_rates_batch`]: one call per
/// verdict window, per-record results bit-identical to per-record
/// [`infer_pass_rates_tolerant_with`] calls.
pub fn infer_pass_rates_tolerant_batch(
    tree: &LogicalTree,
    records: &[PartialProbeRecord],
    scratch: &mut InferScratch,
) -> Vec<Result<PassRates, TomographyError>> {
    let _span = concilium_obs::span("tomo.infer");
    scratch.ensure_shape(tree);
    records
        .iter()
        .map(|record| {
            scratch.note_use();
            infer_tolerant_packed(tree, record, scratch)
        })
        .collect()
}

/// The bit-packed tolerant kernel: assumes `scratch`'s shape cache matches
/// `tree`.
///
/// The tri-state cell becomes an (ack, unknown) bit pair. Unknown-ness
/// ORs upward exactly like the scalar `Indeterminate` propagation; the
/// ack plane may carry set bits in unknown positions (a known-acked
/// grandchild under an indeterminate child), but those positions are
/// masked out of every count, so the integer (acked, informative) pairs —
/// and therefore γ̂ — match the scalar recurrence bit for bit.
fn infer_tolerant_packed(
    tree: &LogicalTree,
    record: &PartialProbeRecord,
    scratch: &mut InferScratch,
) -> Result<PassRates, TomographyError> {
    if record.num_leaves() != tree.num_leaves() {
        return Err(TomographyError::LeafMismatch {
            tree: tree.num_leaves(),
            record: record.num_leaves(),
        });
    }
    let n_nodes = tree.num_nodes();
    let n_leaves = tree.num_leaves();
    let stripes = record.num_stripes();
    let blocks = stripes.div_ceil(64);
    // `!unknown` sets the slack bits of the last block; mask them out of
    // the informative counts.
    let tail_mask: u64 = if stripes.is_multiple_of(64) { !0 } else { (1u64 << (stripes % 64)) - 1 };
    let block_mask = |b: usize| if b + 1 == blocks { tail_mask } else { !0 };

    scratch.leaf_ack.clear();
    scratch.leaf_ack.resize(n_leaves * blocks, 0);
    scratch.leaf_unk.clear();
    scratch.leaf_unk.resize(n_leaves * blocks, 0);
    for s in 0..stripes {
        let row = record.row(s);
        let blk = s / 64;
        let bit = 1u64 << (s % 64);
        for (leaf, &cell) in row.iter().enumerate() {
            match cell {
                Some(true) => scratch.leaf_ack[leaf * blocks + blk] |= bit,
                Some(false) => {}
                None => scratch.leaf_unk[leaf * blocks + blk] |= bit,
            }
        }
    }

    scratch.node_ack.clear();
    scratch.node_ack.resize(n_nodes * blocks, 0);
    scratch.node_unk.clear();
    scratch.node_unk.resize(n_nodes * blocks, 0);
    scratch.acked.clear();
    scratch.acked.resize(n_nodes, 0);
    scratch.informative.clear();
    scratch.informative.resize(n_nodes, 0);
    for i in 0..n_nodes {
        let base = i * blocks;
        let (ack_lower, ack_upper) = scratch.node_ack.split_at_mut(base);
        let (unk_lower, unk_upper) = scratch.node_unk.split_at_mut(base);
        let ack_dst = &mut ack_upper[..blocks];
        let unk_dst = &mut unk_upper[..blocks];
        let ks = scratch.kids_off[i] as usize;
        let ke = scratch.kids_off[i + 1] as usize;
        for &cpos in &scratch.kids[ks..ke] {
            let c = cpos as usize * blocks;
            for b in 0..blocks {
                ack_dst[b] |= ack_lower[c + b];
                unk_dst[b] |= unk_lower[c + b];
            }
        }
        let leaf_plus_one = scratch.leaf_of_pos[i];
        if leaf_plus_one != 0 {
            let l = (leaf_plus_one - 1) as usize * blocks;
            for b in 0..blocks {
                ack_dst[b] |= scratch.leaf_ack[l + b];
                unk_dst[b] |= scratch.leaf_unk[l + b];
            }
        }
        let mut acked = 0u64;
        let mut informative = 0u64;
        for b in 0..blocks {
            let known = !unk_dst[b] & block_mask(b);
            informative += u64::from(known.count_ones());
            acked += u64::from((ack_dst[b] & known).count_ones());
        }
        let node = scratch.post[i] as usize;
        scratch.acked[node] = acked;
        scratch.informative[node] = informative;
    }

    scratch.gamma.clear();
    scratch.gamma.resize(n_nodes, 0.0);
    for node in 0..n_nodes {
        if scratch.informative[node] == 0 {
            return Err(TomographyError::NoInformativeStripes { node });
        }
        scratch.gamma[node] = scratch.acked[node] as f64 / scratch.informative[node] as f64;
    }

    // Per-leaf direct-stream rates over the known cells only.
    scratch.leaf_rates.clear();
    scratch.leaf_rates.resize(n_leaves, 0.0);
    for leaf in 0..n_leaves {
        let mut acks = 0u64;
        let mut known = 0u64;
        for b in 0..blocks {
            let k = !scratch.leaf_unk[leaf * blocks + b] & block_mask(b);
            known += u64::from(k.count_ones());
            acks += u64::from((scratch.leaf_ack[leaf * blocks + b] & k).count_ones());
        }
        if known == 0 {
            return Err(TomographyError::NoInformativeStripes {
                node: tree.leaf_node(leaf),
            });
        }
        scratch.leaf_rates[leaf] = acks as f64 / known as f64;
    }

    Ok(solve_from_gammas(
        tree,
        &scratch.gamma,
        &scratch.leaf_rates,
        &mut scratch.stack,
        &mut scratch.child_gammas,
    ))
}

/// The original scalar strict estimator, retained verbatim as the
/// reference kernel: the packed [`infer_pass_rates_with`] /
/// [`infer_pass_rates_batch`] are property-tested bit-identical to it,
/// and the `bench.mle.*` micro-bench times both so the batched-vs-scalar
/// win lands in `BENCH_profile.json`. Not used on any production path.
///
/// # Errors
///
/// Returns [`InferError::LeafMismatch`] if the record does not match the
/// tree.
pub fn infer_pass_rates_reference(
    tree: &LogicalTree,
    record: &ProbeRecord,
) -> Result<PassRates, InferError> {
    if record.num_leaves() != tree.num_leaves() {
        return Err(InferError::LeafMismatch {
            tree: tree.num_leaves(),
            record: record.num_leaves(),
        });
    }
    let n_nodes = tree.num_nodes();
    let stripes = record.num_stripes();

    // γ̂_k: fraction of stripes where any leaf in k's subtree acked.
    // Computed bottom-up per stripe with an explicit post-order.
    let mut order = Vec::new();
    let mut stack = Vec::new();
    post_order_into(tree, &mut order, &mut stack);
    let mut acked = vec![0u64; n_nodes];
    let mut seen = vec![false; n_nodes];
    for s in 0..stripes {
        for &node in &order {
            let mut any = tree
                .leaf_at(node)
                .map(|leaf| record.received(s, leaf))
                .unwrap_or(false);
            if !any {
                any = tree.children(node).iter().any(|&c| seen[c]);
            }
            seen[node] = any;
            if any {
                acked[node] += 1;
            }
        }
    }
    let gamma: Vec<f64> = acked.iter().map(|&c| c as f64 / stripes as f64).collect();
    let leaf_rates: Vec<f64> =
        (0..tree.num_leaves()).map(|l| record.leaf_ack_rate(l)).collect();

    let mut child_gammas = Vec::new();
    Ok(solve_from_gammas(tree, &gamma, &leaf_rates, &mut stack, &mut child_gammas))
}

/// The original scalar tolerant estimator, retained verbatim as the
/// reference kernel for [`infer_pass_rates_tolerant_with`] /
/// [`infer_pass_rates_tolerant_batch`]. Not used on any production path.
///
/// # Errors
///
/// Same as [`infer_pass_rates_tolerant`].
pub fn infer_pass_rates_tolerant_reference(
    tree: &LogicalTree,
    record: &PartialProbeRecord,
) -> Result<PassRates, TomographyError> {
    if record.num_leaves() != tree.num_leaves() {
        return Err(TomographyError::LeafMismatch {
            tree: tree.num_leaves(),
            record: record.num_leaves(),
        });
    }
    let n_nodes = tree.num_nodes();
    let stripes = record.num_stripes();
    let mut order = Vec::new();
    let mut stack = Vec::new();
    post_order_into(tree, &mut order, &mut stack);

    let mut acked = vec![0u64; n_nodes];
    let mut informative = vec![0u64; n_nodes];
    let mut state = vec![StripeView::Indeterminate; n_nodes];
    for s in 0..stripes {
        for &node in &order {
            let own = tree.leaf_at(node).map(|leaf| record.outcome(s, leaf));
            let mut any_ack = own == Some(Some(true));
            let mut any_unknown = own == Some(None);
            for &c in tree.children(node) {
                match state[c] {
                    StripeView::Known { acked: true } => any_ack = true,
                    StripeView::Known { acked: false } => {}
                    StripeView::Indeterminate => any_unknown = true,
                }
            }
            state[node] = if any_unknown {
                StripeView::Indeterminate
            } else {
                StripeView::Known { acked: any_ack }
            };
            if let StripeView::Known { acked: a } = state[node] {
                informative[node] += 1;
                acked[node] += u64::from(a);
            }
        }
    }
    let mut gamma = vec![0.0; n_nodes];
    for node in 0..n_nodes {
        if informative[node] == 0 {
            return Err(TomographyError::NoInformativeStripes { node });
        }
        gamma[node] = acked[node] as f64 / informative[node] as f64;
    }

    // Per-leaf direct-stream rates over the known cells only.
    let mut leaf_rates = vec![0.0; tree.num_leaves()];
    for (leaf, rate) in leaf_rates.iter_mut().enumerate() {
        let mut acks = 0u64;
        let mut known = 0u64;
        for s in 0..stripes {
            match record.outcome(s, leaf) {
                Some(true) => {
                    acks += 1;
                    known += 1;
                }
                Some(false) => known += 1,
                None => {}
            }
        }
        if known == 0 {
            return Err(TomographyError::NoInformativeStripes {
                node: tree.leaf_node(leaf),
            });
        }
        *rate = acks as f64 / known as f64;
    }

    let mut child_gammas = Vec::new();
    Ok(solve_from_gammas(tree, &gamma, &leaf_rates, &mut stack, &mut child_gammas))
}

/// The shared top-down half of the estimator: cumulative rates by
/// bisection, then per-edge α = A_child / A_parent with the dead-segment
/// convention.
fn solve_from_gammas(
    tree: &LogicalTree,
    gamma: &[f64],
    leaf_rates: &[f64],
    stack: &mut Vec<usize>,
    child_gammas: &mut Vec<f64>,
) -> PassRates {
    let n_nodes = tree.num_nodes();
    // `cumulative` and `alpha` are the *result*, owned by the returned
    // `PassRates`; only the traversal stack and bisection inputs are scratch.
    let mut cumulative = vec![f64::NAN; n_nodes];
    cumulative[0] = 1.0;
    stack.clear();
    stack.push(0usize);
    while let Some(node) = stack.pop() {
        for &child in tree.children(node) {
            cumulative[child] = estimate_cumulative(tree, gamma, leaf_rates, child, child_gammas);
            stack.push(child);
        }
    }

    let mut alpha = vec![1.0; tree.num_edges()];
    stack.clear();
    stack.push(0usize);
    while let Some(node) = stack.pop() {
        for &child in tree.children(node) {
            let a_parent = cumulative[node];
            let a_child = cumulative[child];
            alpha[child - 1] = if a_parent <= 0.0 {
                1.0 // unidentifiable below a dead segment
            } else {
                (a_child / a_parent).clamp(0.0, 1.0)
            };
            stack.push(child);
        }
    }

    PassRates { cumulative, alpha }
}

/// Estimates A_k for a non-root node.
fn estimate_cumulative(
    tree: &LogicalTree,
    gamma: &[f64],
    leaf_rates: &[f64],
    node: usize,
    child_gammas: &mut Vec<f64>,
) -> f64 {
    let g_k = gamma[node];
    if g_k <= 0.0 {
        return 0.0;
    }
    // Effective children γ's: child subtrees, plus the node's own direct
    // observation stream when it is itself a leaf with children.
    child_gammas.clear();
    child_gammas.extend(tree.children(node).iter().map(|&c| gamma[c]));
    if let Some(leaf) = tree.leaf_at(node) {
        if !tree.children(node).is_empty() {
            child_gammas.push(leaf_rates[leaf]);
        } else {
            // Pure leaf: Â = γ̂ directly.
            return g_k;
        }
    }
    if child_gammas.len() < 2 {
        // Single effective child: its subtree's γ equals ours, the edge is
        // unidentifiable here; defer to the child (handled because the
        // child will estimate against the same cumulative value). Treat A
        // as the best available bound: γ_k itself.
        return g_k.clamp(0.0, 1.0);
    }

    // Solve h(A) = γ_k/A − 1 + Π (1 − γ_j/A) = 0 on (γ_k, 1].
    let h = |a: f64| {
        g_k / a - 1.0 + child_gammas.iter().map(|&g| 1.0 - g / a).product::<f64>()
    };
    let mut lo = g_k.min(1.0);
    let mut hi = 1.0;
    if h(hi) >= 0.0 {
        return 1.0; // noise: subtree looks lossless above k
    }
    // h(lo+) ≥ 0 analytically; nudge off the singularity.
    lo += 1e-12;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if h(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Post-order traversal (children before parents) into a reused buffer.
///
/// `stack` encodes the "expanded" bit in the high bit of the node index so
/// the same `Vec<usize>` scratch serves both this and the top-down solve.
fn post_order_into(tree: &LogicalTree, order: &mut Vec<usize>, stack: &mut Vec<usize>) {
    const EXPANDED: usize = 1 << (usize::BITS - 1);
    order.clear();
    order.reserve(tree.num_nodes());
    stack.clear();
    stack.push(0usize);
    while let Some(entry) = stack.pop() {
        if entry & EXPANDED != 0 {
            order.push(entry & !EXPANDED);
        } else {
            stack.push(entry | EXPANDED);
            for &c in tree.children(entry) {
                stack.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::simulate_stripes;
    use crate::tree::ProbeTree;
    use concilium_topology::IpPath;
    use concilium_types::{Id, LinkId, RouterId};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(routers: &[u32], links: &[u32]) -> IpPath {
        IpPath::new(
            routers.iter().copied().map(RouterId).collect(),
            links.iter().copied().map(LinkId).collect(),
        )
    }

    /// Root → branch (link 0) → {leaf1 (link 1), leaf2 (link 2)}.
    fn y_tree() -> LogicalTree {
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2], &[0, 1])),
                (Id::from_u64(2), p(&[0, 1, 3], &[0, 2])),
            ],
        )
        .unwrap()
        .logical()
    }

    /// A three-level tree with 4 leaves.
    fn deep_tree() -> LogicalTree {
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2, 4], &[0, 1, 3])),
                (Id::from_u64(2), p(&[0, 1, 2, 5], &[0, 1, 4])),
                (Id::from_u64(3), p(&[0, 1, 3, 6], &[0, 2, 5])),
                (Id::from_u64(4), p(&[0, 1, 3, 7], &[0, 2, 6])),
            ],
        )
        .unwrap()
        .logical()
    }

    fn edge_by_links(tree: &LogicalTree, links: &[u32]) -> usize {
        let want: Vec<LinkId> = links.iter().copied().map(LinkId).collect();
        (0..tree.num_edges())
            .find(|&e| tree.edge_links(e) == want.as_slice())
            .expect("edge exists")
    }

    #[test]
    fn recovers_uniform_rates() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(100);
        let rec = simulate_stripes(&tree, &|_| 0.9, 20_000, &mut rng);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        for e in 0..tree.num_edges() {
            assert!(
                (rates.edge_pass_rate(e) - 0.9).abs() < 0.01,
                "edge {e}: {}",
                rates.edge_pass_rate(e)
            );
        }
    }

    #[test]
    fn localises_shared_vs_last_mile_loss() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(101);
        // Shared link 0 lossy (0.7), leaf-1 link lossy (0.8), leaf-2 clean.
        let pass = |l: LinkId| match l.0 {
            0 => 0.7,
            1 => 0.8,
            _ => 1.0,
        };
        let rec = simulate_stripes(&tree, &pass, 30_000, &mut rng);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        let shared = edge_by_links(&tree, &[0]);
        let leaf1 = edge_by_links(&tree, &[1]);
        let leaf2 = edge_by_links(&tree, &[2]);
        assert!((rates.edge_pass_rate(shared) - 0.7).abs() < 0.02);
        assert!((rates.edge_pass_rate(leaf1) - 0.8).abs() < 0.02);
        assert!((rates.edge_pass_rate(leaf2) - 1.0).abs() < 0.02);
    }

    #[test]
    fn duffield_accuracy_on_deep_tree() {
        // "inferred link loss rates within 1% of the actual ones" — with
        // plenty of stripes we should match that on a 3-level tree.
        let tree = deep_tree();
        let mut rng = StdRng::seed_from_u64(102);
        let pass = |l: LinkId| match l.0 {
            0 => 0.95,
            1 => 0.90,
            2 => 0.85,
            _ => 0.92,
        };
        let rec = simulate_stripes(&tree, &pass, 50_000, &mut rng);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        for (links, want) in [
            (vec![0u32], 0.95),
            (vec![1], 0.90),
            (vec![2], 0.85),
            (vec![3], 0.92),
            (vec![4], 0.92),
            (vec![5], 0.92),
            (vec![6], 0.92),
        ] {
            let e = edge_by_links(&tree, &links);
            assert!(
                (rates.edge_pass_rate(e) - want).abs() < 0.01,
                "links {links:?}: got {} want {want}",
                rates.edge_pass_rate(e)
            );
        }
    }

    #[test]
    fn dead_shared_edge_detected() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(103);
        let pass = |l: LinkId| if l.0 == 0 { 0.0 } else { 0.9 };
        let rec = simulate_stripes(&tree, &pass, 1_000, &mut rng);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        let shared = edge_by_links(&tree, &[0]);
        assert_eq!(rates.edge_pass_rate(shared), 0.0);
        assert!(!rates.edge_is_up(shared, 0.5));
        // Below a dead segment the convention is pass rate 1 (no evidence).
        let leaf1 = edge_by_links(&tree, &[1]);
        assert_eq!(rates.edge_pass_rate(leaf1), 1.0);
    }

    #[test]
    fn leaf_mismatch_rejected() {
        let tree = y_tree();
        let rec = ProbeRecord::new(vec![vec![true; 3]]);
        assert_eq!(
            infer_pass_rates(&tree, &rec),
            Err(InferError::LeafMismatch { tree: 2, record: 3 })
        );
    }

    #[test]
    fn tolerant_on_complete_record_matches_exactly() {
        let tree = deep_tree();
        let mut rng = StdRng::seed_from_u64(105);
        let rec = simulate_stripes(&tree, &|_| 0.9, 5_000, &mut rng);
        let full = infer_pass_rates(&tree, &rec).unwrap();
        let partial = crate::probe::PartialProbeRecord::from_complete(&rec);
        let tolerant = infer_pass_rates_tolerant(&tree, &partial).unwrap();
        assert_eq!(full, tolerant, "no censoring ⇒ identical estimates");
    }

    #[test]
    fn tolerant_discounts_missing_feedback() {
        // 20% of all feedback cells lost uniformly. Naively mapping the
        // missing cells to "not received" deflates every estimate; the
        // tolerant estimator stays near the truth.
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(106);
        let pass = |l: LinkId| match l.0 {
            0 => 0.9,
            1 => 0.8,
            _ => 0.95,
        };
        let rec = simulate_stripes(&tree, &pass, 30_000, &mut rng);
        let mut partial = crate::probe::PartialProbeRecord::from_complete(&rec);
        partial.censor_random(0.2, &mut rng);
        assert!((partial.censored_fraction() - 0.2).abs() < 0.01);
        let rates = infer_pass_rates_tolerant(&tree, &partial).unwrap();
        for (links, want) in [(vec![0u32], 0.9), (vec![1], 0.8), (vec![2], 0.95)] {
            let e = edge_by_links(&tree, &links);
            assert!(
                (rates.edge_pass_rate(e) - want).abs() < 0.03,
                "links {links:?}: got {} want {want}",
                rates.edge_pass_rate(e)
            );
        }

        // The naive reading of the same censored data is visibly biased
        // on the last-mile edges (each loses ~20% of its acks).
        let naive_rows: Vec<Vec<bool>> = (0..partial.num_stripes())
            .map(|s| {
                (0..partial.num_leaves())
                    .map(|l| partial.outcome(s, l).unwrap_or(false))
                    .collect()
            })
            .collect();
        let naive = infer_pass_rates(&tree, &ProbeRecord::new(naive_rows)).unwrap();
        let leaf1 = edge_by_links(&tree, &[1]);
        assert!(
            naive.edge_pass_rate(leaf1) < 0.8 - 0.1,
            "naive estimate should be deflated, got {}",
            naive.edge_pass_rate(leaf1)
        );
    }

    #[test]
    fn tolerant_rejects_a_fully_starved_leaf() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(107);
        let rec = simulate_stripes(&tree, &|_| 0.9, 100, &mut rng);
        let mut partial = crate::probe::PartialProbeRecord::from_complete(&rec);
        for s in 0..partial.num_stripes() {
            partial.censor(s, 0);
        }
        let err = infer_pass_rates_tolerant(&tree, &partial).unwrap_err();
        assert!(
            matches!(err, TomographyError::NoInformativeStripes { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn tolerant_leaf_mismatch_is_typed() {
        let tree = y_tree();
        let partial =
            crate::probe::PartialProbeRecord::try_new(vec![vec![Some(true); 3]]).unwrap();
        assert_eq!(
            infer_pass_rates_tolerant(&tree, &partial),
            Err(TomographyError::LeafMismatch { tree: 2, record: 3 })
        );
    }

    #[test]
    fn scratch_reuse_matches_fresh_alloc_path() {
        // One scratch driven across different trees, records, and both
        // estimators must reproduce the fresh-allocation results exactly.
        let mut scratch = InferScratch::default();
        let mut rng = StdRng::seed_from_u64(108);

        for (tree, seed) in [(y_tree(), 1u64), (deep_tree(), 2), (y_tree(), 3)] {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let rec = simulate_stripes(&tree, &|l: LinkId| 0.8 + 0.05 * (l.0 % 3) as f64, 2_000, &mut rng2);
            let fresh = infer_pass_rates(&tree, &rec).unwrap();
            let reused = infer_pass_rates_with(&tree, &rec, &mut scratch).unwrap();
            assert_eq!(fresh, reused);

            let mut partial = crate::probe::PartialProbeRecord::from_complete(&rec);
            partial.censor_random(0.1, &mut rng);
            let fresh_t = infer_pass_rates_tolerant(&tree, &partial).unwrap();
            let reused_t = infer_pass_rates_tolerant_with(&tree, &partial, &mut scratch).unwrap();
            assert_eq!(fresh_t, reused_t);
        }

        // Error paths leave the scratch reusable too.
        let tree = y_tree();
        let bad = ProbeRecord::new(vec![vec![true; 3]]);
        assert!(infer_pass_rates_with(&tree, &bad, &mut scratch).is_err());
        let mut rng3 = StdRng::seed_from_u64(4);
        let rec = simulate_stripes(&tree, &|_| 0.9, 500, &mut rng3);
        assert_eq!(
            infer_pass_rates(&tree, &rec).unwrap(),
            infer_pass_rates_with(&tree, &rec, &mut scratch).unwrap()
        );
    }

    #[test]
    fn scratch_shape_cache_survives_tree_swaps() {
        // Regression for the shape cache: alternate between trees with
        // DIFFERENT shapes (including two builds of the same shape, which
        // must hit the cache but is indistinguishable from outside) and
        // require exact agreement with the scalar reference every time.
        let mut scratch = InferScratch::default();
        let trees = [y_tree(), deep_tree(), y_tree(), deep_tree(), y_tree()];
        for (i, tree) in trees.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(200 + i as u64);
            let rec = simulate_stripes(tree, &|l: LinkId| 0.7 + 0.1 * (l.0 % 3) as f64, 777, &mut rng);
            assert_eq!(
                infer_pass_rates_reference(tree, &rec).unwrap(),
                infer_pass_rates_with(tree, &rec, &mut scratch).unwrap(),
                "swap {i}: packed kernel diverged from scalar reference"
            );
            let mut partial = crate::probe::PartialProbeRecord::from_complete(&rec);
            partial.censor_random(0.15, &mut rng);
            assert_eq!(
                infer_pass_rates_tolerant_reference(tree, &partial),
                infer_pass_rates_tolerant_with(tree, &partial, &mut scratch),
                "swap {i}: tolerant packed kernel diverged"
            );
        }
    }

    #[test]
    fn batch_handles_mixed_errors_and_stripe_counts() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(300);
        // 64 and 65 stripes straddle the block boundary; a mismatched
        // record in the middle must error without disturbing the rest.
        let r64 = simulate_stripes(&tree, &|_| 0.9, 64, &mut rng);
        let bad = ProbeRecord::new(vec![vec![true; 3]]);
        let r65 = simulate_stripes(&tree, &|_| 0.8, 65, &mut rng);
        let mut scratch = InferScratch::default();
        let out = infer_pass_rates_batch(&tree, &[r64.clone(), bad, r65.clone()], &mut scratch);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], infer_pass_rates_reference(&tree, &r64));
        assert_eq!(out[1], Err(InferError::LeafMismatch { tree: 2, record: 3 }));
        assert_eq!(out[2], infer_pass_rates_reference(&tree, &r65));

        // Tolerant batch, with a fully starved record in the middle.
        let p64 = crate::probe::PartialProbeRecord::from_complete(&r64);
        let mut starved = crate::probe::PartialProbeRecord::from_complete(&r64);
        for s in 0..starved.num_stripes() {
            starved.censor(s, 0);
        }
        let p65 = crate::probe::PartialProbeRecord::from_complete(&r65);
        let out =
            infer_pass_rates_tolerant_batch(&tree, &[p64.clone(), starved.clone(), p65.clone()], &mut scratch);
        assert_eq!(out[0], infer_pass_rates_tolerant_reference(&tree, &p64));
        assert_eq!(out[1], infer_pass_rates_tolerant_reference(&tree, &starved));
        assert_eq!(out[2], infer_pass_rates_tolerant_reference(&tree, &p65));
    }

    #[test]
    fn suppressing_leaf_ruins_shared_inference() {
        // §3.3 (after Arya et al.): a leaf that drops acknowledgments for
        // probes it received "can ruin many inferences throughout the
        // tree". With one of two leaves silent, the branch node has a
        // single informative child, so loss on the shared segment can no
        // longer be separated from the sibling's last mile: the shared
        // edge reads lossless and its loss is mis-attributed downstream.
        // This is exactly why Concilium needs the feedback-verification
        // tests in `feedback`.
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(104);
        let mut rec = simulate_stripes(&tree, &|_| 0.95, 20_000, &mut rng);
        rec.suppress_leaf(0);
        let rates = infer_pass_rates(&tree, &rec).unwrap();
        let shared = edge_by_links(&tree, &[0]);
        let leaf1 = edge_by_links(&tree, &[1]);
        let leaf2 = edge_by_links(&tree, &[2]);
        assert!(rates.edge_pass_rate(shared) > 0.98, "shared loss hidden");
        assert!(rates.edge_pass_rate(leaf1) < 0.01, "suppressed leaf looks dead");
        // The sibling's edge absorbs the shared loss: ≈ 0.95² ≈ 0.9025.
        assert!(
            (rates.edge_pass_rate(leaf2) - 0.9025).abs() < 0.02,
            "sibling absorbs shared loss, got {}",
            rates.edge_pass_rate(leaf2)
        );
    }

    /// Builds a random multicast tree by growing random leaf paths that
    /// share prefixes. Router/link ids encode the path prefix, so two
    /// leaves agree on a router exactly when their prefixes agree — every
    /// generated path set forms a proper tree with no remerging.
    fn random_tree(rng: &mut StdRng) -> LogicalTree {
        const BRANCH: u64 = 3;
        loop {
            let n_leaves = rng.gen_range(1..7usize);
            let mut used = std::collections::BTreeSet::new();
            let mut leaves = Vec::new();
            for leaf in 0..n_leaves {
                let depth = rng.gen_range(1..5usize);
                let mut routers = vec![0u32];
                let mut links = Vec::new();
                let mut prefix = 0u64;
                for _ in 0..depth {
                    let choice = rng.gen_range(0..BRANCH);
                    prefix = prefix * (BRANCH + 1) + choice + 1;
                    routers.push(prefix as u32);
                    links.push(prefix as u32);
                }
                if !used.insert(prefix) {
                    continue; // identical full path: same leaf twice
                }
                leaves.push((
                    Id::from_u64(1000 + leaf as u64),
                    p(&routers, &links),
                ));
            }
            if leaves.is_empty() {
                continue;
            }
            if let Ok(tree) = ProbeTree::from_paths(RouterId(0), leaves) {
                return tree.logical();
            }
        }
    }

    proptest! {
        /// Across random trees and records, the packed single-record and
        /// batched kernels are bit-identical to the scalar reference —
        /// strict and tolerant, including error values — with one scratch
        /// reused across everything (so the shape cache is exercised by
        /// every tree change).
        #[test]
        fn packed_and_batched_match_scalar_reference(seed in 0u64..1_000_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut scratch = InferScratch::default();
            for round in 0..4 {
                let tree = random_tree(&mut rng);
                // Stripe counts straddling u64-block boundaries.
                let stripes = [1, 63, 64, 65, 128, 150][rng.gen_range(0..6usize)];
                let base = 0.3 + 0.6 * rng.gen::<f64>();
                let rec = simulate_stripes(
                    &tree,
                    &|l: LinkId| (base + 0.05 * (l.0 % 5) as f64).min(1.0),
                    stripes,
                    &mut rng,
                );
                let want = infer_pass_rates_reference(&tree, &rec);
                prop_assert_eq!(&want, &infer_pass_rates_with(&tree, &rec, &mut scratch), "strict round {}", round);
                let batch = infer_pass_rates_batch(&tree, std::slice::from_ref(&rec), &mut scratch);
                prop_assert_eq!(&want, &batch[0], "strict batch round {}", round);

                let mut partial = crate::probe::PartialProbeRecord::from_complete(&rec);
                partial.censor_random(0.3 * rng.gen::<f64>(), &mut rng);
                let want_t = infer_pass_rates_tolerant_reference(&tree, &partial);
                prop_assert_eq!(
                    &want_t,
                    &infer_pass_rates_tolerant_with(&tree, &partial, &mut scratch),
                    "tolerant round {}", round
                );
                let batch_t =
                    infer_pass_rates_tolerant_batch(&tree, std::slice::from_ref(&partial), &mut scratch);
                prop_assert_eq!(&want_t, &batch_t[0], "tolerant batch round {}", round);
            }
        }
    }
}
