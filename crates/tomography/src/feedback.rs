//! Feedback verification: defending inference against lying leaves (§3.3).
//!
//! Striped-unicast tomography trusts leaves to acknowledge received
//! probes. Two attacks exist:
//!
//! * **Spurious acknowledgments** — a leaf acks probes that were actually
//!   lost. Defeated by per-probe nonces ([`NonceLedger`]): a leaf that
//!   never received a probe cannot know its nonce.
//! * **Acknowledgment suppression** — a leaf drops acks for probes it
//!   received, which "can ruin many inferences throughout the tree".
//!   Detected statistically ([`suspicious_leaves`], after Arya et al.):
//!   a suppressing leaf's acknowledgment rate, *conditioned on sibling
//!   subtrees demonstrating that the shared path was up*, is far below
//!   its peers'.

use std::collections::HashMap;

use rand::Rng;

use concilium_crypto::Nonce;
use concilium_types::Id;

use crate::error::TomographyError;
use crate::probe::ProbeRecord;
use crate::tree::LogicalTree;

/// Tracks the nonce issued with each probe and validates echoes.
///
/// # Examples
///
/// ```
/// use concilium_tomography::feedback::NonceLedger;
/// use concilium_types::Id;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut ledger = NonceLedger::new();
/// let n = ledger.issue(0, Id::from_u64(5), &mut rng);
/// assert!(ledger.validate(0, Id::from_u64(5), n));
/// // A fabricated ack with a guessed nonce is rejected and counted.
/// let forged = concilium_crypto::Nonce::from_raw(12345);
/// assert!(!ledger.validate(0, Id::from_u64(5), forged));
/// assert_eq!(ledger.spurious_count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct NonceLedger {
    issued: HashMap<(usize, Id), Nonce>,
    spurious: u64,
}

impl NonceLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        NonceLedger::default()
    }

    /// Issues (and records) the nonce for probe `stripe` to `leaf`.
    pub fn issue<R: Rng + ?Sized>(&mut self, stripe: usize, leaf: Id, rng: &mut R) -> Nonce {
        let n = Nonce::random(rng);
        self.issued.insert((stripe, leaf), n);
        n
    }

    /// Validates an echoed nonce. Mismatches and echoes for never-issued
    /// probes count as spurious acknowledgments.
    pub fn validate(&mut self, stripe: usize, leaf: Id, echoed: Nonce) -> bool {
        match self.issued.get(&(stripe, leaf)) {
            Some(n) if n.matches(echoed) => true,
            _ => {
                self.spurious += 1;
                false
            }
        }
    }

    /// Number of spurious acknowledgments seen so far.
    pub fn spurious_count(&self) -> u64 {
        self.spurious
    }

    /// Number of nonces issued.
    pub fn issued_count(&self) -> usize {
        self.issued.len()
    }
}

/// Flags leaves whose acknowledgment behaviour is inconsistent with their
/// siblings': likely acknowledgment suppressors.
///
/// For each leaf, consider only the stripes where some *other* subtree of
/// the leaf's parent acknowledged — evidence that the stripe reached the
/// parent. The leaf's conditional ack rate over those stripes estimates
/// its last-edge pass rate. A leaf whose conditional rate is below
/// `ratio_threshold ×` the median conditional rate across comparable
/// leaves is flagged.
///
/// Leaves with fewer than `min_evidence` evidence stripes, or without
/// siblings, are never flagged (no basis for comparison).
///
/// Returns the indices of flagged leaves.
///
/// # Panics
///
/// Panics if the record's leaf count does not match the tree, or if
/// `ratio_threshold` is not in `(0, 1)`. Use [`try_suspicious_leaves`]
/// for records received from other hosts.
pub fn suspicious_leaves(
    tree: &LogicalTree,
    record: &ProbeRecord,
    min_evidence: usize,
    ratio_threshold: f64,
) -> Vec<usize> {
    match try_suspicious_leaves(tree, record, min_evidence, ratio_threshold) {
        Ok(flagged) => flagged,
        // lint:allow(no-panic, reason = "documented-panic convenience wrapper; try_suspicious_leaves is the protocol-input path")
        Err(err) => panic!("{err}"),
    }
}

/// Fallible variant of [`suspicious_leaves`] for protocol input.
///
/// # Errors
///
/// [`TomographyError::LeafMismatch`] when the record does not match the
/// tree, [`TomographyError::BadThreshold`] when `ratio_threshold` is
/// outside `(0, 1)`.
pub fn try_suspicious_leaves(
    tree: &LogicalTree,
    record: &ProbeRecord,
    min_evidence: usize,
    ratio_threshold: f64,
) -> Result<Vec<usize>, TomographyError> {
    if record.num_leaves() != tree.num_leaves() {
        return Err(TomographyError::LeafMismatch {
            tree: tree.num_leaves(),
            record: record.num_leaves(),
        });
    }
    if !(ratio_threshold > 0.0 && ratio_threshold < 1.0) {
        return Err(TomographyError::BadThreshold { value: ratio_threshold });
    }

    // Parent of each node.
    let mut parent = vec![usize::MAX; tree.num_nodes()];
    let mut stack = vec![0usize];
    while let Some(n) = stack.pop() {
        for &c in tree.children(n) {
            parent[c] = n;
            stack.push(c);
        }
    }

    // Subtree-ack indicator per stripe, per node (bottom-up).
    let n_leaves = tree.num_leaves();
    let stripes = record.num_stripes();

    // For each leaf: evidence count and conditional acks.
    let mut evidence = vec![0usize; n_leaves];
    let mut cond_acks = vec![0usize; n_leaves];

    // Pre-compute for each stripe the set of "subtree acked" flags.
    let order = post_order(tree);
    let mut acked = vec![false; tree.num_nodes()];
    for s in 0..stripes {
        for &node in &order {
            let mut any = tree
                .leaf_at(node)
                .map(|leaf| record.received(s, leaf))
                .unwrap_or(false);
            if !any {
                any = tree.children(node).iter().any(|&c| acked[c]);
            }
            acked[node] = any;
        }
        for leaf in 0..n_leaves {
            let node = tree.leaf_node(leaf);
            let p = parent[node];
            if p == usize::MAX {
                continue;
            }
            // Sibling evidence: any other child subtree of p acked, or p
            // itself directly acked (p may be a leaf node too).
            let sibling_evidence = tree
                .children(p)
                .iter()
                .any(|&c| c != node && acked[c])
                || tree
                    .leaf_at(p)
                    .map(|l| record.received(s, l))
                    .unwrap_or(false);
            if sibling_evidence {
                evidence[leaf] += 1;
                if record.received(s, leaf) {
                    cond_acks[leaf] += 1;
                }
            }
        }
    }

    let rates: Vec<Option<f64>> = (0..n_leaves)
        .map(|l| {
            if evidence[l] >= min_evidence {
                Some(cond_acks[l] as f64 / evidence[l] as f64)
            } else {
                None
            }
        })
        .collect();

    let mut usable: Vec<f64> = rates.iter().filter_map(|r| *r).collect();
    if usable.len() < 2 {
        return Ok(Vec::new());
    }
    // Rates are ratios of non-negative counters and thus never NaN, but
    // `total_cmp` keeps the sort panic-free even if that ever changes.
    usable.sort_by(f64::total_cmp);
    let median = usable[usable.len() / 2];
    if median <= 0.0 {
        return Ok(Vec::new());
    }

    Ok((0..n_leaves)
        .filter(|&l| matches!(rates[l], Some(r) if r < ratio_threshold * median))
        .collect())
}

fn post_order(tree: &LogicalTree) -> Vec<usize> {
    let mut order = Vec::with_capacity(tree.num_nodes());
    let mut stack = vec![(0usize, false)];
    while let Some((node, expanded)) = stack.pop() {
        if expanded {
            order.push(node);
        } else {
            stack.push((node, true));
            for &c in tree.children(node) {
                stack.push((c, false));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::simulate_stripes;
    use crate::tree::ProbeTree;
    use concilium_topology::IpPath;
    use concilium_types::{LinkId, RouterId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(routers: &[u32], links: &[u32]) -> IpPath {
        IpPath::new(
            routers.iter().copied().map(RouterId).collect(),
            links.iter().copied().map(LinkId).collect(),
        )
    }

    fn four_leaf_tree() -> LogicalTree {
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2], &[0, 1])),
                (Id::from_u64(2), p(&[0, 1, 3], &[0, 2])),
                (Id::from_u64(3), p(&[0, 1, 4], &[0, 3])),
                (Id::from_u64(4), p(&[0, 1, 5], &[0, 4])),
            ],
        )
        .unwrap()
        .logical()
    }

    #[test]
    fn honest_leaves_not_flagged() {
        let tree = four_leaf_tree();
        let mut rng = StdRng::seed_from_u64(7);
        let rec = simulate_stripes(&tree, &|_| 0.9, 5_000, &mut rng);
        assert!(suspicious_leaves(&tree, &rec, 50, 0.5).is_empty());
    }

    #[test]
    fn suppressor_flagged() {
        let tree = four_leaf_tree();
        let mut rng = StdRng::seed_from_u64(8);
        let mut rec = simulate_stripes(&tree, &|_| 0.9, 5_000, &mut rng);
        rec.suppress_leaf(2);
        assert_eq!(suspicious_leaves(&tree, &rec, 50, 0.5), vec![2]);
    }

    #[test]
    fn genuinely_lossy_last_mile_not_flagged_at_loose_threshold() {
        // A leaf behind a 60%-pass last mile is lossy but not a suppressor;
        // with ratio 0.3 it should survive (0.6 > 0.3 × ~0.9).
        let tree = four_leaf_tree();
        let mut rng = StdRng::seed_from_u64(9);
        let pass = |l: LinkId| if l.0 == 3 { 0.6 } else { 0.9 };
        let rec = simulate_stripes(&tree, &pass, 5_000, &mut rng);
        assert!(suspicious_leaves(&tree, &rec, 50, 0.3).is_empty());
    }

    #[test]
    fn insufficient_evidence_never_flags() {
        let tree = four_leaf_tree();
        let mut rng = StdRng::seed_from_u64(10);
        let mut rec = simulate_stripes(&tree, &|_| 0.9, 30, &mut rng);
        rec.suppress_leaf(0);
        // min_evidence of 100 exceeds the 30 stripes available.
        assert!(suspicious_leaves(&tree, &rec, 100, 0.5).is_empty());
    }

    #[test]
    fn nonce_ledger_counts_spurious() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ledger = NonceLedger::new();
        let leaf = Id::from_u64(1);
        let n0 = ledger.issue(0, leaf, &mut rng);
        let _n1 = ledger.issue(1, leaf, &mut rng);
        assert!(ledger.validate(0, leaf, n0));
        // Replaying stripe 0's nonce for stripe 1 fails.
        assert!(!ledger.validate(1, leaf, n0));
        // Acks for probes never issued fail.
        assert!(!ledger.validate(7, leaf, n0));
        assert_eq!(ledger.spurious_count(), 2);
        assert_eq!(ledger.issued_count(), 2);
    }

    #[test]
    #[should_panic(expected = "ratio threshold")]
    fn bad_threshold_rejected() {
        let tree = four_leaf_tree();
        let rec = ProbeRecord::new(vec![vec![true; 4]]);
        let _ = suspicious_leaves(&tree, &rec, 1, 1.5);
    }
}
