//! Collaborative network tomography for the Concilium reproduction (§3.2–3.3).
//!
//! Each host H is connected to its routing peers by IP links that induce a
//! communication tree T_H rooted at H; the forest F_H unions H's tree with
//! the trees of its routing peers. Hosts probe their own trees with
//! striped unicast probes (Duffield et al.) and exchange signed snapshots
//! of the results, giving every host a collaborative map of link quality
//! across its forest.
//!
//! * [`ProbeTree`] / [`LogicalTree`] — the tree induced by the IP paths
//!   from a root to its routing peers, and its collapsed logical form
//!   (branching points only) on which inference runs.
//! * [`Forest`] — the union of trees with per-link coverage counts
//!   (Figure 4's "vouching peers").
//! * [`probe`] — striped-unicast probe simulation: per-stripe link
//!   outcomes shared across back-to-back packets, emulating multicast.
//! * [`infer`] — the MINC maximum-likelihood estimator recovering
//!   per-edge pass rates from leaf acknowledgment patterns.
//! * [`snapshot`] — signed, timestamped tomographic snapshots with the
//!   compact loss-bucket encoding of §4.4.
//! * [`feedback`] — defences against lying leaves: probe nonces and the
//!   Arya-style consistency test that flags leaves suppressing
//!   acknowledgments.
//! * [`identify`] — Boolean-tomography identifiability: which link
//!   subsets the probe/route matrix can distinguish at all, as ambiguity
//!   classes bounding how finely any inference may assign blame.
//! * [`PartialProbeRecord`] / [`infer_pass_rates_tolerant`] — inference
//!   under *missing* feedback: stripes whose acknowledgment fate is
//!   unknown (lost acks, crashed leaves) are discounted rather than
//!   misread as loss, with [`TomographyError`] replacing panics on
//!   malformed protocol input.
//!
//! # Examples
//!
//! ```
//! use concilium_tomography::{ProbeTree, probe::simulate_stripes, infer::infer_pass_rates};
//! use concilium_topology::IpPath;
//! use concilium_types::{Id, LinkId, RouterId};
//! use rand::SeedableRng;
//!
//! // Root r0 with two leaves behind a shared link l0.
//! let paths = vec![
//!     (Id::from_u64(1), IpPath::new(vec![RouterId(0), RouterId(1), RouterId(2)],
//!                                   vec![LinkId(0), LinkId(1)])),
//!     (Id::from_u64(2), IpPath::new(vec![RouterId(0), RouterId(1), RouterId(3)],
//!                                   vec![LinkId(0), LinkId(2)])),
//! ];
//! let tree = ProbeTree::from_paths(RouterId(0), paths).unwrap();
//! let logical = tree.logical();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let record = simulate_stripes(&logical, &|_| 0.95, 4_000, &mut rng);
//! let rates = infer_pass_rates(&logical, &record).unwrap();
//! for edge in 0..logical.num_edges() {
//!     assert!((rates.edge_pass_rate(edge) - 0.95).abs() < 0.03);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
mod error;
pub mod feedback;
mod forest;
pub mod identify;
pub mod infer;
pub mod oracle;
pub mod probe;
pub mod schedule;
pub mod snapshot;
mod tree;

pub use error::TomographyError;
pub use forest::Forest;
pub use identify::AmbiguityClasses;
pub use infer::{
    infer_pass_rates_batch, infer_pass_rates_reference, infer_pass_rates_tolerant,
    infer_pass_rates_tolerant_batch, infer_pass_rates_tolerant_reference,
    infer_pass_rates_tolerant_with, infer_pass_rates_with, InferScratch,
};
pub use probe::PartialProbeRecord;
pub use snapshot::{LinkObservation, LossBucket, TomographySnapshot};
pub use tree::{LogicalTree, ProbeTree, TreeError};
