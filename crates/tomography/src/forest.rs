//! Forests F_H: a host's tree together with its routing peers' trees.
//!
//! Figure 4 of the paper studies how forest link coverage grows as a host
//! incorporates tomographic results from more peer trees: a few trees
//! cover the highly shared core links, but many are needed for last-mile
//! links used by only a few hosts. [`Forest`] computes that coverage curve
//! and the per-link "vouching peer" counts.

use std::collections::HashMap;

use concilium_types::LinkId;

use crate::tree::ProbeTree;

/// The forest F_H: the union of the host's own probe tree and the trees
/// rooted at each of its routing peers.
#[derive(Clone, Debug)]
pub struct Forest {
    /// Link sets per tree; index 0 is the host's own tree.
    tree_links: Vec<Vec<LinkId>>,
    /// Union of all links in the forest.
    universe: Vec<LinkId>,
}

impl Forest {
    /// Builds the forest from the host's own tree and its peers' trees.
    pub fn new(own: &ProbeTree, peers: &[ProbeTree]) -> Self {
        let mut tree_links = Vec::with_capacity(peers.len() + 1);
        tree_links.push(own.link_set());
        for t in peers {
            tree_links.push(t.link_set());
        }
        let mut universe: Vec<LinkId> =
            tree_links.iter().flat_map(|ls| ls.iter().copied()).collect();
        universe.sort();
        universe.dedup();
        Forest { tree_links, universe }
    }

    /// Total number of distinct links in the forest.
    pub fn total_links(&self) -> usize {
        self.universe.len()
    }

    /// Number of trees in the forest (own + peers).
    pub fn num_trees(&self) -> usize {
        self.tree_links.len()
    }

    /// Fraction of forest links covered by the host's own tree plus the
    /// first `peer_trees` peer trees (in construction order).
    ///
    /// # Panics
    ///
    /// Panics if `peer_trees` exceeds the number of peer trees.
    pub fn coverage_with(&self, peer_trees: usize) -> f64 {
        assert!(
            peer_trees < self.tree_links.len(),
            "forest has only {} peer trees",
            self.tree_links.len() - 1
        );
        let mut covered: Vec<LinkId> = self.tree_links[..=peer_trees]
            .iter()
            .flat_map(|ls| ls.iter().copied())
            .collect();
        covered.sort();
        covered.dedup();
        covered.len() as f64 / self.total_links() as f64
    }

    /// The full coverage curve: entry `k` is the coverage fraction with
    /// `k` peer trees included (entry 0 = own tree only).
    pub fn coverage_curve(&self) -> Vec<f64> {
        let mut covered: Vec<LinkId> = Vec::new();
        let mut curve = Vec::with_capacity(self.tree_links.len());
        for ls in &self.tree_links {
            covered.extend(ls.iter().copied());
            covered.sort();
            covered.dedup();
            curve.push(covered.len() as f64 / self.total_links() as f64);
        }
        curve
    }

    /// For each forest link, how many trees probe it ("vouching peers").
    pub fn vouch_counts(&self) -> HashMap<LinkId, u32> {
        let mut counts: HashMap<LinkId, u32> = HashMap::new();
        for ls in &self.tree_links {
            for &l in ls {
                *counts.entry(l).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Mean number of vouching trees per covered link, when the host's own
    /// tree plus the first `peer_trees` peer trees are included.
    ///
    /// # Panics
    ///
    /// Panics if `peer_trees` exceeds the number of peer trees.
    pub fn mean_vouchers_with(&self, peer_trees: usize) -> f64 {
        assert!(
            peer_trees < self.tree_links.len(),
            "forest has only {} peer trees",
            self.tree_links.len() - 1
        );
        let mut counts: HashMap<LinkId, u32> = HashMap::new();
        for ls in &self.tree_links[..=peer_trees] {
            for &l in ls {
                *counts.entry(l).or_insert(0) += 1;
            }
        }
        if counts.is_empty() {
            return 0.0;
        }
        counts.values().map(|&c| c as f64).sum::<f64>() / counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ProbeTree;
    use concilium_topology::IpPath;
    use concilium_types::{Id, RouterId};

    fn p(routers: &[u32], links: &[u32]) -> IpPath {
        IpPath::new(
            routers.iter().copied().map(RouterId).collect(),
            links.iter().copied().map(LinkId).collect(),
        )
    }

    fn tree(root: u32, leaves: Vec<(u64, IpPath)>) -> ProbeTree {
        ProbeTree::from_paths(
            RouterId(root),
            leaves.into_iter().map(|(i, path)| (Id::from_u64(i), path)).collect(),
        )
        .unwrap()
    }

    fn forest() -> Forest {
        // Own tree covers links {0,1}; peer 1 covers {0,2}; peer 2 {3,4}.
        let own = tree(0, vec![(1, p(&[0, 1, 2], &[0, 1]))]);
        let p1 = tree(5, vec![(2, p(&[5, 1, 6], &[2, 0]))]);
        let p2 = tree(7, vec![(3, p(&[7, 8, 9], &[3, 4]))]);
        Forest::new(&own, &[p1, p2])
    }

    #[test]
    fn universe_is_union() {
        let f = forest();
        assert_eq!(f.total_links(), 5);
        assert_eq!(f.num_trees(), 3);
    }

    #[test]
    fn coverage_grows_monotonically() {
        let f = forest();
        let curve = f.coverage_curve();
        assert_eq!(curve.len(), 3);
        assert!((curve[0] - 2.0 / 5.0).abs() < 1e-12);
        assert!((curve[1] - 3.0 / 5.0).abs() < 1e-12);
        assert!((curve[2] - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(f.coverage_with(1), curve[1]);
    }

    #[test]
    fn vouch_counts_count_trees() {
        let f = forest();
        let counts = f.vouch_counts();
        assert_eq!(counts[&LinkId(0)], 2); // shared by own tree and peer 1
        assert_eq!(counts[&LinkId(1)], 1);
        assert_eq!(counts[&LinkId(3)], 1);
    }

    #[test]
    fn mean_vouchers_increase_with_trees() {
        let f = forest();
        // Own tree only: links {0,1}, one voucher each.
        assert!((f.mean_vouchers_with(0) - 1.0).abs() < 1e-12);
        // Adding peer 1: links {0:2, 1:1, 2:1} → 4/3.
        assert!((f.mean_vouchers_with(1) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "peer trees")]
    fn coverage_bounds_checked() {
        let f = forest();
        let _ = f.coverage_with(3);
    }
}
