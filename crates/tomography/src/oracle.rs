//! Direct-evaluation oracles for the MINC estimator, used by the
//! deterministic-simulation-testing (DST) harness to cross-check
//! [`infer_pass_rates`](crate::infer::infer_pass_rates) against an
//! independently coded re-derivation.
//!
//! The production estimator computes the subtree-ack probabilities γ̂ by
//! a per-stripe post-order bit propagation and solves the MINC
//! fixed-point equation by bisection. This module deliberately shares
//! *none* of that code:
//!
//! * γ̂ is recomputed from its definition — for each node, collect the
//!   leaves of its subtree by recursion and count the stripes in which
//!   any of them acknowledged;
//! * two-child branching nodes use the closed form
//!   `A = γ₁γ₂ / (γ₁ + γ₂ − γ_k)` (solve the MINC equation's quadratic
//!   directly);
//! * wider branching nodes use the classical MINC fixed-point iteration
//!   `A ← γ_k / (1 − Π_j (1 − γ_j / A))` instead of bisection.
//!
//! The degenerate-case conventions (dead subtrees, single effective
//! children, noise pushing the bracket past 1) mirror the documented
//! behavior of the production code so the two paths are comparable to
//! floating-point tolerance on any input, not just clean ones.

use crate::infer::InferError;
use crate::probe::ProbeRecord;
use crate::tree::LogicalTree;

/// Oracle estimates: cumulative root→node pass probability per node and
/// per-edge pass rate (`edge` = child node − 1), in the same layout as
/// the production [`PassRates`](crate::infer::PassRates).
#[derive(Clone, Debug, PartialEq)]
pub struct OracleRates {
    /// Cumulative root→node pass probability, per node.
    pub cumulative: Vec<f64>,
    /// Per-edge pass rate.
    pub alpha: Vec<f64>,
}

/// The closed-form MINC solution at a node with exactly two effective
/// children: from `1 − γ_k/A = (1 − γ₁/A)(1 − γ₂/A)` it follows that
/// `A = γ₁γ₂ / (γ₁ + γ₂ − γ_k)`. Degenerate conventions match the
/// production estimator: a non-positive denominator or a solution above
/// one (sampling noise making the subtree look lossless) clamps to 1,
/// and `γ_k ≤ 0` yields 0.
pub fn binary_branch_cumulative(g_k: f64, g_1: f64, g_2: f64) -> f64 {
    if g_k <= 0.0 {
        return 0.0;
    }
    let denom = g_1 + g_2 - g_k;
    if denom <= 0.0 {
        return 1.0;
    }
    let a = g_1 * g_2 / denom;
    if a >= 1.0 {
        1.0
    } else {
        a
    }
}

/// Re-derives per-edge pass rates from first principles (see the module
/// docs). The result should match
/// [`infer_pass_rates`](crate::infer::infer_pass_rates) on the same
/// record to floating-point tolerance.
///
/// # Errors
///
/// Returns [`InferError::LeafMismatch`] if the record does not match the
/// tree.
pub fn oracle_pass_rates(
    tree: &LogicalTree,
    record: &ProbeRecord,
) -> Result<OracleRates, InferError> {
    if record.num_leaves() != tree.num_leaves() {
        return Err(InferError::LeafMismatch {
            tree: tree.num_leaves(),
            record: record.num_leaves(),
        });
    }
    let n_nodes = tree.num_nodes();
    let stripes = record.num_stripes();

    // γ̂ by definition: the fraction of stripes in which any leaf of the
    // node's subtree acknowledged.
    let mut gamma = vec![0.0; n_nodes];
    for (node, g) in gamma.iter_mut().enumerate() {
        let leaves = subtree_leaves(tree, node);
        let acked = (0..stripes)
            .filter(|&s| leaves.iter().any(|&l| record.received(s, l)))
            .count();
        *g = acked as f64 / stripes as f64;
    }
    let leaf_rates: Vec<f64> =
        (0..tree.num_leaves()).map(|l| record.leaf_ack_rate(l)).collect();

    // Cumulative rates top-down (the root passes by definition), then
    // per-edge rates with the dead-segment convention.
    let mut cumulative = vec![1.0; n_nodes];
    let mut alpha = vec![1.0; tree.num_edges()];
    let mut stack = vec![0usize];
    while let Some(node) = stack.pop() {
        for &child in tree.children(node) {
            cumulative[child] = oracle_cumulative(tree, &gamma, &leaf_rates, child);
            alpha[child - 1] = if cumulative[node] <= 0.0 {
                1.0 // unidentifiable below a dead segment
            } else {
                (cumulative[child] / cumulative[node]).clamp(0.0, 1.0)
            };
            stack.push(child);
        }
    }
    Ok(OracleRates { cumulative, alpha })
}

/// The leaves (record column indices) in `node`'s subtree, by recursion.
fn subtree_leaves(tree: &LogicalTree, node: usize) -> Vec<usize> {
    let mut leaves = Vec::new();
    if let Some(l) = tree.leaf_at(node) {
        leaves.push(l);
    }
    for &c in tree.children(node) {
        leaves.extend(subtree_leaves(tree, c));
    }
    leaves
}

/// A_k for a non-root node: closed form for two effective children, the
/// MINC fixed-point iteration for more.
fn oracle_cumulative(
    tree: &LogicalTree,
    gamma: &[f64],
    leaf_rates: &[f64],
    node: usize,
) -> f64 {
    let g_k = gamma[node];
    if g_k <= 0.0 {
        return 0.0;
    }
    let mut gs: Vec<f64> = tree.children(node).iter().map(|&c| gamma[c]).collect();
    if let Some(leaf) = tree.leaf_at(node) {
        if gs.is_empty() {
            return g_k; // a pure leaf: Â = γ̂ directly
        }
        // A leaf with children contributes its own direct stream as an
        // extra effective child.
        gs.push(leaf_rates[leaf]);
    }
    match gs.len() {
        0 | 1 => g_k.clamp(0.0, 1.0), // single effective child: unidentifiable here
        2 => binary_branch_cumulative(g_k, gs[0], gs[1]),
        _ => {
            // h(1) ≥ 0 means the subtree looks lossless above this node.
            let h1 = g_k - 1.0 + gs.iter().map(|&g| 1.0 - g).product::<f64>();
            if h1 >= 0.0 {
                return 1.0;
            }
            // A ← γ_k / (1 − Π (1 − γ_j / A)): decreasing from 1 and
            // convergent to the unique root in (max γ_j, 1).
            let mut a = 1.0f64;
            for _ in 0..200 {
                let miss = gs.iter().map(|&g| 1.0 - g / a).product::<f64>();
                let next = g_k / (1.0 - miss);
                if (next - a).abs() < 1e-14 {
                    return next.clamp(0.0, 1.0);
                }
                a = next;
            }
            a.clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_pass_rates;
    use crate::probe::simulate_stripes;
    use crate::tree::ProbeTree;
    use concilium_topology::IpPath;
    use concilium_types::{Id, LinkId, RouterId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(routers: &[u32], links: &[u32]) -> IpPath {
        IpPath::new(
            routers.iter().copied().map(RouterId).collect(),
            links.iter().copied().map(LinkId).collect(),
        )
    }

    fn y_tree() -> LogicalTree {
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2], &[0, 1])),
                (Id::from_u64(2), p(&[0, 1, 3], &[0, 2])),
            ],
        )
        .unwrap()
        .logical()
    }

    fn deep_tree() -> LogicalTree {
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2, 4], &[0, 1, 3])),
                (Id::from_u64(2), p(&[0, 1, 2, 5], &[0, 1, 4])),
                (Id::from_u64(3), p(&[0, 1, 3, 6], &[0, 2, 5])),
                (Id::from_u64(4), p(&[0, 1, 3, 7], &[0, 2, 6])),
            ],
        )
        .unwrap()
        .logical()
    }

    /// One branch node fanning out to three leaves: exercises the
    /// fixed-point path (the production code bisects here).
    fn wide_tree() -> LogicalTree {
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2], &[0, 1])),
                (Id::from_u64(2), p(&[0, 1, 3], &[0, 2])),
                (Id::from_u64(3), p(&[0, 1, 4], &[0, 3])),
            ],
        )
        .unwrap()
        .logical()
    }

    fn assert_matches_production(tree: &LogicalTree, rec: &ProbeRecord, tol: f64) {
        let prod = infer_pass_rates(tree, rec).unwrap();
        let oracle = oracle_pass_rates(tree, rec).unwrap();
        for e in 0..tree.num_edges() {
            assert!(
                (prod.edge_pass_rate(e) - oracle.alpha[e]).abs() < tol,
                "edge {e}: production {} vs oracle {}",
                prod.edge_pass_rate(e),
                oracle.alpha[e]
            );
        }
        for n in 0..tree.num_nodes() {
            assert!(
                (prod.cumulative(n) - oracle.cumulative[n]).abs() < tol,
                "node {n}: production {} vs oracle {}",
                prod.cumulative(n),
                oracle.cumulative[n]
            );
        }
    }

    #[test]
    fn closed_form_solves_the_binary_minc_equation() {
        // The closed form satisfies the defining equation exactly.
        for (g1, g2) in [(0.8, 0.7), (0.95, 0.5), (0.6, 0.6)] {
            // γ_k for independent children under cumulative A:
            // γ_k = A(1 − (1−γ1/A)(1−γ2/A)) — pick A, derive γ_k, invert.
            let a = 0.9;
            let g_k = a * (1.0 - (1.0 - g1 / a) * (1.0 - g2 / a));
            let solved = binary_branch_cumulative(g_k, g1, g2);
            assert!((solved - a).abs() < 1e-12, "({g1},{g2}): {solved}");
        }
        // Degenerate conventions.
        assert_eq!(binary_branch_cumulative(0.0, 0.5, 0.5), 0.0);
        assert_eq!(binary_branch_cumulative(0.99, 0.5, 0.4), 1.0, "denominator ≤ 0");
    }

    #[test]
    fn oracle_matches_production_on_binary_trees() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(200);
        let pass = |l: LinkId| match l.0 {
            0 => 0.7,
            1 => 0.8,
            _ => 0.95,
        };
        let rec = simulate_stripes(&tree, &pass, 10_000, &mut rng);
        assert_matches_production(&tree, &rec, 1e-9);
    }

    #[test]
    fn oracle_matches_production_on_deep_trees() {
        let tree = deep_tree();
        let mut rng = StdRng::seed_from_u64(201);
        let pass = |l: LinkId| match l.0 {
            0 => 0.95,
            1 => 0.85,
            2 => 0.9,
            _ => 0.92,
        };
        let rec = simulate_stripes(&tree, &pass, 10_000, &mut rng);
        assert_matches_production(&tree, &rec, 1e-9);
    }

    #[test]
    fn fixed_point_matches_bisection_on_wide_branching() {
        let tree = wide_tree();
        let mut rng = StdRng::seed_from_u64(202);
        let pass = |l: LinkId| match l.0 {
            0 => 0.8,
            1 => 0.9,
            2 => 0.7,
            _ => 0.95,
        };
        let rec = simulate_stripes(&tree, &pass, 10_000, &mut rng);
        assert_matches_production(&tree, &rec, 1e-9);
    }

    #[test]
    fn oracle_follows_the_dead_segment_convention() {
        let tree = y_tree();
        let mut rng = StdRng::seed_from_u64(203);
        let pass = |l: LinkId| if l.0 == 0 { 0.0 } else { 0.9 };
        let rec = simulate_stripes(&tree, &pass, 500, &mut rng);
        assert_matches_production(&tree, &rec, 1e-12);
        let oracle = oracle_pass_rates(&tree, &rec).unwrap();
        assert!(oracle.alpha.iter().all(|a| (0.0..=1.0).contains(a)));
    }

    #[test]
    fn leaf_mismatch_is_typed() {
        let tree = y_tree();
        let rec = ProbeRecord::new(vec![vec![true; 3]]);
        assert_eq!(
            oracle_pass_rates(&tree, &rec).unwrap_err(),
            InferError::LeafMismatch { tree: 2, record: 3 }
        );
    }
}
