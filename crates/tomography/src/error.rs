//! The crate-wide typed error for protocol-reachable failures.
//!
//! Probe records and snapshots arrive from *other hosts*; malformed or
//! incomplete input is a protocol condition, not a programmer bug, so
//! the fallible entry points (`ProbeRecord::try_new`,
//! [`infer_pass_rates_tolerant`](crate::infer::infer_pass_rates_tolerant),
//! [`try_suspicious_leaves`](crate::feedback::try_suspicious_leaves))
//! return this error instead of panicking. The original panicking
//! constructors remain as thin wrappers for callers holding
//! locally-built, known-good data.

use std::fmt;

use crate::infer::InferError;

/// Why a tomography computation could not run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TomographyError {
    /// A probe record carried no stripes.
    EmptyRecord,
    /// A probe record carried no leaves.
    NoLeaves,
    /// A probe record's rows disagree on the leaf count.
    RaggedRecord {
        /// First offending stripe.
        stripe: usize,
        /// Leaves in the first row.
        expected: usize,
        /// Leaves in the offending row.
        found: usize,
    },
    /// The record's leaf count does not match the tree.
    LeafMismatch {
        /// Leaves in the tree.
        tree: usize,
        /// Leaves in the record.
        record: usize,
    },
    /// Every stripe for this node was indeterminate (feedback missing),
    /// so its ack probability cannot be estimated at all.
    NoInformativeStripes {
        /// The starved logical node.
        node: usize,
    },
    /// A threshold parameter is outside its valid range.
    BadThreshold {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for TomographyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TomographyError::EmptyRecord => {
                write!(f, "a probe record needs at least one stripe")
            }
            TomographyError::NoLeaves => write!(f, "a probe record needs at least one leaf"),
            TomographyError::RaggedRecord { stripe, expected, found } => write!(
                f,
                "ragged probe record: stripe {stripe} has {found} leaves, expected {expected}"
            ),
            TomographyError::LeafMismatch { tree, record } => write!(
                f,
                "probe record has {record} leaves but the tree has {tree}"
            ),
            TomographyError::NoInformativeStripes { node } => {
                write!(f, "node {node} has no informative stripes: all feedback missing")
            }
            TomographyError::BadThreshold { value } => {
                write!(f, "ratio threshold must be in (0,1), got {value}")
            }
        }
    }
}

impl std::error::Error for TomographyError {}

impl From<InferError> for TomographyError {
    fn from(err: InferError) -> Self {
        match err {
            InferError::LeafMismatch { tree, record } => {
                TomographyError::LeafMismatch { tree, record }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_historic_panic_messages() {
        // The panicking wrappers format these errors; tests elsewhere
        // match on the original substrings.
        assert!(TomographyError::EmptyRecord.to_string().contains("at least one stripe"));
        assert!(TomographyError::NoLeaves.to_string().contains("at least one leaf"));
        let ragged = TomographyError::RaggedRecord { stripe: 1, expected: 2, found: 1 };
        assert!(ragged.to_string().contains("ragged probe record"));
        let bad = TomographyError::BadThreshold { value: 1.5 };
        assert!(bad.to_string().contains("ratio threshold must be in (0,1), got 1.5"));
    }

    #[test]
    fn infer_error_converts() {
        let e: TomographyError = InferError::LeafMismatch { tree: 2, record: 3 }.into();
        assert_eq!(e, TomographyError::LeafMismatch { tree: 2, record: 3 });
    }
}
