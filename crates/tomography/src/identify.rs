//! Boolean-tomography identifiability analysis.
//!
//! Given the probe/route matrix — which measurement paths cross which
//! physical links — two links are *distinguishable* iff some path contains
//! one but not the other (Bartolini et al., Galesi et al.). Links with
//! identical path-membership rows form an **ambiguity class**: no
//! inference, however clever, can tell their losses apart, so blame can
//! only ever be assigned to whole classes. For a probe tree the classes
//! coincide with the unbranched segments the [`LogicalTree`] collapses —
//! a structural fact [`AmbiguityClasses::matches_logical`] checks and the
//! DST identifiability invariant enforces.

use std::collections::BTreeMap;

use concilium_types::LinkId;

use crate::tree::{LogicalTree, ProbeTree};

/// The partition of a link set into indistinguishability classes under a
/// fixed set of measurement paths.
///
/// Classes are stored sorted (by their smallest link), each class sorted by
/// link id, so the representation is canonical for a given path matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AmbiguityClasses {
    classes: Vec<Vec<LinkId>>,
    class_of: BTreeMap<LinkId, usize>,
}

impl AmbiguityClasses {
    /// Computes the classes for an arbitrary path matrix: `paths[i]` is
    /// the (ordered or unordered) set of links measurement path `i`
    /// crosses. Links never crossed by any path do not appear.
    pub fn from_paths<P: AsRef<[LinkId]>>(paths: &[P]) -> Self {
        // Row for a link = sorted set of path indices containing it. Links
        // sharing a row are mutually unidentifiable.
        let mut rows: BTreeMap<LinkId, Vec<usize>> = BTreeMap::new();
        for (i, path) in paths.iter().enumerate() {
            for &link in path.as_ref() {
                let row = rows.entry(link).or_default();
                if row.last() != Some(&i) {
                    row.push(i);
                }
            }
        }
        let mut by_row: BTreeMap<Vec<usize>, Vec<LinkId>> = BTreeMap::new();
        for (link, row) in rows {
            by_row.entry(row).or_default().push(link);
        }
        let mut classes: Vec<Vec<LinkId>> = by_row.into_values().collect();
        for class in &mut classes {
            class.sort_unstable();
        }
        classes.sort();
        let mut class_of = BTreeMap::new();
        for (idx, class) in classes.iter().enumerate() {
            for &link in class {
                class_of.insert(link, idx);
            }
        }
        AmbiguityClasses { classes, class_of }
    }

    /// Computes the classes induced by a probe tree's root-to-leaf paths —
    /// the measurement matrix Concilium's striped probes realise.
    pub fn from_probe_tree(tree: &ProbeTree) -> Self {
        let paths: Vec<Vec<LinkId>> =
            tree.leaves().iter().map(|(_, p)| p.links().to_vec()).collect();
        Self::from_paths(&paths)
    }

    /// Number of ambiguity classes (= the maximum number of independently
    /// estimable quantities this matrix admits).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The classes, each sorted, ordered by smallest member link.
    pub fn classes(&self) -> &[Vec<LinkId>] {
        &self.classes
    }

    /// The index of the class `link` belongs to, if the link is covered by
    /// any measurement path.
    pub fn class_of(&self, link: LinkId) -> Option<usize> {
        self.class_of.get(&link).copied()
    }

    /// The member links of class `idx`, or an empty slice when out of
    /// range.
    pub fn class_members(&self, idx: usize) -> &[LinkId] {
        self.classes.get(idx).map(|c| c.as_slice()).unwrap_or(&[])
    }

    /// Whether `link` is *identifiable*: covered, and alone in its class,
    /// so its loss can in principle be localized to it.
    pub fn is_identifiable(&self, link: LinkId) -> bool {
        self.class_of(link)
            .map(|c| self.classes[c].len() == 1)
            .unwrap_or(false)
    }

    /// Whether two covered links are distinguishable — some path separates
    /// them. Uncovered links are vacuously indistinguishable from nothing.
    pub fn distinguishable(&self, a: LinkId, b: LinkId) -> bool {
        match (self.class_of(a), self.class_of(b)) {
            (Some(ca), Some(cb)) => ca != cb,
            _ => false,
        }
    }

    /// Whether `links` (in any order, duplicates allowed) is exactly one
    /// whole ambiguity class — the only granularity at which blame is
    /// theoretically sound.
    pub fn is_whole_class(&self, links: &[LinkId]) -> bool {
        let Some(&first) = links.first() else {
            return false;
        };
        let Some(idx) = self.class_of(first) else {
            return false;
        };
        let mut sorted: Vec<LinkId> = links.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted == self.classes[idx]
    }

    /// The *closure* of a link set: the union of every class touched. This
    /// is the finest set any inference may blame without splitting an
    /// ambiguity class; a localization naming a proper subset of it
    /// overclaims.
    pub fn closure<I: IntoIterator<Item = LinkId>>(&self, links: I) -> Vec<LinkId> {
        let mut idxs: Vec<usize> = links.into_iter().filter_map(|l| self.class_of(l)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        let mut out = Vec::new();
        for idx in idxs {
            out.extend_from_slice(&self.classes[idx]);
        }
        out.sort_unstable();
        out
    }

    /// Structural theory check: for a tree matrix, the ambiguity classes
    /// must be exactly the per-edge link segments of the collapsed
    /// [`LogicalTree`] — links on one unbranched segment sit below the
    /// same leaves (identical rows), and a branching point separates rows.
    /// Returns `false` if either side has a class the other lacks.
    pub fn matches_logical(&self, logical: &LogicalTree) -> bool {
        let mut edges: Vec<Vec<LinkId>> = (0..logical.num_edges())
            .map(|e| {
                let mut seg = logical.edge_links(e).to_vec();
                seg.sort_unstable();
                seg
            })
            .collect();
        edges.sort();
        edges == self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_topology::IpPath;
    use concilium_types::{Id, RouterId};

    fn l(ids: &[u32]) -> Vec<LinkId> {
        ids.iter().copied().map(LinkId).collect()
    }

    fn p(routers: &[u32], links: &[u32]) -> IpPath {
        IpPath::new(
            routers.iter().copied().map(RouterId).collect(),
            links.iter().copied().map(LinkId).collect(),
        )
    }

    #[test]
    fn shared_prefix_is_one_class() {
        // Two paths share links {0, 1}; tails {2} and {3} are separate.
        let a = AmbiguityClasses::from_paths(&[l(&[0, 1, 2]), l(&[0, 1, 3])]);
        assert_eq!(a.num_classes(), 3);
        assert_eq!(a.classes(), &[l(&[0, 1]), l(&[2]), l(&[3])]);
        assert!(!a.is_identifiable(LinkId(0)));
        assert!(a.is_identifiable(LinkId(2)));
        assert!(!a.distinguishable(LinkId(0), LinkId(1)));
        assert!(a.distinguishable(LinkId(1), LinkId(2)));
        assert!(a.is_whole_class(&l(&[1, 0])));
        assert!(!a.is_whole_class(&l(&[0])));
        assert_eq!(a.closure(l(&[0, 3])), l(&[0, 1, 3]));
    }

    #[test]
    fn disjoint_paths_are_fully_ambiguous_within() {
        let a = AmbiguityClasses::from_paths(&[l(&[5, 6, 7]), l(&[8])]);
        assert_eq!(a.classes(), &[l(&[5, 6, 7]), l(&[8])]);
        assert!(a.class_of(LinkId(9)).is_none());
        assert!(!a.distinguishable(LinkId(5), LinkId(9)));
        assert!(!a.is_whole_class(&[]));
        assert!(!a.is_whole_class(&l(&[9])));
    }

    #[test]
    fn duplicate_links_within_a_path_are_handled() {
        let a = AmbiguityClasses::from_paths(&[l(&[0, 0, 1])]);
        assert_eq!(a.classes(), &[l(&[0, 1])]);
    }

    #[test]
    fn tree_classes_match_logical_edges() {
        // The sample tree from tree.rs: shared link 0, branch to {1} and
        // to shared {2} branching again to {3} / {4}.
        let tree = ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2], &[0, 1])),
                (Id::from_u64(2), p(&[0, 1, 3, 4], &[0, 2, 3])),
                (Id::from_u64(3), p(&[0, 1, 3, 5], &[0, 2, 4])),
            ],
        )
        .unwrap();
        let a = AmbiguityClasses::from_probe_tree(&tree);
        assert_eq!(a.num_classes(), 5);
        assert!(a.matches_logical(&tree.logical()));
        // Collapsing a chain: one leaf behind 4 links → one class of 4.
        let chain = ProbeTree::from_paths(
            RouterId(0),
            vec![(Id::from_u64(1), p(&[0, 1, 2, 3, 4], &[0, 1, 2, 3]))],
        )
        .unwrap();
        let ac = AmbiguityClasses::from_probe_tree(&chain);
        assert_eq!(ac.classes(), &[l(&[0, 1, 2, 3])]);
        assert!(ac.matches_logical(&chain.logical()));
    }

    #[test]
    fn mismatched_partition_is_rejected() {
        let tree = ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2], &[0, 1])),
                (Id::from_u64(2), p(&[0, 1, 3], &[0, 2])),
            ],
        )
        .unwrap();
        // Classes of a *different* matrix must not match this tree.
        let other = AmbiguityClasses::from_paths(&[l(&[0, 1, 2])]);
        assert!(!other.matches_logical(&tree.logical()));
    }
}
