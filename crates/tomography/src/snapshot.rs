//! Signed tomographic snapshots (§3.2).
//!
//! After probing its tree, a host sends its routing peers a timestamped
//! snapshot of the tree and the summarised probe results. The snapshot is
//! signed both to prevent spoofing and so the origin cannot later disavow
//! the results it advertised. "The probe results for each path can be
//! encoded in a few bits representing predefined loss rates" — the
//! [`LossBucket`] encoding.

use serde::{Deserialize, Serialize};

use concilium_crypto::{KeyPair, PublicKey, Signable, Signature};
use concilium_types::{Id, LinkId, SimTime};

/// A 2-bit loss-rate bucket: the predefined loss levels snapshots carry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum LossBucket {
    /// Loss below 5%: the link is healthy.
    Up,
    /// Loss in [5%, 30%): degraded but mostly passing.
    Light,
    /// Loss in [30%, 90%): heavily lossy.
    Heavy,
    /// Loss at or above 90%: effectively down.
    Down,
}

impl LossBucket {
    /// Buckets a measured loss rate.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1]`.
    pub fn from_loss_rate(loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss rate {loss} out of range");
        if loss < 0.05 {
            LossBucket::Up
        } else if loss < 0.30 {
            LossBucket::Light
        } else if loss < 0.90 {
            LossBucket::Heavy
        } else {
            LossBucket::Down
        }
    }

    /// Whether the bucket counts as "up" for the binary verdicts of the
    /// evaluation (`Up` and `Light`).
    pub fn is_up(&self) -> bool {
        matches!(self, LossBucket::Up | LossBucket::Light)
    }

    /// The 2-bit wire encoding.
    pub fn code(&self) -> u8 {
        match self {
            LossBucket::Up => 0,
            LossBucket::Light => 1,
            LossBucket::Heavy => 2,
            LossBucket::Down => 3,
        }
    }

    /// Decodes a 2-bit code.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => LossBucket::Up,
            1 => LossBucket::Light,
            2 => LossBucket::Heavy,
            3 => LossBucket::Down,
            // lint:allow(no-panic, reason = "documented panic: codes come from a 2-bit field, callers mask to 0..=3")
            _ => panic!("invalid loss bucket code {code}"),
        }
    }
}

/// One probed link's status as advertised in a snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LinkObservation {
    /// The probed link.
    pub link: LinkId,
    /// The bucketed loss level.
    pub bucket: LossBucket,
}

impl LinkObservation {
    /// Convenience: a binary up/down observation.
    pub fn binary(link: LinkId, up: bool) -> Self {
        LinkObservation {
            link,
            bucket: if up { LossBucket::Up } else { LossBucket::Down },
        }
    }

    /// Whether the observation reports the link as up.
    pub fn is_up(&self) -> bool {
        self.bucket.is_up()
    }
}

/// A signed, timestamped tomographic snapshot from one probing host.
///
/// # Examples
///
/// ```
/// use concilium_tomography::{LinkObservation, TomographySnapshot};
/// use concilium_crypto::KeyPair;
/// use concilium_types::{Id, LinkId, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let keys = KeyPair::generate(&mut rng);
/// let snap = TomographySnapshot::new_signed(
///     Id::from_u64(1),
///     SimTime::from_secs(60),
///     vec![LinkObservation::binary(LinkId(7), true)],
///     &keys,
///     &mut rng,
/// );
/// assert!(snap.verify(&keys.public()));
/// assert!(snap.observation_for(LinkId(7)).unwrap().is_up());
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TomographySnapshot {
    origin: Id,
    time: SimTime,
    observations: Vec<LinkObservation>,
    sig: Signature,
}

impl TomographySnapshot {
    /// Creates and signs a snapshot.
    pub fn new_signed<R: rand::Rng + ?Sized>(
        origin: Id,
        time: SimTime,
        observations: Vec<LinkObservation>,
        keys: &KeyPair,
        rng: &mut R,
    ) -> Self {
        let mut snap =
            TomographySnapshot { origin, time, observations, sig: Signature::dummy() };
        snap.sig = keys.sign(&snap.to_signable_vec(), rng);
        snap
    }

    /// The identifier of the probing host.
    pub fn origin(&self) -> Id {
        self.origin
    }

    /// When the probing happened.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The advertised per-link observations.
    pub fn observations(&self) -> &[LinkObservation] {
        &self.observations
    }

    /// Looks up the observation for a specific link.
    pub fn observation_for(&self, link: LinkId) -> Option<&LinkObservation> {
        self.observations.iter().find(|o| o.link == link)
    }

    /// Verifies the origin's signature.
    ///
    /// Snapshots are re-verified at every chain link and after each DHT
    /// refetch, so this goes through the thread-local verification memo;
    /// the outcome is identical to an uncached [`PublicKey::verify`].
    pub fn verify(&self, origin_key: &PublicKey) -> bool {
        concilium_crypto::verify_cached(origin_key, &self.to_signable_vec(), &self.sig)
    }
}

impl Signable for TomographySnapshot {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"snapshot");
        out.extend_from_slice(self.origin.as_bytes());
        out.extend_from_slice(&self.time.as_micros().to_be_bytes());
        out.extend_from_slice(&(self.observations.len() as u64).to_be_bytes());
        for obs in &self.observations {
            out.extend_from_slice(&obs.link.0.to_be_bytes());
            out.push(obs.bucket.code());
        }
        // The signature itself is excluded: these bytes are what gets
        // signed.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snap(keys: &KeyPair, rng: &mut StdRng) -> TomographySnapshot {
        TomographySnapshot::new_signed(
            Id::from_u64(9),
            SimTime::from_secs(30),
            vec![
                LinkObservation::binary(LinkId(1), true),
                LinkObservation::binary(LinkId(2), false),
            ],
            keys,
            rng,
        )
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = StdRng::seed_from_u64(41);
        let keys = KeyPair::generate(&mut rng);
        let s = snap(&keys, &mut rng);
        assert!(s.verify(&keys.public()));
        assert_eq!(s.origin(), Id::from_u64(9));
        assert_eq!(s.time(), SimTime::from_secs(30));
    }

    #[test]
    fn tampered_observation_rejected() {
        let mut rng = StdRng::seed_from_u64(42);
        let keys = KeyPair::generate(&mut rng);
        let s = snap(&keys, &mut rng);
        // Flip the down link to up.
        let mut tampered = s.clone();
        tampered.observations[1] = LinkObservation::binary(LinkId(2), true);
        assert!(!tampered.verify(&keys.public()));
        // Change the timestamp.
        let mut redated = s.clone();
        redated.time = SimTime::from_secs(31);
        assert!(!redated.verify(&keys.public()));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(43);
        let keys = KeyPair::generate(&mut rng);
        let other = KeyPair::generate(&mut rng);
        let s = snap(&keys, &mut rng);
        assert!(!s.verify(&other.public()));
    }

    #[test]
    fn observation_lookup() {
        let mut rng = StdRng::seed_from_u64(44);
        let keys = KeyPair::generate(&mut rng);
        let s = snap(&keys, &mut rng);
        assert!(s.observation_for(LinkId(1)).unwrap().is_up());
        assert!(!s.observation_for(LinkId(2)).unwrap().is_up());
        assert!(s.observation_for(LinkId(3)).is_none());
    }

    #[test]
    fn loss_buckets() {
        assert_eq!(LossBucket::from_loss_rate(0.0), LossBucket::Up);
        assert_eq!(LossBucket::from_loss_rate(0.049), LossBucket::Up);
        assert_eq!(LossBucket::from_loss_rate(0.05), LossBucket::Light);
        assert_eq!(LossBucket::from_loss_rate(0.31), LossBucket::Heavy);
        assert_eq!(LossBucket::from_loss_rate(0.95), LossBucket::Down);
        assert_eq!(LossBucket::from_loss_rate(1.0), LossBucket::Down);
        for code in 0..4u8 {
            assert_eq!(LossBucket::from_code(code).code(), code);
        }
        assert!(LossBucket::Light.is_up());
        assert!(!LossBucket::Heavy.is_up());
    }

    #[test]
    #[should_panic(expected = "invalid loss bucket")]
    fn bad_code_rejected() {
        let _ = LossBucket::from_code(4);
    }
}
