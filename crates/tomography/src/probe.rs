//! Striped-unicast probe simulation (§3.2).
//!
//! A probing host emulates multicast by sending back-to-back unicast
//! packets — one per routing peer. Because the packets of one stripe stay
//! close together as they traverse shared interior routers, they see the
//! *same* fate on shared links; that correlation is what lets the MINC
//! estimator attribute loss to interior links. The simulation reproduces
//! it directly: each stripe samples every logical edge once, and a leaf
//! receives its packet iff every edge on its path passed.

use rand::Rng;

use concilium_types::LinkId;

use crate::error::TomographyError;
use crate::tree::LogicalTree;

/// The acknowledgment record of a probing session: which leaves
/// acknowledged which stripes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeRecord {
    /// `outcomes[stripe][leaf]` — true iff the leaf acked that stripe.
    outcomes: Vec<Vec<bool>>,
    num_leaves: usize,
}

impl ProbeRecord {
    /// Creates a record from raw outcomes.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or there are no stripes.
    /// Use [`ProbeRecord::try_new`] for records received from other
    /// hosts, where malformation is protocol input rather than a bug.
    pub fn new(outcomes: Vec<Vec<bool>>) -> Self {
        match Self::try_new(outcomes) {
            Ok(record) => record,
            // lint:allow(no-panic, reason = "documented-panic constructor; try_new is the protocol-input path")
            Err(err) => panic!("{err}"),
        }
    }

    /// Creates a record from raw outcomes, validating shape.
    ///
    /// # Errors
    ///
    /// [`TomographyError::EmptyRecord`] with no stripes,
    /// [`TomographyError::NoLeaves`] with no leaves, and
    /// [`TomographyError::RaggedRecord`] when rows disagree on length.
    pub fn try_new(outcomes: Vec<Vec<bool>>) -> Result<Self, TomographyError> {
        if outcomes.is_empty() {
            return Err(TomographyError::EmptyRecord);
        }
        let num_leaves = outcomes[0].len();
        if num_leaves == 0 {
            return Err(TomographyError::NoLeaves);
        }
        for (stripe, row) in outcomes.iter().enumerate() {
            if row.len() != num_leaves {
                return Err(TomographyError::RaggedRecord {
                    stripe,
                    expected: num_leaves,
                    found: row.len(),
                });
            }
        }
        Ok(ProbeRecord { outcomes, num_leaves })
    }

    /// Number of stripes probed.
    pub fn num_stripes(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of leaves probed.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Whether `leaf` acknowledged `stripe`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn received(&self, stripe: usize, leaf: usize) -> bool {
        self.outcomes[stripe][leaf]
    }

    /// One stripe's outcomes across all leaves — the packed inference
    /// kernel transposes rows into per-leaf bitmasks in a single pass.
    pub(crate) fn row(&self, stripe: usize) -> &[bool] {
        &self.outcomes[stripe]
    }

    /// The fraction of stripes `leaf` acknowledged.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn leaf_ack_rate(&self, leaf: usize) -> f64 {
        let acks = self.outcomes.iter().filter(|row| row[leaf]).count();
        acks as f64 / self.num_stripes() as f64
    }

    /// Adversarial mutation: the leaf suppresses every acknowledgment
    /// (§3.3's "drop acknowledgments for probes that were received").
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn suppress_leaf(&mut self, leaf: usize) {
        assert!(leaf < self.num_leaves, "leaf {leaf} out of range");
        for row in &mut self.outcomes {
            row[leaf] = false;
        }
    }

    /// Adversarial mutation: the leaf acknowledges every probe, including
    /// ones lost in the network ("respond to probes that were actually
    /// lost"). Without nonces this would poison last-mile inference.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn spoof_leaf(&mut self, leaf: usize) {
        assert!(leaf < self.num_leaves, "leaf {leaf} out of range");
        for row in &mut self.outcomes {
            row[leaf] = true;
        }
    }
}

/// A probe record with per-cell uncertainty: `Some(true)` — the leaf
/// acknowledged, `Some(false)` — the probing host *knows* the leaf did
/// not receive the stripe, `None` — the feedback channel itself failed
/// (the ack or its retransmissions were lost, the leaf was down), so the
/// stripe says nothing about that leaf.
///
/// Treating a lost ack as `false` is exactly the confusion the
/// fault-injection harness manufactures: it deflates the leaf's apparent
/// ack rate and skews every shared-segment estimate above it. Tolerant
/// inference ([`infer_pass_rates_tolerant`]) discounts indeterminate
/// cells instead.
///
/// [`infer_pass_rates_tolerant`]: crate::infer::infer_pass_rates_tolerant
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialProbeRecord {
    outcomes: Vec<Vec<Option<bool>>>,
    num_leaves: usize,
}

impl PartialProbeRecord {
    /// Creates a partial record from raw tri-state outcomes.
    ///
    /// # Errors
    ///
    /// Same shape validation as [`ProbeRecord::try_new`].
    pub fn try_new(outcomes: Vec<Vec<Option<bool>>>) -> Result<Self, TomographyError> {
        if outcomes.is_empty() {
            return Err(TomographyError::EmptyRecord);
        }
        let num_leaves = outcomes[0].len();
        if num_leaves == 0 {
            return Err(TomographyError::NoLeaves);
        }
        for (stripe, row) in outcomes.iter().enumerate() {
            if row.len() != num_leaves {
                return Err(TomographyError::RaggedRecord {
                    stripe,
                    expected: num_leaves,
                    found: row.len(),
                });
            }
        }
        Ok(PartialProbeRecord { outcomes, num_leaves })
    }

    /// Lifts a complete record: every cell becomes known.
    pub fn from_complete(record: &ProbeRecord) -> Self {
        let outcomes = (0..record.num_stripes())
            .map(|s| (0..record.num_leaves()).map(|l| Some(record.received(s, l))).collect())
            .collect();
        PartialProbeRecord { outcomes, num_leaves: record.num_leaves() }
    }

    /// Number of stripes probed.
    pub fn num_stripes(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of leaves probed.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// The (possibly unknown) outcome for `leaf` on `stripe`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn outcome(&self, stripe: usize, leaf: usize) -> Option<bool> {
        self.outcomes[stripe][leaf]
    }

    /// One stripe's tri-state outcomes across all leaves — see
    /// [`ProbeRecord::row`].
    pub(crate) fn row(&self, stripe: usize) -> &[Option<bool>] {
        &self.outcomes[stripe]
    }

    /// Marks one cell indeterminate (its ack never made it back).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn censor(&mut self, stripe: usize, leaf: usize) {
        self.outcomes[stripe][leaf] = None;
    }

    /// Censors each cell independently with probability `fraction` —
    /// the uniform feedback-loss model of the fault experiments.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn censor_random<R: Rng + ?Sized>(&mut self, fraction: f64, rng: &mut R) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "censor fraction must be in [0,1], got {fraction}"
        );
        for row in &mut self.outcomes {
            for cell in row.iter_mut() {
                if rng.gen_bool(fraction) {
                    *cell = None;
                }
            }
        }
    }

    /// Fraction of cells that are indeterminate.
    pub fn censored_fraction(&self) -> f64 {
        let total = self.num_stripes() * self.num_leaves;
        let missing: usize =
            self.outcomes.iter().map(|row| row.iter().filter(|c| c.is_none()).count()).sum();
        missing as f64 / total as f64
    }
}

/// Simulates `stripes` striped-unicast probes over `tree`, where each
/// physical link passes a packet independently with `link_pass(link)`
/// probability, sampled **once per stripe per edge** (packets in a stripe
/// share fate on shared segments).
///
/// # Panics
///
/// Panics if `stripes == 0` or a pass rate is outside `[0, 1]`.
pub fn simulate_stripes<R: Rng + ?Sized>(
    tree: &LogicalTree,
    link_pass: &dyn Fn(LinkId) -> f64,
    stripes: usize,
    rng: &mut R,
) -> ProbeRecord {
    assert!(stripes > 0, "need at least one stripe");
    // Pre-compute per-edge pass rates: product over the physical segment.
    let edge_pass: Vec<f64> = (0..tree.num_edges())
        .map(|e| {
            tree.edge_links(e)
                .iter()
                .map(|&l| {
                    let p = link_pass(l);
                    assert!((0.0..=1.0).contains(&p), "pass rate {p} out of range");
                    p
                })
                .product()
        })
        .collect();
    // Pre-compute each leaf's edge path.
    let leaf_paths: Vec<Vec<usize>> =
        (0..tree.num_leaves()).map(|l| tree.leaf_edges(l)).collect();

    let mut outcomes = Vec::with_capacity(stripes);
    let mut edge_up = vec![false; tree.num_edges()];
    for _ in 0..stripes {
        for (e, up) in edge_up.iter_mut().enumerate() {
            *up = rng.gen_bool(edge_pass[e]);
        }
        let row: Vec<bool> = leaf_paths
            .iter()
            .map(|path| path.iter().all(|&e| edge_up[e]))
            .collect();
        outcomes.push(row);
    }
    ProbeRecord::new(outcomes)
}

/// Simulates one *lightweight* probe round (§3.2): a single stripe against
/// the current binary up/down state of the links. Returns, per leaf, wheth-
/// er the probe round-trip succeeded.
pub fn lightweight_probe(tree: &LogicalTree, link_up: &dyn Fn(LinkId) -> bool) -> Vec<bool> {
    let edge_up: Vec<bool> = (0..tree.num_edges())
        .map(|e| tree.edge_links(e).iter().all(|&l| link_up(l)))
        .collect();
    (0..tree.num_leaves())
        .map(|l| tree.leaf_edges(l).iter().all(|&e| edge_up[e]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ProbeTree;
    use concilium_topology::IpPath;
    use concilium_types::{Id, RouterId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_leaf_tree() -> LogicalTree {
        let p = |routers: &[u32], links: &[u32]| {
            IpPath::new(
                routers.iter().copied().map(RouterId).collect(),
                links.iter().copied().map(LinkId).collect(),
            )
        };
        ProbeTree::from_paths(
            RouterId(0),
            vec![
                (Id::from_u64(1), p(&[0, 1, 2], &[0, 1])),
                (Id::from_u64(2), p(&[0, 1, 3], &[0, 2])),
            ],
        )
        .unwrap()
        .logical()
    }

    #[test]
    fn perfect_links_always_ack() {
        let tree = two_leaf_tree();
        let mut rng = StdRng::seed_from_u64(1);
        let rec = simulate_stripes(&tree, &|_| 1.0, 100, &mut rng);
        for leaf in 0..2 {
            assert_eq!(rec.leaf_ack_rate(leaf), 1.0);
        }
    }

    #[test]
    fn dead_shared_link_kills_both_leaves() {
        let tree = two_leaf_tree();
        let mut rng = StdRng::seed_from_u64(2);
        let pass = |l: LinkId| if l == LinkId(0) { 0.0 } else { 1.0 };
        let rec = simulate_stripes(&tree, &pass, 50, &mut rng);
        assert_eq!(rec.leaf_ack_rate(0), 0.0);
        assert_eq!(rec.leaf_ack_rate(1), 0.0);
    }

    #[test]
    fn shared_loss_is_correlated() {
        // With the shared link at 50% and last miles perfect, the two
        // leaves must ack exactly the same stripes.
        let tree = two_leaf_tree();
        let mut rng = StdRng::seed_from_u64(3);
        let pass = |l: LinkId| if l == LinkId(0) { 0.5 } else { 1.0 };
        let rec = simulate_stripes(&tree, &pass, 500, &mut rng);
        for s in 0..rec.num_stripes() {
            assert_eq!(rec.received(s, 0), rec.received(s, 1), "stripe {s}");
        }
        let rate = rec.leaf_ack_rate(0);
        assert!((rate - 0.5).abs() < 0.07, "rate {rate}");
    }

    #[test]
    fn independent_last_mile_loss_is_uncorrelated() {
        let tree = two_leaf_tree();
        let mut rng = StdRng::seed_from_u64(4);
        let pass = |l: LinkId| if l == LinkId(0) { 1.0 } else { 0.5 };
        let rec = simulate_stripes(&tree, &pass, 2_000, &mut rng);
        // Joint ack rate should be ≈ 0.25, not 0.5.
        let both = (0..rec.num_stripes())
            .filter(|&s| rec.received(s, 0) && rec.received(s, 1))
            .count() as f64
            / rec.num_stripes() as f64;
        assert!((both - 0.25).abs() < 0.05, "joint rate {both}");
    }

    #[test]
    fn adversarial_mutations() {
        let tree = two_leaf_tree();
        let mut rng = StdRng::seed_from_u64(5);
        let mut rec = simulate_stripes(&tree, &|_| 0.7, 200, &mut rng);
        rec.suppress_leaf(0);
        assert_eq!(rec.leaf_ack_rate(0), 0.0);
        rec.spoof_leaf(1);
        assert_eq!(rec.leaf_ack_rate(1), 1.0);
    }

    #[test]
    fn lightweight_probe_reflects_binary_state() {
        let tree = two_leaf_tree();
        let all_up = lightweight_probe(&tree, &|_| true);
        assert_eq!(all_up, vec![true, true]);
        let leaf0_down = lightweight_probe(&tree, &|l| l != LinkId(1));
        assert_eq!(leaf0_down, vec![false, true]);
        let shared_down = lightweight_probe(&tree, &|l| l != LinkId(0));
        assert_eq!(shared_down, vec![false, false]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_record_rejected() {
        let _ = ProbeRecord::new(vec![vec![true, false], vec![true]]);
    }
}
