//! Probe scheduling: lightweight surveillance with heavyweight escalation
//! (§3.2).
//!
//! "H schedules a lightweight probe of T_H as a periodic task whose
//! inter-arrival time is picked randomly and uniformly from the range
//! [0, max_probe_time]... If H receives acknowledgments from all peers,
//! it assumes that there is no link loss. Otherwise, it sends a few more
//! probes to silent peers to determine if they are truly offline or
//! situated along a lossy IP link. If link loss is detected or H's
//! application-level messages are not being acknowledged, H initiates
//! heavyweight probing... To avoid probe-induced congestion, each peer
//! waits for a small, randomly picked time before initiating heavyweight
//! tomography."

use rand::Rng;

use concilium_types::{SimDuration, SimTime};

/// What the scheduler decides after a lightweight round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbeAction {
    /// All peers acknowledged: keep light-weight surveillance.
    StayLightweight,
    /// Some peers were silent: re-probe them before concluding anything.
    RetrySilent {
        /// How many extra probes to send each silent peer.
        retries: u32,
    },
    /// Loss confirmed (or application-level acks missing): start
    /// heavyweight probing after a random back-off.
    EscalateHeavyweight {
        /// When to begin (now + random congestion-avoidance delay).
        at: SimTime,
    },
}

/// Configuration for the probe scheduler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeSchedule {
    /// Upper bound of the uniform lightweight inter-arrival time
    /// (paper: one to two minutes).
    pub max_probe_time: SimDuration,
    /// Extra probes for silent peers before concluding loss.
    pub retries: u32,
    /// Upper bound of the random escalation back-off.
    pub max_escalation_delay: SimDuration,
    /// Minimum spacing between heavyweight rounds (they are expensive:
    /// ~16.7 MiB per round at paper scale).
    pub heavyweight_cooldown: SimDuration,
}

impl Default for ProbeSchedule {
    fn default() -> Self {
        ProbeSchedule {
            max_probe_time: SimDuration::from_secs(120),
            retries: 3,
            max_escalation_delay: SimDuration::from_secs(10),
            heavyweight_cooldown: SimDuration::from_secs(300),
        }
    }
}

/// Per-host probing state machine.
#[derive(Clone, Debug)]
pub struct Prober {
    schedule: ProbeSchedule,
    /// Peers that stayed silent through the retry round.
    pending_retry: bool,
    last_heavyweight: Option<SimTime>,
}

impl Prober {
    /// Creates a prober.
    pub fn new(schedule: ProbeSchedule) -> Self {
        Prober { schedule, pending_retry: false, last_heavyweight: None }
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &ProbeSchedule {
        &self.schedule
    }

    /// Draws the next lightweight probe time: `now + U[0, max_probe_time]`.
    pub fn next_lightweight<R: Rng + ?Sized>(&self, now: SimTime, rng: &mut R) -> SimTime {
        now + SimDuration::from_micros(
            rng.gen_range(0..=self.schedule.max_probe_time.as_micros()),
        )
    }

    /// Digests the results of a lightweight round (`acks[i]` = whether
    /// leaf `i` acknowledged) plus whether application-level messages are
    /// currently going unacknowledged, and decides what to do next.
    pub fn on_lightweight_round<R: Rng + ?Sized>(
        &mut self,
        acks: &[bool],
        app_messages_unacked: bool,
        now: SimTime,
        rng: &mut R,
    ) -> ProbeAction {
        let silent = acks.iter().any(|a| !a);
        if !silent && !app_messages_unacked {
            self.pending_retry = false;
            return ProbeAction::StayLightweight;
        }
        if silent && !self.pending_retry && !app_messages_unacked {
            // First sign of trouble: re-probe the silent peers.
            self.pending_retry = true;
            return ProbeAction::RetrySilent { retries: self.schedule.retries };
        }
        // Loss confirmed (silence survived the retry round) or the
        // application itself is losing messages.
        self.pending_retry = false;
        if let Some(last) = self.last_heavyweight {
            if now.abs_diff(last) < self.schedule.heavyweight_cooldown && now >= last {
                // Too soon for another expensive round.
                return ProbeAction::StayLightweight;
            }
        }
        let delay = SimDuration::from_micros(
            rng.gen_range(0..=self.schedule.max_escalation_delay.as_micros()),
        );
        let at = now + delay;
        self.last_heavyweight = Some(at);
        ProbeAction::EscalateHeavyweight { at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn all_acked_stays_lightweight() {
        let mut p = Prober::new(ProbeSchedule::default());
        let mut rng = StdRng::seed_from_u64(1);
        let action = p.on_lightweight_round(&[true, true, true], false, t(10), &mut rng);
        assert_eq!(action, ProbeAction::StayLightweight);
    }

    #[test]
    fn first_silence_triggers_retries_then_escalation() {
        let mut p = Prober::new(ProbeSchedule::default());
        let mut rng = StdRng::seed_from_u64(2);
        let first = p.on_lightweight_round(&[true, false], false, t(10), &mut rng);
        assert_eq!(first, ProbeAction::RetrySilent { retries: 3 });
        // The peer stays silent through the retry round.
        let second = p.on_lightweight_round(&[true, false], false, t(20), &mut rng);
        match second {
            ProbeAction::EscalateHeavyweight { at } => {
                assert!(at >= t(20));
                assert!(at <= t(30), "escalation delay bounded by 10 s");
            }
            other => panic!("expected escalation, got {other:?}"),
        }
    }

    #[test]
    fn app_level_loss_escalates_immediately() {
        let mut p = Prober::new(ProbeSchedule::default());
        let mut rng = StdRng::seed_from_u64(3);
        let action = p.on_lightweight_round(&[true, true], true, t(10), &mut rng);
        assert!(matches!(action, ProbeAction::EscalateHeavyweight { .. }));
    }

    #[test]
    fn recovery_resets_the_retry_state() {
        let mut p = Prober::new(ProbeSchedule::default());
        let mut rng = StdRng::seed_from_u64(4);
        let _ = p.on_lightweight_round(&[false], false, t(10), &mut rng);
        // The silent peer comes back: no escalation.
        let action = p.on_lightweight_round(&[true], false, t(20), &mut rng);
        assert_eq!(action, ProbeAction::StayLightweight);
        // The next silence starts the retry cycle over.
        let action = p.on_lightweight_round(&[false], false, t(30), &mut rng);
        assert_eq!(action, ProbeAction::RetrySilent { retries: 3 });
    }

    #[test]
    fn cooldown_limits_heavyweight_rounds() {
        let mut p = Prober::new(ProbeSchedule::default());
        let mut rng = StdRng::seed_from_u64(5);
        let first = p.on_lightweight_round(&[true], true, t(10), &mut rng);
        assert!(matches!(first, ProbeAction::EscalateHeavyweight { .. }));
        // 60 seconds later trouble persists, but the cooldown (300 s)
        // suppresses another expensive round.
        let second = p.on_lightweight_round(&[true], true, t(70), &mut rng);
        assert_eq!(second, ProbeAction::StayLightweight);
        // After the cooldown expires, escalation is allowed again.
        let third = p.on_lightweight_round(&[true], true, t(400), &mut rng);
        assert!(matches!(third, ProbeAction::EscalateHeavyweight { .. }));
    }

    #[test]
    fn lightweight_inter_arrival_is_bounded_uniform() {
        let p = Prober::new(ProbeSchedule::default());
        let mut rng = StdRng::seed_from_u64(6);
        let mut max_seen = SimDuration::ZERO;
        for _ in 0..2_000 {
            let next = p.next_lightweight(t(100), &mut rng);
            let gap = next.abs_diff(t(100));
            assert!(gap <= SimDuration::from_secs(120));
            max_seen = max_seen.max(gap);
        }
        assert!(max_seen > SimDuration::from_secs(100), "samples span the range");
    }
}
