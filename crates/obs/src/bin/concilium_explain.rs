//! `concilium-explain` — "why did my message die?" as a deterministic
//! query over a `--trace-out` JSONL trace.
//!
//! Builds the causal index (per-entity timelines + cause→effect links)
//! over each episode stream in the file and renders the full causal
//! chain behind a terminal outcome — send → fault → retry → expiry →
//! blame (with its Eq. 2 evidence window) → verdict → accusation →
//! store for episodes, admit → complete → commit or shed for the
//! daemon:
//!
//! ```text
//! concilium-explain trace.jsonl message 3 --episode lossy --seed 7
//! concilium-explain trace.jsonl blame 4 --json
//! concilium-explain trace.jsonl shed 9
//! ```
//!
//! Output is a pure function of the trace bytes: two byte-identical
//! traces explain to byte-identical output, which is what lets CI
//! byte-compare `--json` answers across `--jobs 1` and `--jobs 4`
//! sweeps. Fuzz traces of bottleneck worlds carry `meta-ambiguity`
//! sidecar lines (the tomography identifiability partition per judge);
//! when present, the explanation names the `AmbiguityClasses` link set
//! the verdict was confined to.

use std::io::Read as _;
use std::process::ExitCode;

use concilium_obs::json::{self, Json};
use concilium_obs::{explain, AmbiguityNote, CausalIndex, ExplainQuery, Explanation};

const USAGE: &str = "\
usage: concilium-explain <FILE|-> <message|blame|shed> <ID> [options]

Answer `why?` for one entity against a --trace-out JSONL trace:
  message <id>   why did this message die (or survive)?
  blame <host>   why does this host stand accused?
  shed <report>  why was this report shed (or how was it served)?

options:
  --episode NAME   only explain within this episode arm
  --seed SEED      only explain within this seed
  --json           render canonical JSON (one line per episode stream)
  --orphans        also check the causal-reachability invariant and
                   report orphan terminal events (exit 1 if any)
  -h, --help       show this help
";

struct Options {
    input: String,
    query: ExplainQuery,
    episode: Option<String>,
    seed: Option<String>,
    json_out: bool,
    orphans: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut positional = Vec::new();
    let mut episode = None;
    let mut seed = None;
    let mut json_out = false;
    let mut orphans = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--episode" => episode = Some(value("--episode")?),
            "--seed" => seed = Some(value("--seed")?),
            "--json" => json_out = true,
            "--orphans" => orphans = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option `{other}`"))
            }
            other => positional.push(other.to_string()),
        }
    }
    let (input, query) = match positional.len() {
        3 => {
            let query = ExplainQuery::parse(&positional[1], &positional[2])
                .ok_or_else(|| {
                    format!(
                        "unknown query `{} {}` (want message/blame/shed <id>)",
                        positional[1], positional[2]
                    )
                })?;
            (positional.remove(0), query)
        }
        2 => {
            let query = ExplainQuery::parse_token(&positional[1]).ok_or_else(|| {
                format!("unknown query `{}` (want e.g. message:3)", positional[1])
            })?;
            (positional.remove(0), query)
        }
        _ => {
            return Err(
                "expected <FILE|-> and a query (message <id> | blame <host> | shed <report>)"
                    .to_string(),
            )
        }
    };
    Ok(Options { input, query, episode, seed, json_out, orphans })
}

/// One episode stream of the trace file, keyed by its `episode`/`seed`
/// annotations (empty strings when absent).
struct Stream {
    episode: String,
    seed: String,
    index: CausalIndex,
    /// `meta-ambiguity` sidecar partitions: (judge, classes).
    ambiguity: Vec<(u64, Vec<Vec<u64>>)>,
}

fn load_streams(opts: &Options) -> Result<Vec<Stream>, String> {
    let text = if opts.input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&opts.input)
            .map_err(|e| format!("reading {}: {e}", opts.input))?
    };
    let mut streams: Vec<Stream> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e| format!("{} line {}: {e}", opts.input, lineno + 1))?;
        let episode = v.get("episode").and_then(Json::as_str).unwrap_or("").to_string();
        let seed = v.get("seed").and_then(Json::as_str).unwrap_or("").to_string();
        if let Some(want) = &opts.episode {
            if &episode != want {
                continue;
            }
        }
        if let Some(want) = &opts.seed {
            if &seed != want {
                continue;
            }
        }
        // Streams appear in file order — a pure function of the bytes.
        let stream = match streams.iter_mut().find(|s| s.episode == episode && s.seed == seed)
        {
            Some(s) => s,
            None => {
                streams.push(Stream {
                    episode,
                    seed,
                    index: CausalIndex::new(),
                    ambiguity: Vec::new(),
                });
                streams.last_mut().unwrap_or_else(|| unreachable!("just pushed"))
            }
        };
        let kind = v.get("kind").and_then(Json::as_str).unwrap_or("");
        if kind == "meta-ambiguity" {
            let judge = v.get("judge").and_then(Json::as_num).map(|n| n as u64);
            let classes = v.get("classes").and_then(Json::as_arr).map(|cs| {
                cs.iter()
                    .map(|c| {
                        c.as_arr()
                            .unwrap_or(&[])
                            .iter()
                            .filter_map(Json::as_num)
                            .map(|n| n as u64)
                            .collect::<Vec<u64>>()
                    })
                    .collect::<Vec<Vec<u64>>>()
            });
            if let (Some(judge), Some(classes)) = (judge, classes) {
                stream.ambiguity.push((judge, classes));
            }
            continue;
        }
        if let Some((traced, _, _)) = concilium_obs::traced_from_json_line(&v) {
            stream.index.push(traced);
        }
        // Unknown kinds are skipped: never invent an event.
    }
    Ok(streams)
}

/// Attaches the identifiability partition to an explanation: for each
/// chain with blame evidence, the sidecar class (of the chain's judge)
/// containing an evidence link, when that class is genuinely ambiguous
/// (more than one link).
fn attach_ambiguity(stream: &Stream, ex: &mut Explanation) {
    for chain in &ex.chains {
        let Some(judge) = chain.judge else { continue };
        for (j, classes) in &stream.ambiguity {
            if *j != judge {
                continue;
            }
            for class in classes {
                if class.len() < 2 {
                    continue;
                }
                let hit = chain.evidence.iter().any(|l| class.contains(&l.link));
                let dup = ex
                    .ambiguity
                    .iter()
                    .any(|n| n.judge == judge && n.class == *class);
                if hit && !dup {
                    ex.ambiguity.push(AmbiguityNote { judge, class: class.clone() });
                }
            }
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let streams = load_streams(opts)?;
    let mut found_any = false;
    let mut orphan_count = 0usize;
    let mut out = String::new();
    for stream in &streams {
        let mut ex = explain(&stream.index, &opts.query);
        if opts.orphans {
            for (i, reason) in stream.index.orphan_terminals() {
                orphan_count += 1;
                if !opts.json_out {
                    out.push_str(&format!(
                        "orphan in {}#{}: {} — {}\n",
                        stream.episode,
                        stream.seed,
                        stream.index.events()[i].render(),
                        reason
                    ));
                }
            }
        }
        if !ex.found() {
            continue;
        }
        found_any = true;
        attach_ambiguity(stream, &mut ex);
        if opts.json_out {
            out.push_str(&format!(
                "{{\"episode\":{},\"seed\":{},\"explanation\":{}}}\n",
                json::escape(&stream.episode),
                json::escape(&stream.seed),
                ex.render_json()
            ));
        } else {
            if !stream.episode.is_empty() || !stream.seed.is_empty() {
                out.push_str(&format!("== {}#{} ==\n", stream.episode, stream.seed));
            }
            out.push_str(&ex.render_text());
            out.push('\n');
        }
    }
    if !found_any {
        let entity = opts.query.entity();
        if opts.json_out {
            out.push_str(&format!(
                "{{\"query\":{},\"entity\":{},\"found\":false}}\n",
                json::escape(&opts.query.token()),
                json::escape(&entity.to_string())
            ));
        } else {
            out.push_str(&format!(
                "explain {}: no events about {entity} in {} stream(s)\n",
                opts.query.token(),
                streams.len()
            ));
        }
    }
    print!("{out}");
    if orphan_count > 0 {
        eprintln!(
            "concilium-explain: causal-reachability violated: {orphan_count} orphan terminal event(s)"
        );
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("concilium-explain: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("concilium-explain: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
