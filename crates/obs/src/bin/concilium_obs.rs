//! `concilium-obs` — filter and pretty-print `--trace-out` JSONL traces.
//!
//! Reads a trace file (or stdin with `-`), keeps the lines matching the
//! given filters, and renders each as the same human-readable line a
//! failing-case reproducer prints — the causal story of an episode:
//!
//! ```text
//! concilium-obs trace.jsonl --episode lossy --seed 7
//! concilium-obs trace.jsonl --kind judge,verdict,escalate --msg 3
//! cat trace.jsonl | concilium-obs - --grep GUILTY --stats
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use concilium_obs::json::{self, Json};
use concilium_obs::{ppb, FaultKind, LinkObsSummary, ShedReason, TraceEvent, Traced};

const USAGE: &str = "\
usage: concilium-obs <FILE|-> [options]

Filter and pretty-print a --trace-out JSONL trace.

options:
  --kind K[,K,...]   keep only events with these kinds (e.g. judge,verdict)
  --episode NAME     keep only events of this episode arm
  --seed SEED        keep only events of this seed
  --msg N            keep only events about message index N
  --grep SUBSTR      keep only events whose rendered line contains SUBSTR
  --json             echo the matching raw JSONL lines instead of rendering
  --stats            append per-kind counts of the matching events
  -h, --help         show this help
";

struct Options {
    input: String,
    kinds: Vec<String>,
    episode: Option<String>,
    seed: Option<String>,
    msg: Option<u64>,
    grep: Option<String>,
    raw_json: bool,
    stats: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        kinds: Vec::new(),
        episode: None,
        seed: None,
        msg: None,
        grep: None,
        raw_json: false,
        stats: false,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--kind" => {
                opts.kinds = value("--kind")?.split(',').map(str::to_string).collect()
            }
            "--episode" => opts.episode = Some(value("--episode")?),
            "--seed" => opts.seed = Some(value("--seed")?),
            "--msg" => {
                opts.msg = Some(
                    value("--msg")?
                        .parse()
                        .map_err(|_| "--msg requires an integer".to_string())?,
                )
            }
            "--grep" => opts.grep = Some(value("--grep")?),
            "--json" => opts.raw_json = true,
            "--stats" => opts.stats = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option `{other}`"))
            }
            other => positional.push(other.to_string()),
        }
    }
    match positional.len() {
        0 => Err("missing input file (use `-` for stdin)".to_string()),
        1 => {
            opts.input = positional.remove(0);
            Ok(opts)
        }
        _ => Err(format!("unexpected extra argument `{}`", positional[1])),
    }
}

fn field_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_num).map(|n| n as u64)
}

fn field_bool(v: &Json, key: &str) -> Option<bool> {
    match v.get(key) {
        Some(Json::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Rebuilds the typed event from one parsed JSONL line, so the filter
/// renders exactly what a reproducer would. `None` for unknown kinds —
/// the caller falls back to echoing the raw line.
fn event_from_json(kind: &str, v: &Json) -> Option<TraceEvent> {
    let msg = || field_u64(v, "msg");
    Some(match kind {
        "send" => TraceEvent::MessageSent { msg: msg()?, flow: field_u64(v, "flow")? },
        "churn-blocked" => TraceEvent::ChurnBlocked { msg: msg()? },
        "outcome" => TraceEvent::RouteOutcome {
            msg: msg()?,
            received_upto: field_u64(v, "received_upto")?,
            delivered: field_bool(v, "delivered")?,
        },
        "fault" => TraceEvent::FaultInjected {
            msg: msg()?,
            kind: match v.get("fault").and_then(Json::as_str)? {
                "transport-drop" => FaultKind::TransportDrop,
                "host-drop" => FaultKind::HostDrop,
                "network-drop" => FaultKind::NetworkDrop,
                _ => return None,
            },
        },
        "ack" => TraceEvent::AckReceived { msg: msg()? },
        "retx" => TraceEvent::RetryFired { msg: msg()?, attempt: field_u64(v, "attempt")? },
        "expire" => TraceEvent::MessageExpired { msg: msg()? },
        "snapshots" => TraceEvent::SnapshotsGathered {
            links: field_u64(v, "links")?,
            observations: field_u64(v, "observations")?,
        },
        "judge" => TraceEvent::BlameComputed {
            msg: msg()?,
            blame_ppb: ppb(v.get("blame").and_then(Json::as_num)?),
            accuracy_ppb: ppb(v.get("accuracy").and_then(Json::as_num)?),
            links: v
                .get("links")
                .and_then(Json::as_arr)?
                .iter()
                .map(|l| {
                    Some(LinkObsSummary {
                        link: field_u64(l, "link")?,
                        up: field_u64(l, "up")?,
                        down: field_u64(l, "down")?,
                    })
                })
                .collect::<Option<_>>()?,
        },
        "verdict" => TraceEvent::VerdictAccumulated {
            judge: field_u64(v, "judge")?,
            accused: field_u64(v, "accused")?,
            guilty: field_bool(v, "guilty")?,
            window_guilty: field_u64(v, "window_guilty")?,
            window_len: field_u64(v, "window_len")?,
        },
        "escalate" => TraceEvent::Escalated {
            msg: msg()?,
            judge: field_u64(v, "judge")?,
            accused: field_u64(v, "accused")?,
        },
        "dissolve" => TraceEvent::Dissolved { msg: msg()? },
        "standing" => TraceEvent::CulpritStanding {
            msg: msg()?,
            position: field_u64(v, "position")?,
            culprit: field_u64(v, "culprit")?,
        },
        "revise" => TraceEvent::AccusationRevised {
            step: field_u64(v, "step")?,
            accuser_pos: field_u64(v, "accuser_pos")?,
            accused_pos: field_u64(v, "accused_pos")?,
            amended: field_bool(v, "amended")?,
        },
        "stored" => TraceEvent::AccusationStored {
            culprit: field_u64(v, "culprit")?,
            replicas: field_u64(v, "replicas")?,
        },
        "dht-refused" => TraceEvent::DhtRefused { culprit: field_u64(v, "culprit")? },
        "admit" => TraceEvent::ReportAdmitted {
            report: field_u64(v, "report")?,
            queue_depth: field_u64(v, "queue_depth")?,
        },
        "shed" => TraceEvent::LoadShed {
            report: field_u64(v, "report")?,
            reason: match v.get("reason").and_then(Json::as_str)? {
                "mailbox-full" => ShedReason::MailboxFull,
                "deadline" => ShedReason::DeadlineExceeded,
                "degraded" => ShedReason::Degraded,
                _ => return None,
            },
        },
        "complete" => TraceEvent::ReportCompleted {
            report: field_u64(v, "report")?,
            batch: field_u64(v, "batch")?,
        },
        "journal-commit" => TraceEvent::JournalCommitted {
            seq: field_u64(v, "seq")?,
            next_input: field_u64(v, "next_input")?,
        },
        "restart" => TraceEvent::SupervisorRestarted {
            incident: field_u64(v, "incident")?,
            budget_left: field_u64(v, "budget_left")?,
        },
        "degraded" => TraceEvent::DegradedEntered { incidents: field_u64(v, "incidents")? },
        "recovered" => TraceEvent::RecoveryReplayed {
            records: field_u64(v, "records")?,
            resumed_input: field_u64(v, "resumed_input")?,
        },
        "tick" => TraceEvent::Tick,
        _ => return None,
    })
}

fn run(opts: &Options) -> Result<(), String> {
    let text = if opts.input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&opts.input)
            .map_err(|e| format!("reading {}: {e}", opts.input))?
    };

    let mut kind_counts: std::collections::BTreeMap<String, u64> = Default::default();
    let mut matched = 0u64;
    let mut total = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        total += 1;
        let v = json::parse(line)
            .map_err(|e| format!("{} line {}: {e}", opts.input, lineno + 1))?;
        let kind = v.get("kind").and_then(Json::as_str).unwrap_or("");
        if !opts.kinds.is_empty() && !opts.kinds.iter().any(|k| k == kind) {
            continue;
        }
        if let Some(want) = &opts.episode {
            if v.get("episode").and_then(Json::as_str) != Some(want) {
                continue;
            }
        }
        if let Some(want) = &opts.seed {
            if v.get("seed").and_then(Json::as_str) != Some(want) {
                continue;
            }
        }
        if let Some(want) = opts.msg {
            if field_u64(&v, "msg") != Some(want) {
                continue;
            }
        }

        let rendered = match (field_u64(&v, "t_us"), event_from_json(kind, &v)) {
            (Some(t_us), Some(event)) => {
                let mut prefix = String::new();
                if let Some(ep) = v.get("episode").and_then(Json::as_str) {
                    prefix.push_str(ep);
                    if let Some(seed) = v.get("seed").and_then(Json::as_str) {
                        prefix.push('#');
                        prefix.push_str(seed);
                    }
                    prefix.push(' ');
                }
                format!("{prefix}{}", Traced { at_micros: t_us, event }.render())
            }
            // Unknown or incomplete event: fall back to the raw line so
            // the tool never hides data it fails to understand.
            _ => line.to_string(),
        };
        if let Some(needle) = &opts.grep {
            if !rendered.contains(needle.as_str()) && !line.contains(needle.as_str()) {
                continue;
            }
        }
        matched += 1;
        *kind_counts.entry(kind.to_string()).or_default() += 1;
        if opts.raw_json {
            println!("{line}");
        } else {
            println!("{rendered}");
        }
    }

    if opts.stats {
        println!("---");
        for (kind, count) in &kind_counts {
            println!("{kind:>14}  {count}");
        }
        println!("{matched} of {total} event(s) matched");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("concilium-obs: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("concilium-obs: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
