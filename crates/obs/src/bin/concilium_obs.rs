//! `concilium-obs` — filter and pretty-print `--trace-out` JSONL traces.
//!
//! Reads a trace file (or stdin with `-`), keeps the lines matching the
//! given filters, and renders each as the same human-readable line a
//! failing-case reproducer prints — the causal story of an episode:
//!
//! ```text
//! concilium-obs trace.jsonl --episode lossy --seed 7
//! concilium-obs trace.jsonl --kind judge,verdict,escalate --msg 3
//! concilium-obs trace.jsonl --id host:4 --after-us 1500000
//! cat trace.jsonl | concilium-obs - --grep GUILTY --stats
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use concilium_obs::json::{self, Json};
use concilium_obs::{entities, event_from_json, EntityRef, Traced};

const USAGE: &str = "\
usage: concilium-obs <FILE|-> [options]

Filter and pretty-print a --trace-out JSONL trace.

options:
  --kind K[,K,...]   keep only events with these kinds (e.g. judge,verdict)
  --episode NAME     keep only events of this episode arm
  --seed SEED        keep only events of this seed
  --msg N            keep only events about message index N
  --id ENTITY        keep only events about this entity (message:3, host:4,
                     report:9, flow:1, link:12 — the correlation keys of
                     the causal layer; accusation keys are positional and
                     need concilium-explain)
  --after-us T       keep only events at or after virtual time T (µs)
  --before-us T      keep only events strictly before virtual time T (µs)
  --grep SUBSTR      keep only events whose rendered line contains SUBSTR
  --json             echo the matching raw JSONL lines instead of rendering
  --stats            append per-kind counts of the matching events
  -h, --help         show this help
";

struct Options {
    input: String,
    kinds: Vec<String>,
    episode: Option<String>,
    seed: Option<String>,
    msg: Option<u64>,
    id: Option<EntityRef>,
    after_us: Option<u64>,
    before_us: Option<u64>,
    grep: Option<String>,
    raw_json: bool,
    stats: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        kinds: Vec::new(),
        episode: None,
        seed: None,
        msg: None,
        id: None,
        after_us: None,
        before_us: None,
        grep: None,
        raw_json: false,
        stats: false,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--kind" => {
                opts.kinds = value("--kind")?.split(',').map(str::to_string).collect()
            }
            "--episode" => opts.episode = Some(value("--episode")?),
            "--seed" => opts.seed = Some(value("--seed")?),
            "--msg" => {
                opts.msg = Some(
                    value("--msg")?
                        .parse()
                        .map_err(|_| "--msg requires an integer".to_string())?,
                )
            }
            "--id" => {
                let raw = value("--id")?;
                opts.id = Some(EntityRef::parse(&raw).ok_or_else(|| {
                    format!("--id requires kind:id (e.g. message:3, host:4), got `{raw}`")
                })?)
            }
            "--after-us" => {
                opts.after_us = Some(
                    value("--after-us")?
                        .parse()
                        .map_err(|_| "--after-us requires an integer".to_string())?,
                )
            }
            "--before-us" => {
                opts.before_us = Some(
                    value("--before-us")?
                        .parse()
                        .map_err(|_| "--before-us requires an integer".to_string())?,
                )
            }
            "--grep" => opts.grep = Some(value("--grep")?),
            "--json" => opts.raw_json = true,
            "--stats" => opts.stats = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option `{other}`"))
            }
            other => positional.push(other.to_string()),
        }
    }
    match positional.len() {
        0 => Err("missing input file (use `-` for stdin)".to_string()),
        1 => {
            opts.input = positional.remove(0);
            Ok(opts)
        }
        _ => Err(format!("unexpected extra argument `{}`", positional[1])),
    }
}

fn field_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_num).map(|n| n as u64)
}

fn run(opts: &Options) -> Result<(), String> {
    let text = if opts.input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&opts.input)
            .map_err(|e| format!("reading {}: {e}", opts.input))?
    };

    let mut kind_counts: std::collections::BTreeMap<String, u64> = Default::default();
    let mut entity_scratch = Vec::new();
    let mut matched = 0u64;
    let mut total = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        total += 1;
        let v = json::parse(line)
            .map_err(|e| format!("{} line {}: {e}", opts.input, lineno + 1))?;
        let kind = v.get("kind").and_then(Json::as_str).unwrap_or("");
        if !opts.kinds.is_empty() && !opts.kinds.iter().any(|k| k == kind) {
            continue;
        }
        if let Some(want) = &opts.episode {
            if v.get("episode").and_then(Json::as_str) != Some(want) {
                continue;
            }
        }
        if let Some(want) = &opts.seed {
            if v.get("seed").and_then(Json::as_str) != Some(want) {
                continue;
            }
        }
        if let Some(want) = opts.msg {
            if field_u64(&v, "msg") != Some(want) {
                continue;
            }
        }
        let t_us = field_u64(&v, "t_us");
        if let Some(after) = opts.after_us {
            match t_us {
                Some(t) if t >= after => {}
                _ => continue,
            }
        }
        if let Some(before) = opts.before_us {
            match t_us {
                Some(t) if t < before => {}
                _ => continue,
            }
        }
        let event = event_from_json(kind, &v);
        if let Some(want) = &opts.id {
            // Entity selection needs the typed event; unknown kinds have
            // no correlation keys and cannot match.
            match &event {
                Some(ev) => {
                    entities(ev, &mut entity_scratch);
                    if !entity_scratch.contains(want) {
                        continue;
                    }
                }
                None => continue,
            }
        }

        let rendered = match (t_us, event) {
            (Some(t_us), Some(event)) => {
                let mut prefix = String::new();
                if let Some(ep) = v.get("episode").and_then(Json::as_str) {
                    prefix.push_str(ep);
                    if let Some(seed) = v.get("seed").and_then(Json::as_str) {
                        prefix.push('#');
                        prefix.push_str(seed);
                    }
                    prefix.push(' ');
                }
                format!("{prefix}{}", Traced { at_micros: t_us, event }.render())
            }
            // Unknown or incomplete event: fall back to the raw line so
            // the tool never hides data it fails to understand.
            _ => line.to_string(),
        };
        if let Some(needle) = &opts.grep {
            if !rendered.contains(needle.as_str()) && !line.contains(needle.as_str()) {
                continue;
            }
        }
        matched += 1;
        *kind_counts.entry(kind.to_string()).or_default() += 1;
        if opts.raw_json {
            println!("{line}");
        } else {
            println!("{rendered}");
        }
    }

    if opts.stats {
        println!("---");
        for (kind, count) in &kind_counts {
            println!("{kind:>14}  {count}");
        }
        println!("{matched} of {total} event(s) matched");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("concilium-obs: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("concilium-obs: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
