//! A minimal JSON reader.
//!
//! The workspace deliberately carries no JSON dependency: emitters
//! hand-format their output (see the bench reports and
//! [`crate::trace::Trace::to_jsonl`]). This module is the matching reader —
//! just enough of RFC 8259 to parse everything this workspace emits, used
//! by the `concilium-obs` filter binary and the metrics round-trip.
//!
//! Not a general-purpose parser: no `\u` escapes beyond BMP pass-through,
//! integers and floats both land in [`Json::Num`] as `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not preserved (sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value from `input`, requiring only trailing whitespace
/// after it.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing garbage after value"));
    }
    Ok(value)
}

fn err(at: usize, msg: &str) -> ParseError {
    ParseError { at, msg: msg.to_string() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected {:?}", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, &format!("invalid number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| err(*pos, "invalid UTF-8"));
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = bytes.get(*pos).ok_or_else(|| err(*pos, "dangling escape"))?;
                match escaped {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u digits"))?,
                            16,
                        )
                        .map_err(|_| err(*pos, "bad \\u digits"))?;
                        let ch = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "surrogate \\u escape unsupported"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => {
                        return Err(err(*pos, &format!("unknown escape \\{}", *other as char)))
                    }
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    format!("{s:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let arr = parse("[1, [2], {}]").unwrap();
        assert_eq!(arr.as_arr().unwrap().len(), 3);
        let obj = parse("{\"x\": 1, \"y\": {\"z\": [true]}}").unwrap();
        assert_eq!(obj.get("x").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            obj.get("y").and_then(|y| y.get("z")).and_then(Json::as_arr),
            Some(&[Json::Bool(true)][..])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn round_trips_emitted_trace_lines() {
        let line = "{\"episode\":\"lossy\",\"seed\":\"7\",\"t_us\":1500000,\
                    \"kind\":\"judge\",\"msg\":3,\"blame\":0.250000000,\
                    \"links\":[{\"link\":3,\"up\":5,\"down\":1}]}";
        let v = parse(line).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("judge"));
        assert_eq!(v.get("t_us").and_then(Json::as_num), Some(1_500_000.0));
        let links = v.get("links").and_then(Json::as_arr).unwrap();
        assert_eq!(links[0].get("up").and_then(Json::as_num), Some(5.0));
    }
}
