//! Causal correlation over the typed trace (DESIGN.md §17).
//!
//! The trace stream records *what* happened; this module recovers *why*.
//! Three pieces, all pure functions of the event stream so every output
//! is bit-identical at any worker count:
//!
//! * **Correlation keys** ([`entities`], [`EntityRef`]): the identifiers
//!   an event is *about* — message, report, flow, link, host — derived
//!   from the event's existing fields at the emission choke point. No new
//!   side channels: the hashed encoding is untouched, so every committed
//!   trace digest and corpus fingerprint keeps its meaning. Accusation
//!   identities are the one stream-assigned key: the k-th `Escalated`
//!   event opens accusation `k`, and the dissolve/standing/revise/store
//!   events that follow it (which carry no message field of their own)
//!   are attributed to it positionally.
//! * **[`CausalLedger`]**: a streaming reachability monitor. Observed at
//!   the same choke point that feeds the trace hash, it enforces the
//!   causal grammar of the pipeline — send → fault → retry → expiry →
//!   blame → verdict → escalation → revision → store for episodes,
//!   admit → complete → commit for the daemon — and reports the first
//!   *orphan*: a terminal outcome event not reachable from its
//!   originating send/admit. Orphans are invariant violations.
//! * **[`CausalIndex`] + [`explain`]**: the offline query layer. Builds
//!   per-entity timelines and cause→effect links from any [`Traced`]
//!   stream and answers `explain message <id>` / `explain blame <host>` /
//!   `explain shed <report>` with the full causal chain, the tomography
//!   evidence window behind each verdict, and (when the caller supplies
//!   one) the ambiguity-class partition the verdict was confined to.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::event::{LinkObsSummary, TraceEvent, Traced};

/// What kind of thing an [`EntityRef`] names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EntityKind {
    /// A message index within an episode.
    Message,
    /// A failure report offered to the serving daemon.
    Report,
    /// A flow (source/destination pair) of an episode.
    Flow,
    /// An IP link named in blame evidence.
    Link,
    /// An overlay host (judge, accused, or culprit).
    Host,
    /// An accusation, numbered by escalation order within the stream.
    Accusation,
}

impl EntityKind {
    /// Stable short name used in `kind:id` spellings.
    pub fn name(self) -> &'static str {
        match self {
            EntityKind::Message => "message",
            EntityKind::Report => "report",
            EntityKind::Flow => "flow",
            EntityKind::Link => "link",
            EntityKind::Host => "host",
            EntityKind::Accusation => "accusation",
        }
    }
}

/// One correlation key: the identity of a thing the trace talks about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EntityRef {
    /// The entity's kind.
    pub kind: EntityKind,
    /// The entity's dense identifier.
    pub id: u64,
}

impl EntityRef {
    /// A message entity.
    pub fn message(id: u64) -> EntityRef {
        EntityRef { kind: EntityKind::Message, id }
    }

    /// A report entity.
    pub fn report(id: u64) -> EntityRef {
        EntityRef { kind: EntityKind::Report, id }
    }

    /// A flow entity.
    pub fn flow(id: u64) -> EntityRef {
        EntityRef { kind: EntityKind::Flow, id }
    }

    /// A link entity.
    pub fn link(id: u64) -> EntityRef {
        EntityRef { kind: EntityKind::Link, id }
    }

    /// A host entity.
    pub fn host(id: u64) -> EntityRef {
        EntityRef { kind: EntityKind::Host, id }
    }

    /// An accusation entity (stream escalation order).
    pub fn accusation(id: u64) -> EntityRef {
        EntityRef { kind: EntityKind::Accusation, id }
    }

    /// Parses a `kind:id` spelling (`message:3`, `host:7`, …). Accepts
    /// the short aliases `msg` and `acc`.
    pub fn parse(s: &str) -> Option<EntityRef> {
        let (kind, id) = s.split_once(':')?;
        let id: u64 = id.trim().parse().ok()?;
        let kind = match kind.trim() {
            "message" | "msg" => EntityKind::Message,
            "report" => EntityKind::Report,
            "flow" => EntityKind::Flow,
            "link" => EntityKind::Link,
            "host" => EntityKind::Host,
            "accusation" | "acc" => EntityKind::Accusation,
            _ => return None,
        };
        Some(EntityRef { kind, id })
    }
}

impl fmt::Display for EntityRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind.name(), self.id)
    }
}

/// The correlation keys an event carries, derived purely from its
/// existing fields. Accusation keys are *not* produced here — they are
/// positional (assigned by [`CausalIndex`] in stream order), because the
/// dissolve/standing/revise/store events carry no accusation field.
pub fn entities(event: &TraceEvent, out: &mut Vec<EntityRef>) {
    out.clear();
    match event {
        TraceEvent::MessageSent { msg, flow } => {
            out.push(EntityRef::message(*msg));
            out.push(EntityRef::flow(*flow));
        }
        TraceEvent::ChurnBlocked { msg }
        | TraceEvent::RouteOutcome { msg, .. }
        | TraceEvent::FaultInjected { msg, .. }
        | TraceEvent::AckReceived { msg }
        | TraceEvent::RetryFired { msg, .. }
        | TraceEvent::MessageExpired { msg }
        | TraceEvent::Dissolved { msg } => out.push(EntityRef::message(*msg)),
        TraceEvent::SnapshotsGathered { .. } => {}
        TraceEvent::BlameComputed { msg, links, .. } => {
            out.push(EntityRef::message(*msg));
            for l in links {
                out.push(EntityRef::link(l.link));
            }
        }
        TraceEvent::VerdictAccumulated { judge, accused, .. } => {
            out.push(EntityRef::host(*judge));
            out.push(EntityRef::host(*accused));
        }
        TraceEvent::Escalated { msg, judge, accused } => {
            out.push(EntityRef::message(*msg));
            out.push(EntityRef::host(*judge));
            out.push(EntityRef::host(*accused));
        }
        TraceEvent::CulpritStanding { msg, culprit, .. } => {
            out.push(EntityRef::message(*msg));
            out.push(EntityRef::host(*culprit));
        }
        TraceEvent::AccusationRevised { .. } => {}
        TraceEvent::AccusationStored { culprit, .. } | TraceEvent::DhtRefused { culprit } => {
            out.push(EntityRef::host(*culprit))
        }
        TraceEvent::ReportAdmitted { report, .. }
        | TraceEvent::LoadShed { report, .. }
        | TraceEvent::ReportCompleted { report, .. } => out.push(EntityRef::report(*report)),
        TraceEvent::JournalCommitted { .. }
        | TraceEvent::SupervisorRestarted { .. }
        | TraceEvent::DegradedEntered { .. }
        | TraceEvent::RecoveryReplayed { .. }
        | TraceEvent::Tick => {}
    }
}

/// A terminal outcome event that is not reachable from its originating
/// send/admit — the causal-reachability invariant's failure report.
#[derive(Clone, Debug)]
pub struct CausalOrphan {
    /// The entity the orphan event is about.
    pub entity: EntityRef,
    /// What rule of the causal grammar the stream broke.
    pub detail: String,
}

/// Streaming causal-reachability monitor.
///
/// Observed once per emitted event at the same choke point that feeds
/// the trace hash, so it sees the *full* stream (the ring-buffered trace
/// may have evicted the originating send by the time a verdict lands —
/// the ledger has not). The state machine mirrors the episode's
/// synchronous emission order: all judgment events of one expiry are
/// emitted consecutively at the same virtual time, so single-slot
/// blame/accusation tracking is exact.
#[derive(Clone, Debug, Default)]
pub struct CausalLedger {
    sends: BTreeMap<u64, bool>,
    admitted: BTreeMap<u64, bool>,
    open_blame: Option<u64>,
    open_accusation: Option<u64>,
    standing: Option<u64>,
    /// After a recovery replay the pre-crash admit events live only in
    /// the journal, not the trace; completions of replayed reports are
    /// then legitimate without an in-stream admit.
    recovered: bool,
}

impl CausalLedger {
    /// A fresh ledger (no sends, no admissions, nothing open).
    pub fn new() -> CausalLedger {
        CausalLedger::default()
    }

    fn orphan(entity: EntityRef, detail: String) -> Option<CausalOrphan> {
        Some(CausalOrphan { entity, detail })
    }

    /// Observes one event in stream order; returns the first causal
    /// orphan, if this event is one.
    pub fn observe(&mut self, event: &TraceEvent) -> Option<CausalOrphan> {
        let unsent = |msg: u64, what: &str| {
            CausalLedger::orphan(
                EntityRef::message(msg),
                format!("{what} for message {msg} with no originating send in the stream"),
            )
        };
        match event {
            TraceEvent::MessageSent { msg, .. } => {
                self.sends.insert(*msg, true);
                None
            }
            TraceEvent::ChurnBlocked { msg }
            | TraceEvent::RouteOutcome { msg, .. }
            | TraceEvent::FaultInjected { msg, .. }
            | TraceEvent::AckReceived { msg }
            | TraceEvent::RetryFired { msg, .. } => {
                if !self.sends.contains_key(msg) {
                    return unsent(*msg, event.label());
                }
                None
            }
            TraceEvent::MessageExpired { msg } => {
                if !self.sends.contains_key(msg) {
                    return unsent(*msg, "expiry");
                }
                None
            }
            TraceEvent::SnapshotsGathered { .. } => None,
            TraceEvent::BlameComputed { msg, .. } => {
                if !self.sends.contains_key(msg) {
                    return unsent(*msg, "blame computation");
                }
                self.open_blame = Some(*msg);
                None
            }
            TraceEvent::VerdictAccumulated { judge, accused, .. } => match self.open_blame {
                Some(_) => None,
                None => CausalLedger::orphan(
                    EntityRef::host(*accused),
                    format!(
                        "verdict {judge}->{accused} with no preceding blame computation"
                    ),
                ),
            },
            TraceEvent::Escalated { msg, judge, accused } => {
                if self.open_blame != Some(*msg) {
                    return CausalLedger::orphan(
                        EntityRef::message(*msg),
                        format!(
                            "escalation {judge}->{accused} without a blame computation \
                             for message {msg}"
                        ),
                    );
                }
                self.open_accusation = Some(*msg);
                // A new accusation supersedes any unresolved standing.
                self.standing = None;
                None
            }
            TraceEvent::Dissolved { msg } => {
                if self.open_accusation != Some(*msg) {
                    return CausalLedger::orphan(
                        EntityRef::message(*msg),
                        format!("dissolve for message {msg} with no open accusation"),
                    );
                }
                self.open_accusation = None;
                None
            }
            TraceEvent::CulpritStanding { msg, culprit, .. } => {
                if self.open_accusation != Some(*msg) {
                    return CausalLedger::orphan(
                        EntityRef::message(*msg),
                        format!("standing culprit {culprit} with no open accusation"),
                    );
                }
                self.open_accusation = None;
                self.standing = Some(*msg);
                None
            }
            TraceEvent::AccusationRevised { step, .. } => match self.standing {
                Some(_) => None,
                None => CausalLedger::orphan(
                    EntityRef::accusation(*step),
                    format!("revision step {step} with no standing accusation"),
                ),
            },
            // The stored culprit may differ from the standing culprit: a
            // withheld revision legitimately leaves blame upstream. Only
            // the existence of a standing accusation is required.
            TraceEvent::AccusationStored { culprit, .. } | TraceEvent::DhtRefused { culprit } => {
                match self.standing.take() {
                    Some(_) => None,
                    None => CausalLedger::orphan(
                        EntityRef::host(*culprit),
                        format!(
                            "terminal accusation against host {culprit} with no standing \
                             accusation in the stream"
                        ),
                    ),
                }
            }
            TraceEvent::ReportAdmitted { report, .. } => {
                self.admitted.insert(*report, true);
                None
            }
            // A shed is both root and terminal: the refusal happens at
            // the offer, before any admit exists.
            TraceEvent::LoadShed { .. } => None,
            TraceEvent::ReportCompleted { report, .. } => {
                if !self.admitted.contains_key(report) && !self.recovered {
                    return CausalLedger::orphan(
                        EntityRef::report(*report),
                        format!("completion for report {report} never admitted in the stream"),
                    );
                }
                None
            }
            TraceEvent::RecoveryReplayed { .. } => {
                self.recovered = true;
                None
            }
            TraceEvent::JournalCommitted { .. }
            | TraceEvent::SupervisorRestarted { .. }
            | TraceEvent::DegradedEntered { .. }
            | TraceEvent::Tick => None,
        }
    }
}

/// Per-entity timelines and cause→effect links over a [`Traced`] stream.
///
/// Built in stream order; every derived structure (timelines, parents,
/// accusation numbering) is a pure function of the event sequence, so
/// two byte-identical traces index identically.
#[derive(Clone, Debug, Default)]
pub struct CausalIndex {
    events: Vec<Traced>,
    parents: Vec<Option<usize>>,
    timelines: BTreeMap<EntityRef, Vec<usize>>,
    /// Last event index per message (chain tail for msg-keyed events).
    last_of_msg: BTreeMap<u64, usize>,
    /// Admit event index per report.
    admit_of: BTreeMap<u64, usize>,
    last_serve: Option<usize>,
    last_expiry: Option<usize>,
    last_blame: Option<usize>,
    last_verdict: Option<usize>,
    open_accusation: Option<(u64, usize)>,
    standing: Option<(u64, usize)>,
    escalations: u64,
    scratch: Vec<EntityRef>,
}

impl CausalIndex {
    /// An empty index.
    pub fn new() -> CausalIndex {
        CausalIndex::default()
    }

    /// Indexes a whole stream.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Traced>) -> CausalIndex {
        let mut idx = CausalIndex::new();
        for ev in events {
            idx.push(ev.clone());
        }
        idx
    }

    /// The indexed events, in stream order.
    pub fn events(&self) -> &[Traced] {
        &self.events
    }

    /// The causal parent of event `i`, if the link rules attach one.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parents.get(i).copied().flatten()
    }

    /// Event indices about `entity`, in stream order.
    pub fn timeline(&self, entity: &EntityRef) -> &[usize] {
        self.timelines.get(entity).map_or(&[], Vec::as_slice)
    }

    /// Walks parents from `i` back to the root; returns root..=i.
    pub fn chain(&self, i: usize) -> Vec<usize> {
        let mut chain = vec![i];
        let mut cur = i;
        while let Some(p) = self.parent(cur) {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Appends one event, deriving its correlation keys and causal
    /// parent from the link rules (DESIGN.md §17).
    pub fn push(&mut self, traced: Traced) {
        let i = self.events.len();
        let mut scratch = std::mem::take(&mut self.scratch);
        entities(&traced.event, &mut scratch);
        for e in &scratch {
            self.timelines.entry(*e).or_default().push(i);
        }
        self.scratch = scratch;

        let parent = match &traced.event {
            TraceEvent::MessageSent { msg, .. } => {
                self.last_of_msg.insert(*msg, i);
                None
            }
            TraceEvent::ChurnBlocked { msg }
            | TraceEvent::RouteOutcome { msg, .. }
            | TraceEvent::FaultInjected { msg, .. }
            | TraceEvent::AckReceived { msg }
            | TraceEvent::RetryFired { msg, .. } => {
                let p = self.last_of_msg.get(msg).copied();
                self.last_of_msg.insert(*msg, i);
                p
            }
            TraceEvent::MessageExpired { msg } => {
                let p = self.last_of_msg.get(msg).copied();
                self.last_of_msg.insert(*msg, i);
                self.last_expiry = Some(i);
                p
            }
            // Gathered inside the expiry's synchronous judgment.
            TraceEvent::SnapshotsGathered { .. } => self.last_expiry,
            TraceEvent::BlameComputed { msg, .. } => {
                let p = self.last_of_msg.get(msg).copied();
                self.last_of_msg.insert(*msg, i);
                self.last_blame = Some(i);
                p
            }
            TraceEvent::VerdictAccumulated { .. } => {
                self.last_verdict = Some(i);
                self.last_blame
            }
            TraceEvent::Escalated { msg, .. } => {
                let seq = self.escalations;
                self.escalations += 1;
                self.timelines.entry(EntityRef::accusation(seq)).or_default().push(i);
                self.open_accusation = Some((seq, i));
                self.standing = None;
                self.last_of_msg.insert(*msg, i);
                self.last_verdict
            }
            TraceEvent::Dissolved { msg } => {
                let open = self.open_accusation.take();
                if let Some((seq, _)) = open {
                    self.timelines.entry(EntityRef::accusation(seq)).or_default().push(i);
                }
                let p = open.map(|(_, at)| at).or_else(|| self.last_of_msg.get(msg).copied());
                self.last_of_msg.insert(*msg, i);
                p
            }
            TraceEvent::CulpritStanding { msg, .. } => {
                let open = self.open_accusation.take();
                if let Some((seq, _)) = open {
                    self.timelines.entry(EntityRef::accusation(seq)).or_default().push(i);
                    self.standing = Some((seq, i));
                }
                let p = open.map(|(_, at)| at).or_else(|| self.last_of_msg.get(msg).copied());
                self.last_of_msg.insert(*msg, i);
                p
            }
            TraceEvent::AccusationRevised { .. } => match self.standing {
                Some((seq, tail)) => {
                    self.timelines.entry(EntityRef::accusation(seq)).or_default().push(i);
                    self.standing = Some((seq, i));
                    Some(tail)
                }
                None => None,
            },
            TraceEvent::AccusationStored { .. } | TraceEvent::DhtRefused { .. } => {
                match self.standing.take() {
                    Some((seq, tail)) => {
                        self.timelines.entry(EntityRef::accusation(seq)).or_default().push(i);
                        Some(tail)
                    }
                    None => None,
                }
            }
            TraceEvent::ReportAdmitted { report, .. } => {
                self.admit_of.insert(*report, i);
                self.last_serve = Some(i);
                None
            }
            TraceEvent::LoadShed { .. } => {
                self.last_serve = Some(i);
                None
            }
            TraceEvent::ReportCompleted { report, .. } => {
                let p = self.admit_of.get(report).copied();
                self.last_serve = Some(i);
                p
            }
            // The commit seals the inputs processed since the last one.
            TraceEvent::JournalCommitted { .. } => {
                let p = self.last_serve;
                self.last_serve = Some(i);
                p
            }
            TraceEvent::SupervisorRestarted { .. }
            | TraceEvent::DegradedEntered { .. }
            | TraceEvent::RecoveryReplayed { .. }
            | TraceEvent::Tick => None,
        };
        self.parents.push(parent);
        self.events.push(traced);
    }

    /// Offline form of the reachability invariant: every terminal outcome
    /// event must chain back to a send (episodes) or an admit/shed
    /// (serve). Returns the offenders with a human-readable reason.
    ///
    /// Only meaningful over *full* streams — a ring-truncated trace may
    /// have evicted its roots, which is exactly why the runtime check
    /// ([`CausalLedger`]) streams at the emission choke point instead.
    pub fn orphan_terminals(&self) -> Vec<(usize, String)> {
        let mut orphans = Vec::new();
        for (i, t) in self.events.iter().enumerate() {
            let terminal = matches!(
                t.event,
                TraceEvent::MessageExpired { .. }
                    | TraceEvent::VerdictAccumulated { .. }
                    | TraceEvent::Dissolved { .. }
                    | TraceEvent::AccusationStored { .. }
                    | TraceEvent::DhtRefused { .. }
                    | TraceEvent::LoadShed { .. }
                    | TraceEvent::ReportCompleted { .. }
            );
            if !terminal {
                continue;
            }
            let chain = self.chain(i);
            let root = &self.events[chain[0]].event;
            let ok = match t.event {
                TraceEvent::LoadShed { .. } => true,
                TraceEvent::ReportCompleted { .. } => {
                    matches!(root, TraceEvent::ReportAdmitted { .. })
                }
                _ => matches!(root, TraceEvent::MessageSent { .. }),
            };
            if !ok {
                orphans.push((
                    i,
                    format!(
                        "terminal `{}` at index {i} roots at `{}`, not a send/admit",
                        t.event.label(),
                        root.label()
                    ),
                ));
            }
        }
        orphans
    }
}

/// One "why?" query against an indexed trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExplainQuery {
    /// Why did message `id` die (or survive)?
    Message(u64),
    /// Why does host `id` stand accused?
    Blame(u64),
    /// Why was report `id` shed (or how was it served)?
    Shed(u64),
}

impl ExplainQuery {
    /// Parses `message <id>` / `blame <host>` / `shed <report>` word
    /// pairs, or the equivalent `kind:id` entity spelling.
    pub fn parse(verb: &str, id: &str) -> Option<ExplainQuery> {
        let id: u64 = id.trim().parse().ok()?;
        match verb {
            "message" | "msg" => Some(ExplainQuery::Message(id)),
            "blame" | "host" => Some(ExplainQuery::Blame(id)),
            "shed" | "report" => Some(ExplainQuery::Shed(id)),
            _ => None,
        }
    }

    /// Parses a single-token spelling (`message:3`, `blame:7`, `shed:9`).
    pub fn parse_token(s: &str) -> Option<ExplainQuery> {
        let (verb, id) = s.split_once(':')?;
        ExplainQuery::parse(verb.trim(), id)
    }

    /// The entity the query is about.
    pub fn entity(&self) -> EntityRef {
        match *self {
            ExplainQuery::Message(id) => EntityRef::message(id),
            ExplainQuery::Blame(id) => EntityRef::host(id),
            ExplainQuery::Shed(id) => EntityRef::report(id),
        }
    }

    /// The canonical `verb:id` spelling.
    pub fn token(&self) -> String {
        match *self {
            ExplainQuery::Message(id) => format!("message:{id}"),
            ExplainQuery::Blame(id) => format!("blame:{id}"),
            ExplainQuery::Shed(id) => format!("shed:{id}"),
        }
    }
}

/// One causal chain of an explanation: root to terminal, plus the
/// judgment context extracted along the way.
#[derive(Clone, Debug)]
pub struct ExplainChain {
    /// The chain's events, root first.
    pub events: Vec<Traced>,
    /// The judging host, when the chain contains an escalation.
    pub judge: Option<u64>,
    /// The accused host, when the chain contains an escalation.
    pub accused: Option<u64>,
    /// The Eq. 2 evidence window of the blame computation in the chain.
    pub evidence: Vec<LinkObsSummary>,
}

/// The ambiguity class a verdict was confined to: links the judge's
/// probe matrix cannot tell apart from the blamed one (supplied by
/// callers with tomography access — the trace alone cannot know it).
#[derive(Clone, Debug)]
pub struct AmbiguityNote {
    /// The judging host whose probe tree defines the partition.
    pub judge: u64,
    /// The indistinguishable link class containing the blamed evidence.
    pub class: Vec<u64>,
}

/// The answer to an [`ExplainQuery`]: causal chains plus timeline
/// context, renderable as human text or canonical JSON.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The query this answers.
    pub query: ExplainQuery,
    /// Every event about the queried entity, in stream order.
    pub timeline: Vec<Traced>,
    /// Causal chains ending at the entity's terminal outcomes.
    pub chains: Vec<ExplainChain>,
    /// Ambiguity-class partitions, when the caller supplied them.
    pub ambiguity: Vec<AmbiguityNote>,
}

impl Explanation {
    /// Whether the trace said anything at all about the entity.
    pub fn found(&self) -> bool {
        !self.timeline.is_empty() || !self.chains.is_empty()
    }

    /// Renders the explanation as human-readable text (no trailing
    /// newline). Deterministic: a pure function of the indexed stream.
    pub fn render_text(&self) -> String {
        let mut out = format!("explain {}", self.query.token());
        if !self.found() {
            let _ = write!(out, ": no events about {}", self.query.entity());
            return out;
        }
        let _ = write!(
            out,
            ": {} event(s), {} causal chain(s)",
            self.timeline.len(),
            self.chains.len()
        );
        for (k, chain) in self.chains.iter().enumerate() {
            let terminal =
                chain.events.last().map_or("<empty>", |t| t.event.label());
            let _ = write!(out, "\nchain {k} -> {terminal}:");
            for t in &chain.events {
                let _ = write!(out, "\n  {}", t.render());
            }
            if !chain.evidence.is_empty() {
                let _ = write!(out, "\n  evidence window:");
                for l in &chain.evidence {
                    let _ = write!(
                        out,
                        "\n    link {}: {} up / {} down",
                        l.link, l.up, l.down
                    );
                }
            }
        }
        for note in &self.ambiguity {
            let class = note
                .class
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "\nidentifiability: judge {}'s probe matrix cannot distinguish links \
                 [{class}] — the verdict is confined to that class",
                note.judge
            );
        }
        out
    }

    /// Renders the explanation as one canonical JSON object (no trailing
    /// newline). Field order is fixed, so two identical traces explain to
    /// byte-identical JSON — the `--jobs 1` vs `--jobs N` CI check.
    pub fn render_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"query\":{:?},\"entity\":{:?},\"found\":{},\"events\":{},\"chains\":[",
            self.query.token(),
            self.query.entity().to_string(),
            self.found(),
            self.timeline.len()
        );
        for (k, chain) in self.chains.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str("{\"judge\":");
            match chain.judge {
                Some(j) => {
                    let _ = write!(s, "{j}");
                }
                None => s.push_str("null"),
            }
            s.push_str(",\"accused\":");
            match chain.accused {
                Some(a) => {
                    let _ = write!(s, "{a}");
                }
                None => s.push_str("null"),
            }
            s.push_str(",\"events\":[");
            for (j, t) in chain.events.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&t.to_json(&[]));
            }
            s.push_str("],\"evidence\":[");
            for (j, l) in chain.evidence.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"link\":{},\"up\":{},\"down\":{}}}",
                    l.link, l.up, l.down
                );
            }
            s.push_str("]}");
        }
        s.push_str("],\"ambiguity\":[");
        for (k, note) in self.ambiguity.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"judge\":{},\"class\":[", note.judge);
            for (j, l) in note.class.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{l}");
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

fn chain_of(index: &CausalIndex, terminal: usize) -> ExplainChain {
    let mut judge = None;
    let mut accused = None;
    let mut evidence = Vec::new();
    let events: Vec<Traced> = index
        .chain(terminal)
        .into_iter()
        .map(|i| index.events()[i].clone())
        .collect();
    for t in &events {
        match &t.event {
            TraceEvent::Escalated { judge: j, accused: a, .. }
            | TraceEvent::VerdictAccumulated { judge: j, accused: a, .. } => {
                judge = Some(*j);
                accused = Some(*a);
            }
            TraceEvent::BlameComputed { links, .. } => evidence = links.clone(),
            _ => {}
        }
    }
    ExplainChain { events, judge, accused, evidence }
}

/// Answers a query against an indexed trace. Ambiguity notes start
/// empty; callers with tomography access fill [`Explanation::ambiguity`]
/// before rendering.
pub fn explain(index: &CausalIndex, query: &ExplainQuery) -> Explanation {
    let entity = query.entity();
    let timeline: Vec<Traced> =
        index.timeline(&entity).iter().map(|&i| index.events()[i].clone()).collect();
    let mut chains = Vec::new();
    match *query {
        ExplainQuery::Message(_) => {
            // The deepest terminal whose chain passes through this
            // message's events tells the whole story; later terminals
            // supersede earlier ones. Scanning every event — not just
            // the message's own timeline — lets the chain continue past
            // the expiry into the verdict and accusation, which are
            // keyed to host entities but descend from the message's
            // blame computation.
            let own: &[usize] = index.timeline(&entity);
            let mut best: Option<(usize, usize)> = None;
            for j in 0..index.events().len() {
                let chain = index.chain(j);
                if !chain.iter().any(|i| own.contains(i)) {
                    continue;
                }
                if best.is_none_or(|(_, len)| chain.len() > len) {
                    best = Some((j, chain.len()));
                }
            }
            if let Some((i, _)) = best {
                chains.push(chain_of(index, i));
            }
        }
        ExplainQuery::Blame(host) => {
            for &i in index.timeline(&entity) {
                let relevant = match &index.events()[i].event {
                    TraceEvent::CulpritStanding { culprit, .. }
                    | TraceEvent::AccusationStored { culprit, .. }
                    | TraceEvent::DhtRefused { culprit } => *culprit == host,
                    _ => false,
                };
                // Standings that progressed to a store/refusal appear as
                // an interior link of the longer chain; keep terminals.
                let superseded = matches!(
                    index.events()[i].event,
                    TraceEvent::CulpritStanding { .. }
                ) && index.events()[i + 1..].iter().zip(i + 1..).any(|(_, j)| {
                    index.parent(j).is_some() && index.chain(j).contains(&i)
                });
                if relevant && !superseded {
                    chains.push(chain_of(index, i));
                }
            }
        }
        ExplainQuery::Shed(_) => {
            for &i in index.timeline(&entity) {
                if matches!(
                    index.events()[i].event,
                    TraceEvent::LoadShed { .. } | TraceEvent::ReportCompleted { .. }
                ) {
                    chains.push(chain_of(index, i));
                }
            }
        }
    }
    Explanation { query: *query, timeline, chains, ambiguity: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultKind, ShedReason};

    fn t(at: u64, event: TraceEvent) -> Traced {
        Traced { at_micros: at, event }
    }

    /// A well-formed episode fragment: send → fault → retry → expiry →
    /// blame → verdict → escalate → standing → revise → store.
    fn full_story() -> Vec<Traced> {
        vec![
            t(1, TraceEvent::MessageSent { msg: 3, flow: 1 }),
            t(1, TraceEvent::RouteOutcome { msg: 3, received_upto: 1, delivered: false }),
            t(1, TraceEvent::FaultInjected { msg: 3, kind: FaultKind::NetworkDrop }),
            t(5, TraceEvent::RetryFired { msg: 3, attempt: 1 }),
            t(9, TraceEvent::MessageExpired { msg: 3 }),
            t(9, TraceEvent::SnapshotsGathered { links: 2, observations: 10 }),
            t(
                9,
                TraceEvent::BlameComputed {
                    msg: 3,
                    blame_ppb: 900_000_000,
                    accuracy_ppb: 900_000_000,
                    links: vec![LinkObsSummary { link: 7, up: 1, down: 4 }],
                },
            ),
            t(
                9,
                TraceEvent::VerdictAccumulated {
                    judge: 0,
                    accused: 4,
                    guilty: true,
                    window_guilty: 3,
                    window_len: 5,
                },
            ),
            t(9, TraceEvent::Escalated { msg: 3, judge: 0, accused: 4 }),
            t(9, TraceEvent::CulpritStanding { msg: 3, position: 1, culprit: 4 }),
            t(
                9,
                TraceEvent::AccusationRevised {
                    step: 0,
                    accuser_pos: 1,
                    accused_pos: 2,
                    amended: true,
                },
            ),
            t(9, TraceEvent::AccusationStored { culprit: 5, replicas: 3 }),
        ]
    }

    #[test]
    fn ledger_accepts_a_full_story() {
        let mut ledger = CausalLedger::new();
        for ev in full_story() {
            assert!(
                ledger.observe(&ev.event).is_none(),
                "well-formed stream flagged at `{}`",
                ev.event.label()
            );
        }
    }

    #[test]
    fn ledger_catches_expiry_without_send() {
        let mut ledger = CausalLedger::new();
        let orphan = ledger
            .observe(&TraceEvent::MessageExpired { msg: 9 })
            .expect("expiry without a send must orphan");
        assert_eq!(orphan.entity, EntityRef::message(9));
    }

    #[test]
    fn ledger_catches_dropped_blame_to_accusation_link() {
        // The planted mutant: the escalation is gone, so the standing
        // verdict and the stored accusation are unreachable from the
        // blame computation.
        let mut ledger = CausalLedger::new();
        let mut orphans = Vec::new();
        for ev in full_story() {
            if matches!(ev.event, TraceEvent::Escalated { .. }) {
                continue; // the mutant drops the link
            }
            if let Some(o) = ledger.observe(&ev.event) {
                orphans.push(o);
            }
        }
        assert!(
            orphans.iter().any(|o| o.entity == EntityRef::message(3)),
            "dropping the escalation must orphan the standing: {orphans:?}"
        );
    }

    #[test]
    fn ledger_allows_recovered_completions() {
        let mut ledger = CausalLedger::new();
        assert!(ledger
            .observe(&TraceEvent::ReportCompleted { report: 5, batch: 1 })
            .is_some());
        let mut ledger = CausalLedger::new();
        assert!(ledger
            .observe(&TraceEvent::RecoveryReplayed { records: 4, resumed_input: 2 })
            .is_none());
        assert!(ledger
            .observe(&TraceEvent::ReportCompleted { report: 5, batch: 1 })
            .is_none());
    }

    #[test]
    fn index_links_the_full_story_back_to_the_send() {
        let story = full_story();
        let index = CausalIndex::from_events(&story);
        assert!(index.orphan_terminals().is_empty(), "{:?}", index.orphan_terminals());
        // The stored accusation chains all the way back to the send.
        let stored = story.len() - 1;
        let chain = index.chain(stored);
        assert_eq!(chain[0], 0, "chain must root at the send");
        assert!(chain.len() >= 6, "chain {chain:?} too short");
        // Timelines: message 3 owns the message-keyed events.
        assert!(index.timeline(&EntityRef::message(3)).len() >= 7);
        assert_eq!(index.timeline(&EntityRef::host(4)).len(), 3);
        assert_eq!(index.timeline(&EntityRef::accusation(0)).len(), 4);
    }

    #[test]
    fn index_flags_orphan_terminals_in_mutant_streams() {
        let story: Vec<Traced> = full_story()
            .into_iter()
            .filter(|ev| !matches!(ev.event, TraceEvent::Escalated { .. }))
            .collect();
        let index = CausalIndex::from_events(&story);
        let orphans = index.orphan_terminals();
        assert!(
            !orphans.is_empty(),
            "dropping the escalation must orphan the stored accusation"
        );
    }

    #[test]
    fn explain_message_renders_the_causal_chain() {
        let index = CausalIndex::from_events(&full_story());
        let ex = explain(&index, &ExplainQuery::Message(3));
        assert!(ex.found());
        assert_eq!(ex.chains.len(), 1);
        let chain = &ex.chains[0];
        assert_eq!(chain.judge, Some(0));
        assert_eq!(chain.accused, Some(4));
        assert_eq!(chain.evidence.len(), 1);
        let text = ex.render_text();
        assert!(text.contains("explain message:3"), "{text}");
        assert!(text.contains("evidence window"), "{text}");
        let json = ex.render_json();
        assert!(json.starts_with("{\"query\":\"message:3\""), "{json}");
        assert_eq!(json, ex.render_json(), "rendering must be deterministic");
    }

    #[test]
    fn explain_blame_keeps_terminal_chains_only() {
        let index = CausalIndex::from_events(&full_story());
        // Host 5 is the stored culprit (revision moved blame downstream).
        let ex = explain(&index, &ExplainQuery::Blame(5));
        assert_eq!(ex.chains.len(), 1);
        assert!(matches!(
            ex.chains[0].events.last().map(|t| &t.event),
            Some(TraceEvent::AccusationStored { culprit: 5, .. })
        ));
        // Host 4's standing is an interior link of the same chain.
        let ex4 = explain(&index, &ExplainQuery::Blame(4));
        assert!(ex4.found());
        assert!(ex4.chains.is_empty(), "superseded standing must not duplicate the chain");
    }

    #[test]
    fn explain_shed_roots_at_the_offer() {
        let stream = vec![
            t(10, TraceEvent::ReportAdmitted { report: 1, queue_depth: 1 }),
            t(20, TraceEvent::LoadShed { report: 2, reason: ShedReason::MailboxFull }),
            t(30, TraceEvent::ReportCompleted { report: 1, batch: 0 }),
            t(30, TraceEvent::JournalCommitted { seq: 4, next_input: 3 }),
        ];
        let index = CausalIndex::from_events(&stream);
        assert!(index.orphan_terminals().is_empty());
        let shed = explain(&index, &ExplainQuery::Shed(2));
        assert_eq!(shed.chains.len(), 1);
        assert_eq!(shed.chains[0].events.len(), 1, "a shed is root and terminal");
        let served = explain(&index, &ExplainQuery::Shed(1));
        assert_eq!(served.chains.len(), 1);
        assert_eq!(served.chains[0].events.len(), 2, "admit -> complete");
    }

    #[test]
    fn entity_refs_parse_and_render() {
        for s in ["message:3", "report:9", "flow:1", "link:12", "host:4", "accusation:0"] {
            let e = EntityRef::parse(s).expect(s);
            assert_eq!(e.to_string(), s);
        }
        assert_eq!(EntityRef::parse("msg:3"), Some(EntityRef::message(3)));
        assert!(EntityRef::parse("msg").is_none());
        assert!(EntityRef::parse("widget:3").is_none());
        assert_eq!(ExplainQuery::parse_token("blame:7"), Some(ExplainQuery::Blame(7)));
        assert_eq!(
            ExplainQuery::parse("shed", "9"),
            Some(ExplainQuery::Shed(9))
        );
    }
}
