//! The metrics registry: named counters, gauges, and histograms.
//!
//! A [`Registry`] maps dotted `scope.name` keys to [`Metric`]s in a
//! `BTreeMap`, so iteration, snapshots, and JSON output are always in the
//! same (lexicographic) order — the property that lets CI diff metric
//! snapshots byte-for-byte between worker counts. Use [`Registry::scope`]
//! to hand a subsystem a prefixed view.
//!
//! Determinism note: a registry is deterministic exactly when the values
//! pushed into it are. Per-episode protocol counters (messages sent,
//! retries, accusations stored) are virtual-time facts and reproduce
//! bit-identically; process-wide cache statistics (signature-memo hits,
//! BFS-cache hits) depend on thread count and scheduling and must live in
//! clearly separated scopes that digests and equality checks ignore —
//! see DESIGN.md §12.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Json};

/// A sample that [`Histogram::try_add`] refused.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutOfRange {
    /// The rejected sample.
    pub sample: f64,
    /// Inclusive lower bound of the histogram's range.
    pub lo: f64,
    /// Inclusive upper bound of the histogram's range.
    pub hi: f64,
}

impl std::fmt::Display for OutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sample {} outside [{}, {}]", self.sample, self.lo, self.hi)
    }
}

impl std::error::Error for OutOfRange {}

/// A fixed-bin histogram over an arbitrary closed range `[lo, hi]`.
///
/// Generalizes the simulator's unit-interval blame histogram: same
/// bin-assignment rule (`hi` lands in the last bin), any bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, the bounds are not finite, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range [{lo}, {hi}]");
        Histogram { lo, hi, bins: vec![0; bins], count: 0, sum: 0.0 }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[lo, hi]`; use [`Histogram::try_add`] or
    /// [`Histogram::add_clamped`] when out-of-range samples are data.
    pub fn add(&mut self, x: f64) {
        self.try_add(x).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Adds a sample, returning `Err` instead of panicking when `x` is
    /// outside `[lo, hi]` (or NaN). The histogram is unchanged on `Err`.
    pub fn try_add(&mut self, x: f64) -> Result<(), OutOfRange> {
        if !(self.lo..=self.hi).contains(&x) {
            return Err(OutOfRange { sample: x, lo: self.lo, hi: self.hi });
        }
        let span = self.hi - self.lo;
        let idx = (((x - self.lo) / span * self.bins.len() as f64) as usize)
            .min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += x;
        Ok(())
    }

    /// Adds a sample, saturating it to `[lo, hi]` first. NaN saturates to
    /// `lo`. Use when outliers should still be counted, in the edge bins.
    pub fn add_clamped(&mut self, x: f64) {
        let clamped = if x.is_nan() { self.lo } else { x.clamp(self.lo, self.hi) };
        self.try_add(clamped).expect("clamped sample is in range");
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (after clamping, for clamped adds).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The inclusive range `[lo, hi]`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Merges another histogram with the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        assert_eq!((self.lo, self.hi), (other.lo, other.hi), "range mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// One named metric.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count. Merges by addition.
    Counter(u64),
    /// A point-in-time measurement. Merges by maximum (the convention
    /// that makes "high-water mark" gauges meaningful across episodes).
    Gauge(f64),
    /// A distribution. Merges bin-wise.
    Histogram(Histogram),
}

/// An ordered collection of named metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Increments the counter `key` by `by`, creating it at zero first if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `key` already names a non-counter metric.
    pub fn inc(&mut self, key: &str, by: u64) {
        match self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += by,
            other => panic!("metric `{key}` is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `key` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `key` already names a non-gauge metric.
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        match self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Gauge(value))
        {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric `{key}` is not a gauge: {other:?}"),
        }
    }

    /// Raises the gauge `key` to `value` if `value` is higher (a
    /// high-water mark).
    pub fn max_gauge(&mut self, key: &str, value: f64) {
        match self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Gauge(value))
        {
            Metric::Gauge(v) => *v = v.max(value),
            other => panic!("metric `{key}` is not a gauge: {other:?}"),
        }
    }

    /// Observes `x` in the histogram `key`, clamping out-of-range samples
    /// into the edge bins. The histogram is created with `[lo, hi]` ×
    /// `bins` on first use; later calls reuse the registered shape.
    ///
    /// # Panics
    ///
    /// Panics if `key` already names a non-histogram metric.
    pub fn observe(&mut self, key: &str, x: f64, lo: f64, hi: f64, bins: usize) {
        match self
            .metrics
            .entry(key.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(lo, hi, bins)))
        {
            Metric::Histogram(h) => h.add_clamped(x),
            other => panic!("metric `{key}` is not a histogram: {other:?}"),
        }
    }

    /// The counter value at `key`, or 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        match self.metrics.get(key) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge value at `key`, if present.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.metrics.get(key) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram at `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        match self.metrics.get(key) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All keys, in deterministic (lexicographic) order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(String::as_str)
    }

    /// All metrics, in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// A prefixed view: every operation through the scope prepends
    /// `prefix` and a dot to the key.
    pub fn scope<'a>(&'a mut self, prefix: &'a str) -> Scope<'a> {
        Scope { registry: self, prefix }
    }

    /// Merges `other` into this registry: counters add, gauges keep the
    /// maximum, histograms merge bin-wise. Keys only in `other` are
    /// copied over.
    ///
    /// # Panics
    ///
    /// Panics if a shared key has different metric types or histogram
    /// shapes on the two sides.
    pub fn merge(&mut self, other: &Registry) {
        for (key, metric) in &other.metrics {
            match (self.metrics.get_mut(key), metric) {
                (None, m) => {
                    self.metrics.insert(key.clone(), m.clone());
                }
                (Some(Metric::Counter(a)), Metric::Counter(b)) => *a += b,
                (Some(Metric::Gauge(a)), Metric::Gauge(b)) => *a = a.max(*b),
                (Some(Metric::Histogram(a)), Metric::Histogram(b)) => a.merge(b),
                (Some(a), b) => panic!("metric `{key}` type mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    /// Serializes the registry as pretty-printed JSON with keys in
    /// deterministic order. Floats use Rust's shortest round-trip
    /// formatting, so [`Registry::from_json`] reproduces the registry
    /// exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, metric)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(out, "  {}: ", json::escape(key));
            match metric {
                Metric::Counter(v) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
                }
                Metric::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{v:?}}}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"lo\":{:?},\"hi\":{:?},\"count\":{},\
                         \"sum\":{:?},\"bins\":[",
                        h.lo, h.hi, h.count, h.sum
                    );
                    for (j, b) in h.bins.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Reconstructs a registry from [`Registry::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed entry.
    pub fn from_json(text: &str) -> Result<Registry, String> {
        let value = json::parse(text).map_err(|e| e.to_string())?;
        let obj = value.as_obj().ok_or("top level must be an object")?;
        let mut registry = Registry::new();
        for (key, entry) in obj {
            let kind = entry
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metric `{key}` missing type"))?;
            let metric = match kind {
                "counter" => {
                    let v = entry
                        .get("value")
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("counter `{key}` missing value"))?;
                    Metric::Counter(v as u64)
                }
                "gauge" => {
                    let v = entry
                        .get("value")
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("gauge `{key}` missing value"))?;
                    Metric::Gauge(v)
                }
                "histogram" => {
                    let num = |field: &str| {
                        entry
                            .get(field)
                            .and_then(Json::as_num)
                            .ok_or_else(|| format!("histogram `{key}` missing {field}"))
                    };
                    let bins: Vec<u64> = entry
                        .get("bins")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("histogram `{key}` missing bins"))?
                        .iter()
                        .map(|b| b.as_num().map(|n| n as u64))
                        .collect::<Option<_>>()
                        .ok_or_else(|| format!("histogram `{key}` has non-numeric bins"))?;
                    if bins.is_empty() {
                        return Err(format!("histogram `{key}` has no bins"));
                    }
                    let mut h = Histogram::new(num("lo")?, num("hi")?, bins.len());
                    h.bins = bins;
                    h.count = num("count")? as u64;
                    h.sum = num("sum")?;
                    Metric::Histogram(h)
                }
                other => return Err(format!("metric `{key}` has unknown type `{other}`")),
            };
            registry.metrics.insert(key.clone(), metric);
        }
        Ok(registry)
    }
}

/// A prefixed view of a [`Registry`]; see [`Registry::scope`].
pub struct Scope<'a> {
    registry: &'a mut Registry,
    prefix: &'a str,
}

impl Scope<'_> {
    fn key(&self, name: &str) -> String {
        format!("{}.{}", self.prefix, name)
    }

    /// [`Registry::inc`] under this scope's prefix.
    pub fn inc(&mut self, name: &str, by: u64) {
        let key = self.key(name);
        self.registry.inc(&key, by);
    }

    /// [`Registry::set_gauge`] under this scope's prefix.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        let key = self.key(name);
        self.registry.set_gauge(&key, value);
    }

    /// [`Registry::max_gauge`] under this scope's prefix.
    pub fn max_gauge(&mut self, name: &str, value: f64) {
        let key = self.key(name);
        self.registry.max_gauge(&key, value);
    }

    /// [`Registry::observe`] under this scope's prefix.
    pub fn observe(&mut self, name: &str, x: f64, lo: f64, hi: f64, bins: usize) {
        let key = self.key(name);
        self.registry.observe(&key, x, lo, hi, bins);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_add_try_add_clamped() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.0);
        h.add(10.0);
        assert_eq!(h.bins(), &[1, 0, 0, 0, 1]);
        assert_eq!(h.try_add(10.5), Err(OutOfRange { sample: 10.5, lo: 0.0, hi: 10.0 }));
        assert_eq!(h.count(), 2, "failed try_add must not mutate");
        h.add_clamped(123.0);
        h.add_clamped(-5.0);
        h.add_clamped(f64::NAN);
        assert_eq!(h.bins(), &[3, 0, 0, 0, 2]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn histogram_add_panics_out_of_range() {
        Histogram::new(0.0, 1.0, 2).add(1.5);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = Registry::new();
        r.inc("a.count", 2);
        r.inc("a.count", 3);
        r.set_gauge("b.depth", 4.0);
        r.max_gauge("b.depth", 2.0);
        r.max_gauge("b.depth", 9.0);
        r.observe("c.dist", 0.5, 0.0, 1.0, 4);
        assert_eq!(r.counter("a.count"), 5);
        assert_eq!(r.gauge("b.depth"), Some(9.0));
        assert_eq!(r.histogram("c.dist").unwrap().count(), 1);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn scope_prefixes_keys() {
        let mut r = Registry::new();
        let mut s = r.scope("episode");
        s.inc("sent", 7);
        s.max_gauge("queue_high_water", 3.0);
        assert_eq!(r.counter("episode.sent"), 7);
        assert_eq!(r.gauge("episode.queue_high_water"), Some(3.0));
    }

    #[test]
    fn keys_iterate_in_lexicographic_order() {
        let mut r = Registry::new();
        for key in ["z.last", "a.first", "m.middle"] {
            r.inc(key, 1);
        }
        let keys: Vec<&str> = r.keys().collect();
        assert_eq!(keys, vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_merges_histograms() {
        let mut a = Registry::new();
        a.inc("n", 1);
        a.set_gauge("g", 5.0);
        a.observe("h", 0.25, 0.0, 1.0, 2);
        let mut b = Registry::new();
        b.inc("n", 2);
        b.inc("only_b", 9);
        b.set_gauge("g", 3.0);
        b.observe("h", 0.75, 0.0, 1.0, 2);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.counter("only_b"), 9);
        assert_eq!(a.gauge("g"), Some(5.0));
        assert_eq!(a.histogram("h").unwrap().bins(), &[1, 1]);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut r = Registry::new();
        r.inc("episode.sent", 42);
        r.set_gauge("queue.high_water", 17.5);
        r.observe("blame.dist", 0.3, 0.0, 1.0, 8);
        r.observe("blame.dist", 0.9, 0.0, 1.0, 8);
        let json = r.to_json();
        let back = Registry::from_json(&json).expect("own output must parse");
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json, "serialization must be canonical");
    }
}
