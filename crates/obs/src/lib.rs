//! Deterministic observability for the Concilium reproduction.
//!
//! Three instruments, with sharply different relationships to the
//! determinism contract (DESIGN.md §12):
//!
//! - **Structured tracing** ([`Trace`], [`TraceEvent`]): typed protocol
//!   events timestamped in *virtual* time. Traces are bit-identical
//!   across worker counts; their canonical u64 encodings
//!   ([`TraceEvent::hash_fields`]) are what the simulator's chained
//!   trace hash consumes, so the trace *is* the digest's input, not a
//!   side channel.
//! - **Metrics** ([`Registry`]): named counters/gauges/histograms with
//!   deterministic (sorted) ordering. Deterministic exactly when their
//!   inputs are — per-episode protocol counters reproduce exactly;
//!   process-wide cache statistics do not and must stay out of digests.
//! - **Profiling** ([`span`]): wall-clock phase timers, explicitly
//!   *outside* the contract, never hashed, off unless enabled.
//!
//! Layered on top of the trace stream, the [`causal`] module recovers
//! *why* from the *what*: correlation keys, per-entity timelines,
//! cause→effect links, and the `explain message/blame/shed` query engine
//! — all pure functions of the event sequence, so explanations are as
//! deterministic as the traces they index.
//!
//! The crate is std-only by design: everything else in the workspace
//! links against it, including hot-path crates, so it must be free of
//! dependency cycles and build cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod coverage;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use causal::{
    entities, explain, AmbiguityNote, CausalIndex, CausalLedger, CausalOrphan, EntityKind,
    EntityRef, ExplainChain, ExplainQuery, Explanation,
};
pub use coverage::CoverageSet;
pub use event::{
    event_from_json, ppb, ppb_from_f64, traced_from_json_line, FaultKind, LinkObsSummary,
    ShedReason, TraceEvent, Traced,
};
pub use metrics::{Histogram, Metric, OutOfRange, Registry, Scope};
pub use profile::{
    profile_report_json, profile_snapshot, profiling_enabled, reset_profile, set_profiling, span,
    PhaseTotals, SpanGuard,
};
pub use trace::{Trace, DEFAULT_TRACE_CAPACITY};
