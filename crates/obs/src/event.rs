//! Typed trace events.
//!
//! Every observable step of the diagnosis pipeline — probe/message sends
//! and losses, snapshot exchanges, Eq. 2–3 blame computations with their
//! inputs, verdict accumulation, accusation storage and revision, retry
//! firings, and injected faults — is one variant of [`TraceEvent`]. Events
//! are timestamped in *virtual* time ([`Traced::at_micros`]), never wall
//! clock, so a recorded trace is bit-identical across worker counts and
//! machines.
//!
//! Each event defines three renderings that must stay in sync:
//!
//! * [`TraceEvent::label`] + [`TraceEvent::hash_fields`] — the canonical
//!   `(label, u64 fields)` encoding fed to the chained trace hasher. This
//!   is what makes the trace part of the replay-determinism contract.
//! * [`Traced::to_json`] — one flat-ish JSON object per event, the JSONL
//!   export format behind `--trace-out`.
//! * [`Traced::render`] — the human-readable line used by the
//!   `concilium-obs` pretty-printer and by failing-case reproducers.

use std::fmt::Write as _;

use crate::json::Json;

/// Why a message never progressed past its first overlay hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The injected fault plan dropped it on the first hop.
    TransportDrop,
    /// A Byzantine host on the route silently discarded it.
    HostDrop,
    /// An ambient (world-model) link failure dropped it.
    NetworkDrop,
}

impl FaultKind {
    /// Stable numeric encoding used in the trace hash.
    pub fn code(self) -> u64 {
        match self {
            FaultKind::TransportDrop => 0,
            FaultKind::HostDrop => 1,
            FaultKind::NetworkDrop => 2,
        }
    }

    /// Stable short name used in JSON and pretty output.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransportDrop => "transport-drop",
            FaultKind::HostDrop => "host-drop",
            FaultKind::NetworkDrop => "network-drop",
        }
    }
}

/// Why the serving daemon refused to admit a failure report. Shedding is
/// never silent: every refusal is a typed trace event plus a metrics
/// counter, so admitted = completed + shed + in-flight stays auditable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded ingest mailbox was at capacity.
    MailboxFull,
    /// Admission control predicted the report would miss its deadline
    /// behind the current backlog.
    DeadlineExceeded,
    /// The daemon is in degraded read-only mode (restart budget spent).
    Degraded,
}

impl ShedReason {
    /// Stable numeric encoding used in the trace hash.
    pub fn code(self) -> u64 {
        match self {
            ShedReason::MailboxFull => 0,
            ShedReason::DeadlineExceeded => 1,
            ShedReason::Degraded => 2,
        }
    }

    /// Stable short name used in JSON, pretty output, and metric names.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::MailboxFull => "mailbox-full",
            ShedReason::DeadlineExceeded => "deadline",
            ShedReason::Degraded => "degraded",
        }
    }
}

/// Per-link observation tallies: one link of the Eq. 2 evidence behind a
/// blame computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkObsSummary {
    /// The observed IP link.
    pub link: u64,
    /// Observations reporting the link up.
    pub up: u64,
    /// Observations reporting the link down.
    pub down: u64,
}

/// Fixed-point encoding used for probabilities in the trace hash: parts
/// per billion, enough to round-trip an `f64` probability bit-stably for
/// comparison purposes without hashing raw float bits.
pub fn ppb(x: f64) -> u64 {
    (x.clamp(0.0, 1.0) * 1e9) as u64
}

/// Parse-side inverse of the `{:.9}` probability printing in
/// [`Traced::to_json`]. Must *round*, not truncate like [`ppb`]: the
/// printed decimal is exact to nine places but its nearest `f64` can sit
/// just below the true value, and truncation would then re-encode
/// `0.123456789` as `123456788` — a silent one-ppb drift on every JSON
/// round trip.
pub fn ppb_from_f64(x: f64) -> u64 {
    (x.clamp(0.0, 1.0) * 1e9).round() as u64
}

/// One structured event of the diagnosis pipeline.
///
/// Host/message identifiers are plain `u64` indices: this crate is
/// dependency-free, and the simulator's dense indices are already the
/// lingua franca of its trace hashes.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// An application message (the protocol's probe of the overlay route)
    /// entered the network.
    MessageSent {
        /// Message index within the episode.
        msg: u64,
        /// Flow the message belongs to.
        flow: u64,
    },
    /// A send was skipped because a route host was crashed.
    ChurnBlocked {
        /// Message index.
        msg: u64,
    },
    /// Where the message actually got to (probe lost vs delivered).
    RouteOutcome {
        /// Message index.
        msg: u64,
        /// Highest route position that received the message.
        received_upto: u64,
        /// Whether it truly reached the destination.
        delivered: bool,
    },
    /// A fault was injected into this message's delivery.
    FaultInjected {
        /// Message index.
        msg: u64,
        /// What kind of fault.
        kind: FaultKind,
    },
    /// A verified acknowledgment settled a message.
    AckReceived {
        /// Message index.
        msg: u64,
    },
    /// A retransmission attempt fired.
    RetryFired {
        /// Message index.
        msg: u64,
        /// One-based attempt number.
        attempt: u64,
    },
    /// Every retry attempt expired unacknowledged.
    MessageExpired {
        /// Message index.
        msg: u64,
    },
    /// Remote snapshots were exchanged while gathering evidence.
    SnapshotsGathered {
        /// Path links covered.
        links: u64,
        /// Total admissible observations pooled across them.
        observations: u64,
    },
    /// A judge ran the Eq. 2–3 combinator, with its inputs.
    BlameComputed {
        /// Message index that triggered the judgment.
        msg: u64,
        /// Resulting blame, parts per billion.
        blame_ppb: u64,
        /// The probe accuracy fed to Eq. 2, parts per billion.
        accuracy_ppb: u64,
        /// Per-link up/down tallies (the Eq. 2 inputs).
        links: Vec<LinkObsSummary>,
    },
    /// A verdict entered an (accuser, accused) m-of-w window.
    VerdictAccumulated {
        /// Judging host.
        judge: u64,
        /// Accused host.
        accused: u64,
        /// Whether this verdict was guilty.
        guilty: bool,
        /// Guilty verdicts in the window after the push.
        window_guilty: u64,
        /// Window occupancy after the push.
        window_len: u64,
    },
    /// A window crossed its quota: formal accusation begins.
    Escalated {
        /// Triggering message index.
        msg: u64,
        /// Accusing host.
        judge: u64,
        /// Accused host.
        accused: u64,
    },
    /// The accusation dissolved (ack proof or network exoneration).
    Dissolved {
        /// Triggering message index.
        msg: u64,
    },
    /// The §3.5 revision chain left blame standing on a host.
    CulpritStanding {
        /// Triggering message index.
        msg: u64,
        /// Route position of the culprit.
        position: u64,
        /// The culprit host.
        culprit: u64,
    },
    /// One revision handoff of the accusation chain.
    AccusationRevised {
        /// Zero-based revision step.
        step: u64,
        /// Route position of the reviser.
        accuser_pos: u64,
        /// Route position of the newly accused.
        accused_pos: u64,
        /// Whether the handoff survived the transport (amended) or was
        /// withheld, leaving the chain standing short.
        amended: bool,
    },
    /// A terminal accusation reached the DHT at write quorum.
    AccusationStored {
        /// The culprit host.
        culprit: u64,
        /// Replicas that acknowledged the write.
        replicas: u64,
    },
    /// The DHT write-quorum reported a typed refusal.
    DhtRefused {
        /// The culprit host the write was for.
        culprit: u64,
    },
    /// The serving daemon admitted a failure report into its mailbox.
    ReportAdmitted {
        /// Report identifier.
        report: u64,
        /// Mailbox depth after admission.
        queue_depth: u64,
    },
    /// The serving daemon shed a failure report instead of admitting it.
    LoadShed {
        /// Report identifier.
        report: u64,
        /// The typed reason for the refusal.
        reason: ShedReason,
    },
    /// A batched blame evaluation finished for one admitted report.
    ReportCompleted {
        /// Report identifier.
        report: u64,
        /// Evidence-window batch the report was evaluated in.
        batch: u64,
    },
    /// The daemon's write-ahead journal committed an input boundary.
    JournalCommitted {
        /// Sequence number of the commit record.
        seq: u64,
        /// Next workload input index after the commit.
        next_input: u64,
    },
    /// The supervisor caught a daemon crash and restarted from the journal.
    SupervisorRestarted {
        /// One-based incident number.
        incident: u64,
        /// Restarts left in the budget after this one.
        budget_left: u64,
    },
    /// The restart budget is spent: the daemon is read-only from here on.
    DegradedEntered {
        /// Total crash incidents absorbed before escalation.
        incidents: u64,
    },
    /// Journal recovery replayed committed records into fresh state.
    RecoveryReplayed {
        /// Mutation records replayed.
        records: u64,
        /// Workload input index processing resumed at.
        resumed_input: u64,
    },
    /// A retransmit-queue poll tick.
    Tick,
}

impl TraceEvent {
    /// The event's stable label, the first component of its hash encoding.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::MessageSent { .. } => "send",
            TraceEvent::ChurnBlocked { .. } => "churn-blocked",
            TraceEvent::RouteOutcome { .. } => "outcome",
            TraceEvent::FaultInjected { .. } => "fault",
            TraceEvent::AckReceived { .. } => "ack",
            TraceEvent::RetryFired { .. } => "retx",
            TraceEvent::MessageExpired { .. } => "expire",
            TraceEvent::SnapshotsGathered { .. } => "snapshots",
            TraceEvent::BlameComputed { .. } => "judge",
            TraceEvent::VerdictAccumulated { .. } => "verdict",
            TraceEvent::Escalated { .. } => "escalate",
            TraceEvent::Dissolved { .. } => "dissolve",
            TraceEvent::CulpritStanding { .. } => "standing",
            TraceEvent::AccusationRevised { .. } => "revise",
            TraceEvent::AccusationStored { .. } => "stored",
            TraceEvent::DhtRefused { .. } => "dht-refused",
            TraceEvent::ReportAdmitted { .. } => "admit",
            TraceEvent::LoadShed { .. } => "shed",
            TraceEvent::ReportCompleted { .. } => "complete",
            TraceEvent::JournalCommitted { .. } => "journal-commit",
            TraceEvent::SupervisorRestarted { .. } => "restart",
            TraceEvent::DegradedEntered { .. } => "degraded",
            TraceEvent::RecoveryReplayed { .. } => "recovered",
            TraceEvent::Tick => "tick",
        }
    }

    /// A stable dense numeric code for the event's kind — the alphabet the
    /// coverage extractor builds its bigrams over. Codes are append-only:
    /// new variants take the next free code so existing coverage corpora
    /// keep their meaning.
    pub fn kind_code(&self) -> u64 {
        match self {
            TraceEvent::MessageSent { .. } => 0,
            TraceEvent::ChurnBlocked { .. } => 1,
            TraceEvent::RouteOutcome { .. } => 2,
            TraceEvent::FaultInjected { .. } => 3,
            TraceEvent::AckReceived { .. } => 4,
            TraceEvent::RetryFired { .. } => 5,
            TraceEvent::MessageExpired { .. } => 6,
            TraceEvent::SnapshotsGathered { .. } => 7,
            TraceEvent::BlameComputed { .. } => 8,
            TraceEvent::VerdictAccumulated { .. } => 9,
            TraceEvent::Escalated { .. } => 10,
            TraceEvent::Dissolved { .. } => 11,
            TraceEvent::CulpritStanding { .. } => 12,
            TraceEvent::AccusationRevised { .. } => 13,
            TraceEvent::AccusationStored { .. } => 14,
            TraceEvent::DhtRefused { .. } => 15,
            TraceEvent::ReportAdmitted { .. } => 16,
            TraceEvent::LoadShed { .. } => 17,
            TraceEvent::ReportCompleted { .. } => 18,
            TraceEvent::JournalCommitted { .. } => 19,
            TraceEvent::SupervisorRestarted { .. } => 20,
            TraceEvent::DegradedEntered { .. } => 21,
            TraceEvent::RecoveryReplayed { .. } => 22,
            TraceEvent::Tick => 23,
        }
    }

    /// Appends the event's numeric fields, in canonical order, to `out`.
    ///
    /// Together with [`TraceEvent::label`] and the virtual timestamp this
    /// is the exact encoding the chained trace hasher absorbs, so any
    /// change here changes every trace digest.
    pub fn hash_fields(&self, out: &mut Vec<u64>) {
        match self {
            TraceEvent::MessageSent { msg, flow } => out.extend([*msg, *flow]),
            TraceEvent::ChurnBlocked { msg } => out.push(*msg),
            TraceEvent::RouteOutcome { msg, received_upto, delivered } => {
                out.extend([*msg, *received_upto, u64::from(*delivered)])
            }
            TraceEvent::FaultInjected { msg, kind } => out.extend([*msg, kind.code()]),
            TraceEvent::AckReceived { msg } => out.push(*msg),
            TraceEvent::RetryFired { msg, attempt } => out.extend([*msg, *attempt]),
            TraceEvent::MessageExpired { msg } => out.push(*msg),
            TraceEvent::SnapshotsGathered { links, observations } => {
                out.extend([*links, *observations])
            }
            TraceEvent::BlameComputed { msg, blame_ppb, accuracy_ppb, links } => {
                out.extend([*msg, *blame_ppb, *accuracy_ppb, links.len() as u64]);
                for l in links {
                    out.extend([l.link, l.up, l.down]);
                }
            }
            TraceEvent::VerdictAccumulated { judge, accused, guilty, window_guilty, window_len } => {
                out.extend([*judge, *accused, u64::from(*guilty), *window_guilty, *window_len])
            }
            TraceEvent::Escalated { msg, judge, accused } => {
                out.extend([*msg, *judge, *accused])
            }
            TraceEvent::Dissolved { msg } => out.push(*msg),
            TraceEvent::CulpritStanding { msg, position, culprit } => {
                out.extend([*msg, *position, *culprit])
            }
            TraceEvent::AccusationRevised { step, accuser_pos, accused_pos, amended } => {
                out.extend([*step, *accuser_pos, *accused_pos, u64::from(*amended)])
            }
            TraceEvent::AccusationStored { culprit, replicas } => {
                out.extend([*culprit, *replicas])
            }
            TraceEvent::DhtRefused { culprit } => out.push(*culprit),
            TraceEvent::ReportAdmitted { report, queue_depth } => {
                out.extend([*report, *queue_depth])
            }
            TraceEvent::LoadShed { report, reason } => out.extend([*report, reason.code()]),
            TraceEvent::ReportCompleted { report, batch } => out.extend([*report, *batch]),
            TraceEvent::JournalCommitted { seq, next_input } => out.extend([*seq, *next_input]),
            TraceEvent::SupervisorRestarted { incident, budget_left } => {
                out.extend([*incident, *budget_left])
            }
            TraceEvent::DegradedEntered { incidents } => out.push(*incidents),
            TraceEvent::RecoveryReplayed { records, resumed_input } => {
                out.extend([*records, *resumed_input])
            }
            TraceEvent::Tick => {}
        }
    }
}

/// A [`TraceEvent`] with its virtual timestamp.
#[derive(Clone, Debug, PartialEq)]
pub struct Traced {
    /// Virtual time of the event, in microseconds since episode start.
    pub at_micros: u64,
    /// The event itself.
    pub event: TraceEvent,
}

fn fmt_vtime(micros: u64) -> String {
    format!("{}.{:06}s", micros / 1_000_000, micros % 1_000_000)
}

impl Traced {
    /// Renders the event as one JSON object (no trailing newline).
    ///
    /// Field order is fixed, so two identical traces serialize to
    /// byte-identical JSONL — the property the CI `--trace-out` equality
    /// check relies on.
    pub fn to_json(&self, extra: &[(&str, &str)]) -> String {
        let mut s = String::with_capacity(96);
        s.push('{');
        for (k, v) in extra {
            let _ = write!(s, "{:?}:{:?},", k, v);
        }
        let _ = write!(s, "\"t_us\":{},\"kind\":{:?}", self.at_micros, self.event.label());
        match &self.event {
            TraceEvent::MessageSent { msg, flow } => {
                let _ = write!(s, ",\"msg\":{msg},\"flow\":{flow}");
            }
            TraceEvent::ChurnBlocked { msg }
            | TraceEvent::AckReceived { msg }
            | TraceEvent::MessageExpired { msg }
            | TraceEvent::Dissolved { msg } => {
                let _ = write!(s, ",\"msg\":{msg}");
            }
            TraceEvent::RouteOutcome { msg, received_upto, delivered } => {
                let _ = write!(
                    s,
                    ",\"msg\":{msg},\"received_upto\":{received_upto},\"delivered\":{delivered}"
                );
            }
            TraceEvent::FaultInjected { msg, kind } => {
                let _ = write!(s, ",\"msg\":{msg},\"fault\":{:?}", kind.name());
            }
            TraceEvent::RetryFired { msg, attempt } => {
                let _ = write!(s, ",\"msg\":{msg},\"attempt\":{attempt}");
            }
            TraceEvent::SnapshotsGathered { links, observations } => {
                let _ = write!(s, ",\"links\":{links},\"observations\":{observations}");
            }
            TraceEvent::BlameComputed { msg, blame_ppb, accuracy_ppb, links } => {
                let _ = write!(
                    s,
                    ",\"msg\":{msg},\"blame\":{:.9},\"accuracy\":{:.9},\"links\":[",
                    *blame_ppb as f64 / 1e9,
                    *accuracy_ppb as f64 / 1e9
                );
                for (i, l) in links.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"link\":{},\"up\":{},\"down\":{}}}",
                        l.link, l.up, l.down
                    );
                }
                s.push(']');
            }
            TraceEvent::VerdictAccumulated { judge, accused, guilty, window_guilty, window_len } => {
                let _ = write!(
                    s,
                    ",\"judge\":{judge},\"accused\":{accused},\"guilty\":{guilty},\
                     \"window_guilty\":{window_guilty},\"window_len\":{window_len}"
                );
            }
            TraceEvent::Escalated { msg, judge, accused } => {
                let _ = write!(s, ",\"msg\":{msg},\"judge\":{judge},\"accused\":{accused}");
            }
            TraceEvent::CulpritStanding { msg, position, culprit } => {
                let _ = write!(s, ",\"msg\":{msg},\"position\":{position},\"culprit\":{culprit}");
            }
            TraceEvent::AccusationRevised { step, accuser_pos, accused_pos, amended } => {
                let _ = write!(
                    s,
                    ",\"step\":{step},\"accuser_pos\":{accuser_pos},\
                     \"accused_pos\":{accused_pos},\"amended\":{amended}"
                );
            }
            TraceEvent::AccusationStored { culprit, replicas } => {
                let _ = write!(s, ",\"culprit\":{culprit},\"replicas\":{replicas}");
            }
            TraceEvent::DhtRefused { culprit } => {
                let _ = write!(s, ",\"culprit\":{culprit}");
            }
            TraceEvent::ReportAdmitted { report, queue_depth } => {
                let _ = write!(s, ",\"report\":{report},\"queue_depth\":{queue_depth}");
            }
            TraceEvent::LoadShed { report, reason } => {
                let _ = write!(s, ",\"report\":{report},\"reason\":{:?}", reason.name());
            }
            TraceEvent::ReportCompleted { report, batch } => {
                let _ = write!(s, ",\"report\":{report},\"batch\":{batch}");
            }
            TraceEvent::JournalCommitted { seq, next_input } => {
                let _ = write!(s, ",\"seq\":{seq},\"next_input\":{next_input}");
            }
            TraceEvent::SupervisorRestarted { incident, budget_left } => {
                let _ = write!(s, ",\"incident\":{incident},\"budget_left\":{budget_left}");
            }
            TraceEvent::DegradedEntered { incidents } => {
                let _ = write!(s, ",\"incidents\":{incidents}");
            }
            TraceEvent::RecoveryReplayed { records, resumed_input } => {
                let _ = write!(s, ",\"records\":{records},\"resumed_input\":{resumed_input}");
            }
            TraceEvent::Tick => {}
        }
        s.push('}');
        s
    }

    /// Renders the event as one human-readable line (no trailing newline).
    pub fn render(&self) -> String {
        let t = fmt_vtime(self.at_micros);
        match &self.event {
            TraceEvent::MessageSent { msg, flow } => {
                format!("[{t}] send        msg={msg} flow={flow}")
            }
            TraceEvent::ChurnBlocked { msg } => {
                format!("[{t}] churn-block msg={msg} (route host crashed, send skipped)")
            }
            TraceEvent::RouteOutcome { msg, received_upto, delivered } => format!(
                "[{t}] outcome     msg={msg} received_upto={received_upto} delivered={delivered}"
            ),
            TraceEvent::FaultInjected { msg, kind } => {
                format!("[{t}] fault       msg={msg} kind={}", kind.name())
            }
            TraceEvent::AckReceived { msg } => format!("[{t}] ack         msg={msg} settled"),
            TraceEvent::RetryFired { msg, attempt } => {
                format!("[{t}] retry       msg={msg} attempt={attempt}")
            }
            TraceEvent::MessageExpired { msg } => {
                format!("[{t}] expire      msg={msg} (all attempts unacknowledged)")
            }
            TraceEvent::SnapshotsGathered { links, observations } => format!(
                "[{t}] snapshots   {observations} observations over {links} path links"
            ),
            TraceEvent::BlameComputed { msg, blame_ppb, accuracy_ppb, links } => {
                let mut line = format!(
                    "[{t}] blame       msg={msg} blame={:.4} accuracy={:.2} evidence=[",
                    *blame_ppb as f64 / 1e9,
                    *accuracy_ppb as f64 / 1e9
                );
                for (i, l) in links.iter().enumerate() {
                    if i > 0 {
                        line.push_str(", ");
                    }
                    let _ = write!(line, "link {}: {}↑/{}↓", l.link, l.up, l.down);
                }
                line.push(']');
                line
            }
            TraceEvent::VerdictAccumulated { judge, accused, guilty, window_guilty, window_len } => {
                format!(
                    "[{t}] verdict     {judge}→{accused} {} (window {window_guilty}/{window_len})",
                    if *guilty { "GUILTY" } else { "innocent" }
                )
            }
            TraceEvent::Escalated { msg, judge, accused } => format!(
                "[{t}] escalate    msg={msg} {judge} formally accuses {accused}"
            ),
            TraceEvent::Dissolved { msg } => {
                format!("[{t}] dissolve    msg={msg} (ack proof or network exoneration)")
            }
            TraceEvent::CulpritStanding { msg, position, culprit } => format!(
                "[{t}] standing    msg={msg} culprit=host {culprit} at route position {position}"
            ),
            TraceEvent::AccusationRevised { step, accuser_pos, accused_pos, amended } => format!(
                "[{t}] revise      step={step} position {accuser_pos} → {accused_pos} {}",
                if *amended { "amended" } else { "WITHHELD (chain stands short)" }
            ),
            TraceEvent::AccusationStored { culprit, replicas } => format!(
                "[{t}] stored      accusation against host {culprit} on {replicas} replicas"
            ),
            TraceEvent::DhtRefused { culprit } => format!(
                "[{t}] dht-refused quorum refusal storing accusation against host {culprit}"
            ),
            TraceEvent::ReportAdmitted { report, queue_depth } => format!(
                "[{t}] admit       report={report} queue_depth={queue_depth}"
            ),
            TraceEvent::LoadShed { report, reason } => {
                format!("[{t}] shed        report={report} reason={}", reason.name())
            }
            TraceEvent::ReportCompleted { report, batch } => {
                format!("[{t}] complete    report={report} batch={batch}")
            }
            TraceEvent::JournalCommitted { seq, next_input } => format!(
                "[{t}] commit      seq={seq} next_input={next_input}"
            ),
            TraceEvent::SupervisorRestarted { incident, budget_left } => format!(
                "[{t}] restart     incident={incident} budget_left={budget_left}"
            ),
            TraceEvent::DegradedEntered { incidents } => format!(
                "[{t}] degraded    read-only after {incidents} incident(s)"
            ),
            TraceEvent::RecoveryReplayed { records, resumed_input } => format!(
                "[{t}] recovered   {records} record(s) replayed, resuming at input {resumed_input}"
            ),
            TraceEvent::Tick => format!("[{t}] tick"),
        }
    }
}

fn field_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_num).map(|n| n as u64)
}

fn field_bool(v: &Json, key: &str) -> Option<bool> {
    match v.get(key) {
        Some(Json::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Rebuilds the typed event from one parsed `--trace-out` JSONL object,
/// the inverse of [`Traced::to_json`]. Shared by the `concilium-obs`
/// filter and the `concilium-explain` causal query tool. `None` for
/// unknown kinds or missing fields — callers fall back to the raw line.
pub fn event_from_json(kind: &str, v: &Json) -> Option<TraceEvent> {
    let msg = || field_u64(v, "msg");
    Some(match kind {
        "send" => TraceEvent::MessageSent { msg: msg()?, flow: field_u64(v, "flow")? },
        "churn-blocked" => TraceEvent::ChurnBlocked { msg: msg()? },
        "outcome" => TraceEvent::RouteOutcome {
            msg: msg()?,
            received_upto: field_u64(v, "received_upto")?,
            delivered: field_bool(v, "delivered")?,
        },
        "fault" => TraceEvent::FaultInjected {
            msg: msg()?,
            kind: match v.get("fault").and_then(Json::as_str)? {
                "transport-drop" => FaultKind::TransportDrop,
                "host-drop" => FaultKind::HostDrop,
                "network-drop" => FaultKind::NetworkDrop,
                _ => return None,
            },
        },
        "ack" => TraceEvent::AckReceived { msg: msg()? },
        "retx" => TraceEvent::RetryFired { msg: msg()?, attempt: field_u64(v, "attempt")? },
        "expire" => TraceEvent::MessageExpired { msg: msg()? },
        "snapshots" => TraceEvent::SnapshotsGathered {
            links: field_u64(v, "links")?,
            observations: field_u64(v, "observations")?,
        },
        "judge" => TraceEvent::BlameComputed {
            msg: msg()?,
            blame_ppb: ppb_from_f64(v.get("blame").and_then(Json::as_num)?),
            accuracy_ppb: ppb_from_f64(v.get("accuracy").and_then(Json::as_num)?),
            links: v
                .get("links")
                .and_then(Json::as_arr)?
                .iter()
                .map(|l| {
                    Some(LinkObsSummary {
                        link: field_u64(l, "link")?,
                        up: field_u64(l, "up")?,
                        down: field_u64(l, "down")?,
                    })
                })
                .collect::<Option<_>>()?,
        },
        "verdict" => TraceEvent::VerdictAccumulated {
            judge: field_u64(v, "judge")?,
            accused: field_u64(v, "accused")?,
            guilty: field_bool(v, "guilty")?,
            window_guilty: field_u64(v, "window_guilty")?,
            window_len: field_u64(v, "window_len")?,
        },
        "escalate" => TraceEvent::Escalated {
            msg: msg()?,
            judge: field_u64(v, "judge")?,
            accused: field_u64(v, "accused")?,
        },
        "dissolve" => TraceEvent::Dissolved { msg: msg()? },
        "standing" => TraceEvent::CulpritStanding {
            msg: msg()?,
            position: field_u64(v, "position")?,
            culprit: field_u64(v, "culprit")?,
        },
        "revise" => TraceEvent::AccusationRevised {
            step: field_u64(v, "step")?,
            accuser_pos: field_u64(v, "accuser_pos")?,
            accused_pos: field_u64(v, "accused_pos")?,
            amended: field_bool(v, "amended")?,
        },
        "stored" => TraceEvent::AccusationStored {
            culprit: field_u64(v, "culprit")?,
            replicas: field_u64(v, "replicas")?,
        },
        "dht-refused" => TraceEvent::DhtRefused { culprit: field_u64(v, "culprit")? },
        "admit" => TraceEvent::ReportAdmitted {
            report: field_u64(v, "report")?,
            queue_depth: field_u64(v, "queue_depth")?,
        },
        "shed" => TraceEvent::LoadShed {
            report: field_u64(v, "report")?,
            reason: match v.get("reason").and_then(Json::as_str)? {
                "mailbox-full" => ShedReason::MailboxFull,
                "deadline" => ShedReason::DeadlineExceeded,
                "degraded" => ShedReason::Degraded,
                _ => return None,
            },
        },
        "complete" => TraceEvent::ReportCompleted {
            report: field_u64(v, "report")?,
            batch: field_u64(v, "batch")?,
        },
        "journal-commit" => TraceEvent::JournalCommitted {
            seq: field_u64(v, "seq")?,
            next_input: field_u64(v, "next_input")?,
        },
        "restart" => TraceEvent::SupervisorRestarted {
            incident: field_u64(v, "incident")?,
            budget_left: field_u64(v, "budget_left")?,
        },
        "degraded" => TraceEvent::DegradedEntered { incidents: field_u64(v, "incidents")? },
        "recovered" => TraceEvent::RecoveryReplayed {
            records: field_u64(v, "records")?,
            resumed_input: field_u64(v, "resumed_input")?,
        },
        "tick" => TraceEvent::Tick,
        _ => return None,
    })
}

/// Parses one `--trace-out` JSONL line into a [`Traced`] event, returning
/// any `episode`/`seed` annotations alongside. `None` when the line's
/// kind is unknown (forward compatibility: never invent an event).
pub fn traced_from_json_line(
    v: &Json,
) -> Option<(Traced, Option<String>, Option<String>)> {
    let at_micros = field_u64(v, "t_us")?;
    let kind = v.get("kind").and_then(Json::as_str)?;
    let event = event_from_json(kind, v)?;
    let episode = v.get("episode").and_then(Json::as_str).map(str::to_string);
    let seed = v.get("seed").and_then(Json::as_str).map(str::to_string);
    Some((Traced { at_micros, event }, episode, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppb_is_clamped_fixed_point() {
        assert_eq!(ppb(0.0), 0);
        assert_eq!(ppb(1.0), 1_000_000_000);
        assert_eq!(ppb(2.0), 1_000_000_000);
        assert_eq!(ppb(-1.0), 0);
        assert_eq!(ppb(0.25), 250_000_000);
    }

    #[test]
    fn hash_fields_are_stable_per_variant() {
        let ev = TraceEvent::BlameComputed {
            msg: 7,
            blame_ppb: ppb(0.5),
            accuracy_ppb: ppb(0.9),
            links: vec![LinkObsSummary { link: 3, up: 5, down: 1 }],
        };
        let mut fields = Vec::new();
        ev.hash_fields(&mut fields);
        assert_eq!(fields, vec![7, 500_000_000, 900_000_000, 1, 3, 5, 1]);
        assert_eq!(ev.label(), "judge");
    }

    #[test]
    fn serve_events_encode_all_three_renderings() {
        let shed = Traced {
            at_micros: 2_000_000,
            event: TraceEvent::LoadShed { report: 9, reason: ShedReason::DeadlineExceeded },
        };
        let mut fields = Vec::new();
        shed.event.hash_fields(&mut fields);
        assert_eq!(fields, vec![9, 1]);
        assert_eq!(shed.event.label(), "shed");
        assert!(shed.to_json(&[]).contains("\"reason\":\"deadline\""));
        assert!(shed.render().contains("reason=deadline"));

        let recovered = Traced {
            at_micros: 0,
            event: TraceEvent::RecoveryReplayed { records: 12, resumed_input: 5 },
        };
        let mut fields = Vec::new();
        recovered.event.hash_fields(&mut fields);
        assert_eq!(fields, vec![12, 5]);
        assert!(recovered.to_json(&[]).contains("\"records\":12"));
        assert!(recovered.render().contains("resuming at input 5"));

        // Shed reason codes are distinct and stable.
        let codes: Vec<u64> =
            [ShedReason::MailboxFull, ShedReason::DeadlineExceeded, ShedReason::Degraded]
                .iter()
                .map(|r| r.code())
                .collect();
        assert_eq!(codes, vec![0, 1, 2]);
    }

    #[test]
    fn json_and_render_are_deterministic() {
        let traced = Traced {
            at_micros: 1_500_000,
            event: TraceEvent::VerdictAccumulated {
                judge: 1,
                accused: 2,
                guilty: true,
                window_guilty: 3,
                window_len: 4,
            },
        };
        let a = traced.to_json(&[("episode", "lossy")]);
        let b = traced.to_json(&[("episode", "lossy")]);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"episode\":\"lossy\","), "{a}");
        assert!(a.contains("\"kind\":\"verdict\""));
        assert!(traced.render().contains("GUILTY"));
        assert!(traced.render().contains("[1.500000s]"));
    }

    /// One exemplar per variant, with field values chosen to be mutually
    /// distinct so any cross-wired JSON key shows up as a mismatch.
    fn one_of_each() -> Vec<TraceEvent> {
        vec![
            TraceEvent::MessageSent { msg: 11, flow: 2 },
            TraceEvent::ChurnBlocked { msg: 12 },
            TraceEvent::RouteOutcome { msg: 13, received_upto: 3, delivered: false },
            TraceEvent::FaultInjected { msg: 14, kind: FaultKind::TransportDrop },
            TraceEvent::FaultInjected { msg: 15, kind: FaultKind::HostDrop },
            TraceEvent::FaultInjected { msg: 16, kind: FaultKind::NetworkDrop },
            TraceEvent::AckReceived { msg: 17 },
            TraceEvent::RetryFired { msg: 18, attempt: 4 },
            TraceEvent::MessageExpired { msg: 19 },
            TraceEvent::SnapshotsGathered { links: 5, observations: 41 },
            TraceEvent::BlameComputed {
                // 123456789 ppb prints as 0.123456789 whose nearest f64
                // is fractionally *below* the decimal — the value that
                // catches a truncating (rather than rounding) decoder.
                msg: 20,
                blame_ppb: 123_456_789,
                accuracy_ppb: 999_999_999,
                links: vec![
                    LinkObsSummary { link: 6, up: 7, down: 1 },
                    LinkObsSummary { link: 8, up: 0, down: 9 },
                ],
            },
            TraceEvent::VerdictAccumulated {
                judge: 21,
                accused: 22,
                guilty: true,
                window_guilty: 3,
                window_len: 5,
            },
            TraceEvent::Escalated { msg: 23, judge: 24, accused: 25 },
            TraceEvent::Dissolved { msg: 26 },
            TraceEvent::CulpritStanding { msg: 27, position: 2, culprit: 28 },
            TraceEvent::AccusationRevised {
                step: 1,
                accuser_pos: 2,
                accused_pos: 3,
                amended: false,
            },
            TraceEvent::AccusationStored { culprit: 29, replicas: 3 },
            TraceEvent::DhtRefused { culprit: 30 },
            TraceEvent::ReportAdmitted { report: 31, queue_depth: 4 },
            TraceEvent::LoadShed { report: 32, reason: ShedReason::MailboxFull },
            TraceEvent::LoadShed { report: 33, reason: ShedReason::DeadlineExceeded },
            TraceEvent::LoadShed { report: 34, reason: ShedReason::Degraded },
            TraceEvent::ReportCompleted { report: 35, batch: 6 },
            TraceEvent::JournalCommitted { seq: 36, next_input: 37 },
            TraceEvent::SupervisorRestarted { incident: 2, budget_left: 1 },
            TraceEvent::DegradedEntered { incidents: 3 },
            TraceEvent::RecoveryReplayed { records: 38, resumed_input: 39 },
            TraceEvent::Tick,
        ]
    }

    /// Pins all three renderings together: every event kind's JSON must
    /// decode back ([`event_from_json`]) to an event with the same label
    /// and the same canonical `hash_fields` encoding, and re-serializing
    /// the decoded event must reproduce the original JSON byte for byte.
    /// Any drift between `to_json`, `render`, and the hash encoding for
    /// a new variant fails here instead of silently corrupting exports.
    #[test]
    fn every_kind_round_trips_through_json() {
        let exemplars = one_of_each();
        // First: the exemplar list covers every kind code.
        let mut covered: Vec<u64> = exemplars.iter().map(TraceEvent::kind_code).collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(
            covered,
            (0..=23).collect::<Vec<u64>>(),
            "round-trip exemplars must cover every TraceEvent kind code"
        );
        for event in exemplars {
            let traced = Traced { at_micros: 1_234_567, event };
            let line = traced.to_json(&[("episode", "rt"), ("seed", "5")]);
            let parsed = crate::json::parse(&line)
                .unwrap_or_else(|e| panic!("{}: unparseable own JSON {line}: {e}", traced.event.label()));
            let (decoded, episode, seed) = traced_from_json_line(&parsed)
                .unwrap_or_else(|| panic!("{}: undecodable own JSON {line}", traced.event.label()));
            assert_eq!(episode.as_deref(), Some("rt"));
            assert_eq!(seed.as_deref(), Some("5"));
            assert_eq!(decoded.at_micros, traced.at_micros);
            assert_eq!(decoded.event.label(), traced.event.label());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            traced.event.hash_fields(&mut a);
            decoded.event.hash_fields(&mut b);
            assert_eq!(a, b, "{}: hash fields drifted across JSON", traced.event.label());
            assert_eq!(
                decoded.to_json(&[("episode", "rt"), ("seed", "5")]),
                line,
                "{}: re-serialization drifted",
                traced.event.label()
            );
            assert_eq!(decoded.render(), traced.render());
        }
    }

    #[test]
    fn ppb_from_f64_rounds_instead_of_truncating() {
        // 0.123456789's nearest f64 is fractionally below the printed
        // decimal; a truncating decoder lands on 123456788.
        assert_eq!(ppb_from_f64(0.123_456_789), 123_456_789);
        assert_eq!(ppb_from_f64(0.999_999_999), 999_999_999);
        assert_eq!(ppb_from_f64(0.0), 0);
        assert_eq!(ppb_from_f64(1.5), 1_000_000_000);
        assert_eq!(ppb_from_f64(-0.5), 0);
    }
}
