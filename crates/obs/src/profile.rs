//! Wall-clock profiling hooks.
//!
//! Profiling is the one part of the observability layer that is
//! **explicitly outside the determinism contract**: span timings are real
//! elapsed time, vary run to run, and must never be folded into trace
//! hashes, metric registries that cross the digest boundary, or any other
//! reproducible artifact. They exist to answer "where did the seconds go",
//! nothing else — see DESIGN.md §12.
//!
//! The API is a guard: [`span("phase")`](span) returns a [`SpanGuard`]
//! that records elapsed time when dropped. When profiling is disabled
//! (the default) the guard is a no-op and the hot-path cost is one
//! acquire atomic load. Nested spans attribute time to both the inner
//! and outer phase's *total*, while *self* time subtracts the inner
//! spans, so a phase's own cost is visible separately from its callees'.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

static TOTALS: Mutex<BTreeMap<&'static str, PhaseTotals>> = Mutex::new(BTreeMap::new());

/// Aggregated timings for one named phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTotals {
    /// Number of completed spans.
    pub calls: u64,
    /// Wall-clock nanoseconds from span open to close, children included.
    pub total_ns: u64,
    /// Wall-clock nanoseconds excluding time spent in nested spans.
    pub self_ns: u64,
}

thread_local! {
    // Per-thread stack of (child-time accumulated so far) for open spans,
    // used to compute self time without global coordination.
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Turns profiling on or off process-wide. Off by default; flipping it on
/// only affects spans opened afterwards.
///
/// Release/Acquire on the flag: a thread that observes `true` must also
/// observe any setup the enabling thread performed before the flip (e.g.
/// a `reset_profile()` clearing stale totals). Relaxed would allow a span
/// to land in a registry snapshot taken before the reset.
pub fn set_profiling(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether profiling is currently enabled.
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Clears all aggregated phase totals (e.g. between benchmark sections).
pub fn reset_profile() {
    TOTALS.lock().expect("profile totals poisoned").clear();
}

/// Opens a wall-clock span for `phase`. Timing stops when the returned
/// guard drops. A no-op (one atomic load) when profiling is disabled.
#[must_use = "the span measures until the guard is dropped"]
pub fn span(phase: &'static str) -> SpanGuard {
    if !profiling_enabled() {
        return SpanGuard { phase: None, started: None };
    }
    OPEN_SPANS.with(|s| s.borrow_mut().push(0));
    // lint:allow(digest-taint, reason = "span timing flows only into the profiler's phase totals, never into digest or trace bytes")
    SpanGuard { phase: Some(phase), started: Some(Instant::now()) }
}

/// An open profiling span; records elapsed time for its phase on drop.
pub struct SpanGuard {
    phase: Option<&'static str>,
    started: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(phase), Some(started)) = (self.phase, self.started) else {
            return;
        };
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        let child_ns = OPEN_SPANS.with(|s| {
            let mut stack = s.borrow_mut();
            let child_ns = stack.pop().unwrap_or(0);
            // Attribute this span's whole duration to the parent's child
            // time, so the parent's self time excludes it.
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed_ns;
            }
            child_ns
        });
        let mut totals = TOTALS.lock().expect("profile totals poisoned");
        let entry = totals.entry(phase).or_default();
        entry.calls += 1;
        entry.total_ns += elapsed_ns;
        entry.self_ns += elapsed_ns.saturating_sub(child_ns);
    }
}

/// A snapshot of all phase totals, sorted by phase name.
pub fn profile_snapshot() -> Vec<(&'static str, PhaseTotals)> {
    TOTALS
        .lock()
        .expect("profile totals poisoned")
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect()
}

/// Renders the current phase totals as a pretty-printed JSON report
/// (the `BENCH_profile.json` payload). Times are in milliseconds.
pub fn profile_report_json() -> String {
    let snapshot = profile_snapshot();
    let mut out = String::from("{\n  \"phases\": {\n");
    for (i, (phase, t)) in snapshot.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    \"{phase}\": {{\"calls\": {}, \"total_ms\": {:.3}, \"self_ms\": {:.3}}}",
            t.calls,
            t.total_ns as f64 / 1e6,
            t.self_ns as f64 / 1e6
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The profiler is process-global state; serialize tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_profile();
        set_profiling(true);
        guard
    }

    fn spin_for(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = exclusive();
        set_profiling(false);
        {
            let _s = span("idle");
        }
        assert!(profile_snapshot().is_empty());
        set_profiling(true);
    }

    #[test]
    fn nested_spans_split_self_and_total() {
        let _guard = exclusive();
        {
            let _outer = span("outer");
            spin_for(200_000);
            {
                let _inner = span("inner");
                spin_for(200_000);
            }
        }
        let snapshot = profile_snapshot();
        let get = |name| {
            snapshot
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, t)| *t)
                .expect("phase recorded")
        };
        let outer = get("outer");
        let inner = get("inner");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total_ns >= inner.total_ns, "outer total covers inner");
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns + 1,
            "outer self excludes inner: self={} total={} inner={}",
            outer.self_ns,
            outer.total_ns,
            inner.total_ns
        );
        set_profiling(false);
    }

    #[test]
    fn report_is_valid_json_with_sorted_phases() {
        let _guard = exclusive();
        for phase in ["zeta", "alpha"] {
            let _s = span(phase);
        }
        let report = profile_report_json();
        let parsed = crate::json::parse(&report).expect("report must parse");
        let phases = parsed.get("phases").and_then(crate::json::Json::as_obj).unwrap();
        let keys: Vec<&str> = phases.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["alpha", "zeta"]);
        assert_eq!(
            phases["alpha"].get("calls").and_then(crate::json::Json::as_num),
            Some(1.0)
        );
        set_profiling(false);
    }
}
