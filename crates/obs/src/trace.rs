//! The ring-buffered structured tracer.
//!
//! A [`Trace`] holds the most recent `capacity` events of one episode.
//! Recording is append-only and purely a function of the recorded events,
//! so keeping a trace alongside a chained trace hash never perturbs
//! determinism: the ring is evidence *about* the run, not part of it.
//!
//! When the buffer is full the oldest events are discarded and counted in
//! [`Trace::dropped`] — a failing episode's trace therefore always ends at
//! the failure, with the causal story of the final events intact.

use std::collections::VecDeque;

use crate::event::{TraceEvent, Traced};

/// Default ring capacity: enough to hold a full DST episode's judgment
/// tail while keeping a 1000-episode sweep's memory use modest.
pub const DEFAULT_TRACE_CAPACITY: usize = 2048;

/// A bounded, ordered buffer of [`Traced`] events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    events: VecDeque<Traced>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// An empty trace holding at most `capacity` events. A capacity of 0
    /// disables recording entirely (every push is counted as dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace { events: VecDeque::with_capacity(capacity.min(1024)), capacity, dropped: 0 }
    }

    /// Records one event at virtual time `at_micros`, evicting the oldest
    /// event if the ring is full.
    pub fn push(&mut self, at_micros: u64, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Traced { at_micros, event });
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Traced> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or never stored) because of the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring's capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders the buffered events as human-readable lines, one per event,
    /// with a header noting any eviction. The causal story of an episode.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier event(s) evicted from the {}-event ring ...\n",
                self.dropped, self.capacity
            ));
        }
        for ev in &self.events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    /// Renders the buffered events as JSONL, each line prefixed with the
    /// given extra string fields (e.g. episode arm and seed).
    pub fn to_jsonl(&self, extra: &[(&str, &str)]) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json(extra));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(msg: u64) -> TraceEvent {
        TraceEvent::MessageSent { msg, flow: 0 }
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5 {
            t.push(i * 10, ev(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<u64> = t
            .events()
            .map(|e| match e.event {
                TraceEvent::MessageSent { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(msgs, vec![2, 3, 4]);
        assert!(t.render().starts_with("... 2 earlier event(s)"));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut t = Trace::with_capacity(0);
        t.push(0, ev(1));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.render(), "... 1 earlier event(s) evicted from the 0-event ring ...\n");
    }

    #[test]
    fn jsonl_has_one_line_per_event_with_prefix() {
        let mut t = Trace::with_capacity(8);
        t.push(1, ev(1));
        t.push(2, TraceEvent::Tick);
        let jsonl = t.to_jsonl(&[("episode", "lossy"), ("seed", "7")]);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with("{\"episode\":\"lossy\",\"seed\":\"7\","), "{line}");
            assert!(line.ends_with('}'));
        }
    }
}
