//! Coverage signal for the scenario fuzzer.
//!
//! A DST episode's *coverage* is the set of behavioural features its trace
//! and metrics exercised, reduced to stable `u64` bucket identifiers:
//!
//! * **Event-kind bigrams** — consecutive pairs of trace-event kinds
//!   ([`TraceEvent::kind_code`]), capturing orderings like
//!   "retry → expire" vs "retry → ack" that single-event counts miss.
//! * **Bucketed counters** — every metrics counter, log2-bucketed, so
//!   "some retries" and "a retry storm" are different features while raw
//!   counts don't fragment the space.
//! * **Verdict-window shapes** — the `(guilty, len)` occupancy a verdict
//!   push left behind, the m-of-w escalation geometry.
//! * **Fault/shed taxonomies** — which typed fault kinds and shed reasons
//!   appeared at all.
//!
//! Buckets are hashed with a fixed FNV-1a so identifiers are stable across
//! Rust versions and platforms (unlike `DefaultHasher`), making committed
//! corpora meaningful forever. A [`CoverageSet`] is a plain
//! [`BTreeSet<u64>`] wrapper: deterministic iteration, cheap set algebra.

use std::collections::BTreeSet;

use crate::event::{Traced, TraceEvent};
use crate::metrics::{Metric, Registry};

/// 64-bit FNV-1a over a byte string — tiny, portable, stable.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes a feature tag plus its numeric payload into one bucket id.
fn bucket(tag: &str, payload: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(tag.len() + 1 + payload.len() * 8);
    bytes.extend_from_slice(tag.as_bytes());
    bytes.push(0);
    for v in payload {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// The log2 bucket of a count: 0 → 0, otherwise `1 + floor(log2 n)`, so
/// {0}, {1}, {2,3}, {4..7}, … are distinct features.
fn log2_bucket(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        64 - u64::from(n.leading_zeros())
    }
}

/// A set of exercised coverage buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoverageSet {
    buckets: BTreeSet<u64>,
}

impl CoverageSet {
    /// The empty coverage set.
    pub fn new() -> Self {
        CoverageSet::default()
    }

    /// Number of distinct buckets exercised.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no bucket has been exercised.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Whether `bucket` has been exercised.
    pub fn contains(&self, bucket: u64) -> bool {
        self.buckets.contains(&bucket)
    }

    /// The buckets in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.buckets.iter().copied()
    }

    /// Inserts a raw bucket id (used by replay tooling; the absorb
    /// methods are the normal producers).
    pub fn insert(&mut self, bucket: u64) -> bool {
        self.buckets.insert(bucket)
    }

    /// Buckets in `self` missing from `other`, in sorted order.
    pub fn difference(&self, other: &CoverageSet) -> Vec<u64> {
        self.buckets.difference(&other.buckets).copied().collect()
    }

    /// Number of buckets `other` would add to `self`.
    pub fn novelty_of(&self, other: &CoverageSet) -> usize {
        other.buckets.difference(&self.buckets).count()
    }

    /// Merges another set in, returning how many buckets were new.
    pub fn absorb(&mut self, other: &CoverageSet) -> usize {
        let mut added = 0;
        for &b in &other.buckets {
            if self.buckets.insert(b) {
                added += 1;
            }
        }
        added
    }

    /// Whether every bucket of `other` is already in `self`.
    pub fn covers(&self, other: &CoverageSet) -> bool {
        other.buckets.is_subset(&self.buckets)
    }

    /// Extracts features from an episode trace: kind bigrams, verdict
    /// window shapes, fault kinds, shed reasons, and revision outcomes.
    pub fn absorb_trace<'a, I: IntoIterator<Item = &'a Traced>>(&mut self, events: I) {
        let mut prev: Option<u64> = None;
        for traced in events {
            let code = traced.event.kind_code();
            self.buckets.insert(bucket("kind", &[code]));
            if let Some(p) = prev {
                self.buckets.insert(bucket("bigram", &[p, code]));
            }
            prev = Some(code);
            match &traced.event {
                TraceEvent::VerdictAccumulated { guilty, window_guilty, window_len, .. } => {
                    self.buckets.insert(bucket(
                        "verdict-shape",
                        &[u64::from(*guilty), *window_guilty, *window_len],
                    ));
                }
                TraceEvent::FaultInjected { kind, .. } => {
                    self.buckets.insert(bucket("fault-kind", &[kind.code()]));
                }
                TraceEvent::LoadShed { reason, .. } => {
                    self.buckets.insert(bucket("shed-reason", &[reason.code()]));
                }
                TraceEvent::AccusationRevised { amended, .. } => {
                    self.buckets.insert(bucket("revise-amended", &[u64::from(*amended)]));
                }
                TraceEvent::RetryFired { attempt, .. } => {
                    self.buckets.insert(bucket("retry-attempt", &[*attempt]));
                }
                TraceEvent::RouteOutcome { received_upto, delivered, .. } => {
                    self.buckets.insert(bucket(
                        "outcome-shape",
                        &[log2_bucket(*received_upto), u64::from(*delivered)],
                    ));
                }
                _ => {}
            }
        }
    }

    /// Extracts features from an episode's metrics registry: every counter
    /// key at its log2-bucketed magnitude. Gauges and histograms are
    /// skipped — counters are the invariant-branch tallies the fuzzer
    /// wants (sheds, retries, revisions, escalations, …).
    pub fn absorb_metrics(&mut self, registry: &Registry) {
        for (key, metric) in registry.iter() {
            if let Metric::Counter(n) = metric {
                self.buckets.insert(bucket(key, &[log2_bucket(*n)]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;

    fn traced(event: TraceEvent) -> Traced {
        Traced { at_micros: 0, event }
    }

    #[test]
    fn log2_buckets_separate_magnitudes() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(7), 3);
        assert_eq!(log2_bucket(8), 4);
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: committed corpora depend on this never changing.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn bigrams_capture_order() {
        let mut ab = CoverageSet::new();
        ab.absorb_trace(&[
            traced(TraceEvent::MessageSent { msg: 0, flow: 0 }),
            traced(TraceEvent::AckReceived { msg: 0 }),
        ]);
        let mut ba = CoverageSet::new();
        ba.absorb_trace(&[
            traced(TraceEvent::AckReceived { msg: 0 }),
            traced(TraceEvent::MessageSent { msg: 0, flow: 0 }),
        ]);
        // Same kinds, opposite order → different bigram buckets.
        assert_ne!(ab, ba);
        assert_eq!(ab.novelty_of(&ba), 1);
    }

    #[test]
    fn verdict_shapes_and_fault_kinds_are_features() {
        let mut c = CoverageSet::new();
        c.absorb_trace(&[
            traced(TraceEvent::VerdictAccumulated {
                judge: 1,
                accused: 2,
                guilty: true,
                window_guilty: 3,
                window_len: 5,
            }),
            traced(TraceEvent::FaultInjected { msg: 0, kind: FaultKind::HostDrop }),
        ]);
        let before = c.len();
        // Re-absorbing the same events adds nothing.
        c.absorb_trace(&[
            traced(TraceEvent::VerdictAccumulated {
                judge: 9,
                accused: 8,
                guilty: true,
                window_guilty: 3,
                window_len: 5,
            }),
        ]);
        assert_eq!(c.len(), before);
        // A different window shape is a new feature.
        c.absorb_trace(&[
            traced(TraceEvent::VerdictAccumulated {
                judge: 1,
                accused: 2,
                guilty: true,
                window_guilty: 4,
                window_len: 5,
            }),
        ]);
        assert!(c.len() > before);
    }

    #[test]
    fn metrics_counters_bucket_by_magnitude() {
        let mut r = Registry::new();
        r.inc("episode.retries", 3);
        let mut a = CoverageSet::new();
        a.absorb_metrics(&r);
        // 3 and 2 share a log2 bucket; 40 does not.
        let mut r2 = Registry::new();
        r2.inc("episode.retries", 2);
        let mut b = CoverageSet::new();
        b.absorb_metrics(&r2);
        assert_eq!(a, b);
        let mut r3 = Registry::new();
        r3.inc("episode.retries", 40);
        let mut c = CoverageSet::new();
        c.absorb_metrics(&r3);
        assert_ne!(a, c);
    }

    #[test]
    fn set_algebra_is_consistent() {
        let mut a = CoverageSet::new();
        a.insert(1);
        a.insert(2);
        let mut b = CoverageSet::new();
        b.insert(2);
        b.insert(3);
        assert_eq!(a.novelty_of(&b), 1);
        assert_eq!(b.difference(&a), vec![3]);
        assert!(!a.covers(&b));
        assert_eq!(a.absorb(&b), 1);
        assert!(a.covers(&b));
        assert_eq!(a.len(), 3);
        assert!(a.contains(3));
        assert!(!a.is_empty());
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
