//! Measurement accumulators.

use serde::{Deserialize, Serialize};

/// A fixed-bin histogram over `[0, 1]`, used to accumulate the blame PDFs
/// of Figure 5.
///
/// # Examples
///
/// ```
/// use concilium_sim::Histogram;
///
/// let mut h = Histogram::new(10);
/// h.add(0.05);
/// h.add(0.95);
/// h.add(0.97);
/// assert_eq!(h.count(), 3);
/// assert!((h.fraction_at_least(0.9) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        Histogram { bins: vec![0; bins], count: 0, sum: 0.0 }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in `[0, 1]`.
    pub fn add(&mut self, x: f64) {
        assert!((0.0..=1.0).contains(&x), "sample {x} out of [0,1]");
        let idx = ((x * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// The normalised probability mass per bin (sums to 1), or all zeros
    /// when empty.
    pub fn pdf(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&b| b as f64 / self.count as f64).collect()
    }

    /// The fraction of samples at or above `threshold` — e.g. the guilty
    /// rate at a 40% blame threshold.
    ///
    /// Computed from bins, so `threshold` should align with bin edges for
    /// exact results; non-aligned thresholds use the containing bin's
    /// lower edge.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `[0, 1]`.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        assert!((0.0..=1.0).contains(&threshold), "threshold {threshold} out of [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        let start = ((threshold * self.bins.len() as f64).floor() as usize)
            .min(self.bins.len() - 1);
        let above: u64 = self.bins[start..].iter().sum();
        above as f64 / self.count as f64
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Merges another histogram with the same binning into this one.
    ///
    /// # Panics
    ///
    /// Panics if bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_correct() {
        let mut h = Histogram::new(4);
        for x in [0.0, 0.1, 0.3, 0.6, 0.9, 1.0] {
            h.add(x);
        }
        assert_eq!(h.bins(), &[2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn one_point_zero_lands_in_last_bin() {
        let mut h = Histogram::new(10);
        h.add(1.0);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn pdf_sums_to_one() {
        let mut h = Histogram::new(7);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let total: f64 = h.pdf().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_least_matches_manual_count() {
        let mut h = Histogram::new(10);
        for x in [0.05, 0.35, 0.45, 0.75, 0.95] {
            h.add(x);
        }
        assert!((h.fraction_at_least(0.4) - 3.0 / 5.0).abs() < 1e-12);
        assert!((h.fraction_at_least(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_empty_behaviour() {
        let mut h = Histogram::new(5);
        assert_eq!(h.mean(), None);
        assert_eq!(h.fraction_at_least(0.5), 0.0);
        h.add(0.25);
        h.add(0.75);
        assert!((h.mean().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(4);
        a.add(0.1);
        let mut b = Histogram::new(4);
        b.add(0.9);
        b.add(0.95);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.fraction_at_least(0.75) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn out_of_range_sample_rejected() {
        let mut h = Histogram::new(2);
        h.add(1.5);
    }
}
