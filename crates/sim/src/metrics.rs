//! Measurement accumulators.

use serde::{Deserialize, Serialize};

/// A fixed-bin histogram over `[0, 1]`, used to accumulate the blame PDFs
/// of Figure 5.
///
/// # Examples
///
/// ```
/// use concilium_sim::Histogram;
///
/// let mut h = Histogram::new(10);
/// h.add(0.05);
/// h.add(0.95);
/// h.add(0.97);
/// assert_eq!(h.count(), 3);
/// assert!((h.fraction_at_least(0.9) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        Histogram { bins: vec![0; bins], count: 0, sum: 0.0 }
    }

    /// Adds a sample.
    ///
    /// Use this at call sites where the sample is an invariant of the
    /// producing code — e.g. the bench drivers feeding Eq. 2–3 blame
    /// values, which the combinator already guarantees to lie in `[0, 1]`:
    /// an out-of-range value there is a bug worth crashing on.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in `[0, 1]`. Use [`Histogram::try_add`] or
    /// [`Histogram::add_clamped`] when out-of-range samples are data.
    pub fn add(&mut self, x: f64) {
        assert!((0.0..=1.0).contains(&x), "sample {x} out of [0,1]");
        let idx = ((x * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Adds a sample, returning `false` (and leaving the histogram
    /// unchanged) instead of panicking when `x` is outside `[0, 1]` or
    /// NaN.
    ///
    /// Use this when the sample crosses a trust boundary — values parsed
    /// from external reports or produced by a system under test (a DST
    /// mutant combinator may legitimately emit garbage, and the harness
    /// wants to record the refusal, not crash).
    #[must_use = "a false return means the sample was rejected"]
    pub fn try_add(&mut self, x: f64) -> bool {
        if !(0.0..=1.0).contains(&x) {
            return false;
        }
        self.add(x);
        true
    }

    /// Adds a sample, saturating it into `[0, 1]` first; NaN saturates
    /// to 0.
    ///
    /// Use this for observational metrics where an outlier should still
    /// be counted rather than dropped — e.g. rate-style measurements
    /// that can overshoot 1.0 through rounding but belong in the top bin.
    pub fn add_clamped(&mut self, x: f64) {
        let clamped = if x.is_nan() { 0.0 } else { x.clamp(0.0, 1.0) };
        self.add(clamped);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// The normalised probability mass per bin (sums to 1), or all zeros
    /// when empty.
    pub fn pdf(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&b| b as f64 / self.count as f64).collect()
    }

    /// The fraction of samples at or above `threshold` — e.g. the guilty
    /// rate at a 40% blame threshold.
    ///
    /// Computed from bins, so `threshold` should align with bin edges for
    /// exact results; non-aligned thresholds use the containing bin's
    /// lower edge.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `[0, 1]`.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        assert!((0.0..=1.0).contains(&threshold), "threshold {threshold} out of [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        let start = ((threshold * self.bins.len() as f64).floor() as usize)
            .min(self.bins.len() - 1);
        let above: u64 = self.bins[start..].iter().sum();
        above as f64 / self.count as f64
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Merges another histogram with the same binning into this one.
    ///
    /// # Panics
    ///
    /// Panics if bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_correct() {
        let mut h = Histogram::new(4);
        for x in [0.0, 0.1, 0.3, 0.6, 0.9, 1.0] {
            h.add(x);
        }
        assert_eq!(h.bins(), &[2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn one_point_zero_lands_in_last_bin() {
        let mut h = Histogram::new(10);
        h.add(1.0);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn pdf_sums_to_one() {
        let mut h = Histogram::new(7);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let total: f64 = h.pdf().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_least_matches_manual_count() {
        let mut h = Histogram::new(10);
        for x in [0.05, 0.35, 0.45, 0.75, 0.95] {
            h.add(x);
        }
        assert!((h.fraction_at_least(0.4) - 3.0 / 5.0).abs() < 1e-12);
        assert!((h.fraction_at_least(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_empty_behaviour() {
        let mut h = Histogram::new(5);
        assert_eq!(h.mean(), None);
        assert_eq!(h.fraction_at_least(0.5), 0.0);
        h.add(0.25);
        h.add(0.75);
        assert!((h.mean().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(4);
        a.add(0.1);
        let mut b = Histogram::new(4);
        b.add(0.9);
        b.add(0.95);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.fraction_at_least(0.75) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn out_of_range_sample_rejected() {
        let mut h = Histogram::new(2);
        h.add(1.5);
    }

    #[test]
    fn try_add_rejects_without_mutating() {
        let mut h = Histogram::new(4);
        assert!(h.try_add(0.5));
        assert!(!h.try_add(1.5));
        assert!(!h.try_add(-0.1));
        assert!(!h.try_add(f64::NAN));
        assert_eq!(h.count(), 1);
        assert_eq!(h.bins(), &[0, 0, 1, 0]);
    }

    #[test]
    fn add_clamped_saturates_into_edge_bins() {
        let mut h = Histogram::new(4);
        h.add_clamped(7.0);
        h.add_clamped(-3.0);
        h.add_clamped(f64::NAN);
        assert_eq!(h.bins(), &[2, 0, 0, 1]);
        assert_eq!(h.count(), 3);
    }
}
