//! Whole-system invariants for deterministic simulation testing (DST).
//!
//! The [`crate::explorer`] runs full diagnose–accuse–revise episodes under
//! seeded [`crate::FaultPlan`]s and evaluates these invariants after every
//! event. Each invariant is a property the Concilium protocol must uphold
//! regardless of which network faults the plan injects:
//!
//! * **No false blame** — an accusation chain never leaves an honest,
//!   un-crashed host as the standing culprit when only the network (or a
//!   blameworthy adversary elsewhere) misbehaved.
//! * **Blame oracle agreement** — the production fuzzy-logic combinator
//!   (Eqs. 2–3 of the paper) matches a direct, independently written
//!   re-evaluation on every judgment, and stays inside `[0, 1]`.
//! * **Verdict bookkeeping** — the sliding verdict window's cached guilty
//!   count always equals a recount of its contents.
//! * **Retry conservation** — every registered message is settled,
//!   expired, or still pending: none is lost, none is counted twice.
//! * **Chain integrity** — accusation/revision chains stored in the DHT
//!   remain signature-valid and walk strictly downstream along the route.
//! * **DHT durability** — a write acknowledged at quorum is fetchable and
//!   verifies afterwards.
//! * **Tomography sanity** — inferred pass rates stay inside `[0, 1]`,
//!   tolerant inference agrees with strict inference on fully-known
//!   records, and both agree with the closed-form oracle.
//! * **Identifiability bound** — localization never claims finer
//!   granularity than the probe matrix's ambiguity classes allow (the
//!   Boolean-tomography identifiability limit).
//!
//! This module holds the invariant vocabulary ([`InvariantKind`],
//! [`Violation`]), the direct-evaluation oracles the checks compare
//! against, and the chained trace hasher used to prove replay determinism.

use std::fmt;

use concilium::blame::LinkEvidence;
use concilium::verdict::VerdictWindow;
use concilium_crypto::{sha256, Digest, Sha256};
use concilium_obs::EntityRef;
use concilium_types::SimTime;

/// The invariant classes a DST episode can violate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// An honest, un-crashed host ended an accusation chain as culprit.
    FalseAccusation,
    /// The production blame combinator disagreed with the direct oracle.
    BlameOracle,
    /// A computed blame value escaped `[0, 1]`.
    BlameRange,
    /// A verdict window's cached guilty count disagreed with a recount.
    VerdictBookkeeping,
    /// A steward lost or double-counted a registered message.
    RetryConservation,
    /// A stored accusation chain failed verification or walked upstream.
    ChainIntegrity,
    /// A quorum-acknowledged DHT write was not durably fetchable.
    DhtDurability,
    /// Tolerant tomography reported a pass rate outside `[0, 1]`.
    TomographyRange,
    /// Tolerant, strict, and oracle inference disagreed on a fully-known
    /// record.
    TomographyDisagreement,
    /// A per-episode metric total disagreed with the episode's own
    /// bookkeeping: the tracer and the protocol logic counted different
    /// worlds.
    MetricsConservation,
    /// A crash/recover run of the serving daemon diverged from the
    /// uninterrupted run: journal digest or recovered state mismatch.
    RecoveryDivergence,
    /// The daemon's admission ledger leaked a report: offered reports no
    /// longer equal completed + shed + in-flight + queued.
    ServeConservation,
    /// Inference claimed finer localization than the probe/route matrix
    /// identifies: blame landed on a proper subset of an ambiguity class,
    /// or the class partition diverged from the logical-tree prediction.
    IdentifiabilityBound,
    /// A terminal outcome event (verdict, shed, expiry, stored accusation)
    /// was not causally reachable from its originating send/admit — the
    /// causal-reachability invariant of the flight recorder.
    CausalOrphan,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::FalseAccusation => "false-accusation",
            InvariantKind::BlameOracle => "blame-oracle-mismatch",
            InvariantKind::BlameRange => "blame-out-of-range",
            InvariantKind::VerdictBookkeeping => "verdict-bookkeeping",
            InvariantKind::RetryConservation => "retry-conservation",
            InvariantKind::ChainIntegrity => "chain-integrity",
            InvariantKind::DhtDurability => "dht-durability",
            InvariantKind::TomographyRange => "tomography-range",
            InvariantKind::TomographyDisagreement => "tomography-disagreement",
            InvariantKind::MetricsConservation => "metrics-conservation",
            InvariantKind::RecoveryDivergence => "recovery-divergence",
            InvariantKind::ServeConservation => "serve-conservation",
            InvariantKind::IdentifiabilityBound => "identifiability-bound",
            InvariantKind::CausalOrphan => "causal-orphan",
        };
        f.write_str(name)
    }
}

/// A concrete invariant violation observed during an episode.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Virtual time of the violating event.
    pub at: SimTime,
    /// Human-readable description with the offending values.
    pub detail: String,
    /// The entity the violation is about, when one is identifiable —
    /// the correlation key the failing-case reproducer explains.
    pub entity: Option<EntityRef>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.kind, self.at, self.detail)?;
        if let Some(entity) = &self.entity {
            write!(f, " (entity {entity})")?;
        }
        Ok(())
    }
}

/// Direct re-evaluation of the paper's Eqs. 2–3, written independently of
/// [`concilium::blame::blame_from_path_evidence`].
///
/// Eq. 2: a link's badness is the arithmetic mean of its observations,
/// scoring `1 − accuracy` for "up" and `accuracy` for "down". Eq. 3: the
/// path's fuzzy disjunction is the maximum badness over links with any
/// evidence, and blame is its complement. With no evidence at all the
/// accused gets full blame (the §3.5 silence convention).
pub fn naive_blame(evidence: &[LinkEvidence], accuracy: f64) -> f64 {
    let mut max_badness: Option<f64> = None;
    for link in evidence {
        if link.observations.is_empty() {
            continue;
        }
        let mut sum = 0.0;
        for &up in &link.observations {
            sum += if up { 1.0 - accuracy } else { accuracy };
        }
        let badness = sum / link.observations.len() as f64;
        max_badness = Some(match max_badness {
            Some(m) if m >= badness => m,
            _ => badness,
        });
    }
    match max_badness {
        Some(m) => 1.0 - m,
        None => 1.0,
    }
}

/// Checks a blame value produced by the system under test against the
/// range invariant and (when `oracle` is set) the direct oracle.
pub fn check_blame(
    evidence: &[LinkEvidence],
    accuracy: f64,
    produced: f64,
    oracle: bool,
    at: SimTime,
) -> Option<Violation> {
    if !(0.0..=1.0).contains(&produced) {
        return Some(Violation {
            kind: InvariantKind::BlameRange,
            at,
            entity: None,
            detail: format!("blame {produced} outside [0, 1]"),
        });
    }
    if oracle {
        let expected = naive_blame(evidence, accuracy);
        if (produced - expected).abs() > 1e-9 {
            return Some(Violation {
                kind: InvariantKind::BlameOracle,
                at,
                entity: None,
                detail: format!(
                    "combinator returned {produced}, direct Eq. 2–3 evaluation gives \
                     {expected} over {} links",
                    evidence.len()
                ),
            });
        }
    }
    None
}

/// Recounts a verdict window and compares against its cached tallies.
pub fn check_window(window: &VerdictWindow, at: SimTime) -> Option<Violation> {
    let recounted_guilty = window.verdicts().filter(|v| v.is_guilty()).count();
    let recounted_len = window.verdicts().count();
    if recounted_guilty != window.guilty_count() || recounted_len != window.len() {
        return Some(Violation {
            kind: InvariantKind::VerdictBookkeeping,
            at,
            entity: None,
            detail: format!(
                "window reports {} guilty of {}, recount finds {} of {}",
                window.guilty_count(),
                window.len(),
                recounted_guilty,
                recounted_len
            ),
        });
    }
    None
}

/// Checks the message-conservation ledger: everything a steward registered
/// must be settled, expired, or still pending — exactly once.
pub fn check_conservation(
    sent: usize,
    settled: usize,
    expired: usize,
    pending: usize,
    at: SimTime,
) -> Option<Violation> {
    if settled + expired + pending != sent {
        return Some(Violation {
            kind: InvariantKind::RetryConservation,
            at,
            entity: None,
            detail: format!(
                "{sent} registered but {settled} settled + {expired} expired + \
                 {pending} pending = {}",
                settled + expired + pending
            ),
        });
    }
    None
}

/// Direct evaluation of `P[X ≥ m]` for `X ~ Binomial(w, p)`, written
/// independently of [`concilium::verdict::binomial_tail_at_least`] as a
/// cross-check oracle for the verdict window's m-of-w test.
///
/// Uses the multiplicative term recurrence
/// `T(k+1) = T(k) · (w−k)/(k+1) · p/(1−p)` starting from
/// `T(0) = (1−p)^w`, summing the terms with `k ≥ m`.
pub fn oracle_binomial_tail_at_least(w: usize, m: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
    if m == 0 {
        return 1.0;
    }
    if m > w {
        return 0.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let ratio = p / (1.0 - p);
    let mut term = (1.0 - p).powi(w as i32);
    let mut tail = 0.0;
    for k in 0..=w {
        if k >= m {
            tail += term;
        }
        if k < w {
            term *= (w - k) as f64 / (k + 1) as f64 * ratio;
        }
    }
    tail.min(1.0)
}

/// Checks that event-derived metric counters agree with independently
/// maintained oracle counts.
///
/// The explorer counts protocol steps twice: once in its own bookkeeping
/// ([`crate::EpisodeStats`], incremented by the protocol logic) and once in
/// the metrics registry (incremented as each typed trace event is
/// emitted). `expected` pairs each registry key with the bookkeeping
/// value; any disagreement means an event was emitted without the step
/// happening, or a step happened without its event — either way the trace
/// is lying about the run.
pub fn check_metrics_conservation(
    metrics: &concilium_obs::Registry,
    expected: &[(&str, u64)],
    at: SimTime,
) -> Option<Violation> {
    for &(key, want) in expected {
        let got = metrics.counter(key);
        if got != want {
            return Some(Violation {
                kind: InvariantKind::MetricsConservation,
                at,
                entity: None,
                detail: format!(
                    "metric `{key}` counted {got} events but the episode's own \
                     bookkeeping says {want}"
                ),
            });
        }
    }
    None
}

/// Checks the serving daemon's admission ledger: every offered report is
/// admitted or shed, and every admitted report is completed, still
/// queued, or in flight — exactly once. The service-mode extension of
/// the conservation family ("admitted = completed + shed + in-flight",
/// with shedding broken out of the admitted count at the offer stage).
pub fn check_serve_conservation(
    offered: u64,
    admitted: u64,
    shed: u64,
    completed: u64,
    queued: u64,
    in_flight: u64,
    at: SimTime,
) -> Option<Violation> {
    if admitted + shed != offered {
        return Some(Violation {
            kind: InvariantKind::ServeConservation,
            at,
            entity: None,
            detail: format!(
                "{offered} offered but {admitted} admitted + {shed} shed = {}",
                admitted + shed
            ),
        });
    }
    if completed + queued + in_flight != admitted {
        return Some(Violation {
            kind: InvariantKind::ServeConservation,
            at,
            entity: None,
            detail: format!(
                "{admitted} admitted but {completed} completed + {queued} queued + \
                 {in_flight} in flight = {}",
                completed + queued + in_flight
            ),
        });
    }
    None
}

/// A chained hash over an episode's event trace.
///
/// After every popped event the explorer feeds the event's encoding into
/// the hasher; the final digest fingerprints the entire run. Two episodes
/// with the same world, seed, and configuration must produce bit-identical
/// digests — the replay-determinism invariant checked by the acceptance
/// suite and the CI sweep.
#[derive(Clone, Debug)]
pub struct TraceHasher {
    state: Digest,
}

impl TraceHasher {
    /// Starts a fresh trace with a fixed domain-separation tag.
    pub fn new() -> Self {
        TraceHasher { state: sha256(b"concilium-dst-trace-v1") }
    }

    /// Absorbs one event: a short label plus its numeric fields.
    pub fn record(&mut self, label: &str, fields: &[u64]) {
        // The hashed byte sequence is exactly `state ‖ len ‖ label ‖ fields`
        // (little-endian lengths/fields). This runs once per popped event,
        // making it the hottest hash in the DST, so the message is
        // assembled in a stack buffer and absorbed in one call — one
        // `update` instead of eight tiny ones — whenever it fits. The
        // fallback streams piecewise; both paths feed the hasher the same
        // bytes, so the digest is identical either way.
        let mut buf = [0u8; 256];
        let need = 40 + label.len() + 8 * fields.len();
        if need <= buf.len() {
            buf[..32].copy_from_slice(&self.state.0);
            buf[32..40].copy_from_slice(&(label.len() as u64).to_le_bytes());
            let mut n = 40;
            buf[n..n + label.len()].copy_from_slice(label.as_bytes());
            n += label.len();
            for f in fields {
                buf[n..n + 8].copy_from_slice(&f.to_le_bytes());
                n += 8;
            }
            self.state = sha256(&buf[..n]);
        } else {
            let mut h = Sha256::new();
            h.update(&self.state.0);
            h.update(&(label.len() as u64).to_le_bytes());
            h.update(label.as_bytes());
            for f in fields {
                h.update(&f.to_le_bytes());
            }
            self.state = h.finalize();
        }
    }

    /// The current digest as lowercase hex.
    pub fn hex(&self) -> String {
        self.state.to_hex()
    }
}

impl Default for TraceHasher {
    fn default() -> Self {
        TraceHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium::blame::blame_from_path_evidence;
    use concilium::verdict::{binomial_tail_at_least, Verdict};
    use concilium_types::LinkId;

    fn ev(parts: &[(u32, &[bool])]) -> Vec<LinkEvidence> {
        parts
            .iter()
            .map(|&(l, obs)| LinkEvidence { link: LinkId(l), observations: obs.to_vec() })
            .collect()
    }

    #[test]
    fn naive_blame_matches_production_combinator() {
        let cases: Vec<Vec<LinkEvidence>> = vec![
            ev(&[(0, &[true, true, false]), (1, &[false, false])]),
            ev(&[(0, &[true; 8])]),
            ev(&[(0, &[false; 5]), (1, &[true]), (2, &[])]),
            ev(&[(0, &[]), (1, &[])]),
            ev(&[]),
            ev(&[(3, &[true, false, true, false, true])]),
        ];
        for accuracy in [0.6, 0.75, 0.9, 0.99] {
            for case in &cases {
                let oracle = naive_blame(case, accuracy);
                let production = blame_from_path_evidence(case, accuracy);
                assert!(
                    (oracle - production).abs() < 1e-12,
                    "accuracy {accuracy}: oracle {oracle} vs production {production}"
                );
            }
        }
    }

    #[test]
    fn naive_blame_no_evidence_is_full_blame() {
        assert_eq!(naive_blame(&[], 0.9), 1.0);
        assert_eq!(naive_blame(&ev(&[(0, &[]), (1, &[])]), 0.9), 1.0);
    }

    #[test]
    fn check_blame_flags_mutant_and_range() {
        let evidence = ev(&[(0, &[false, false, false])]);
        let t = SimTime::from_secs(5);
        // Production value passes.
        let good = blame_from_path_evidence(&evidence, 0.9);
        assert!(check_blame(&evidence, 0.9, good, true, t).is_none());
        // A broken combinator that always returns 1.0 is caught.
        let v = check_blame(&evidence, 0.9, 1.0, true, t).expect("mutant must be flagged");
        assert_eq!(v.kind, InvariantKind::BlameOracle);
        // Out-of-range values are caught even with the oracle disabled.
        let v = check_blame(&evidence, 0.9, 1.5, false, t).expect("range must be checked");
        assert_eq!(v.kind, InvariantKind::BlameRange);
    }

    #[test]
    fn binomial_oracle_matches_production() {
        for &w in &[1usize, 10, 50, 100] {
            for m in 0..=w {
                for &p in &[0.0, 0.018, 0.1, 0.5, 0.938, 1.0] {
                    let oracle = oracle_binomial_tail_at_least(w, m, p);
                    let production = binomial_tail_at_least(w, m, p);
                    assert!(
                        (oracle - production).abs() < 1e-9,
                        "w={w} m={m} p={p}: oracle {oracle} vs production {production}"
                    );
                }
            }
        }
    }

    #[test]
    fn window_recount_accepts_consistent_window() {
        let mut w = VerdictWindow::new(10);
        for i in 0..25 {
            w.push(if i % 3 == 0 { Verdict::Guilty } else { Verdict::Innocent });
            assert!(check_window(&w, SimTime::ZERO).is_none());
        }
    }

    #[test]
    fn conservation_catches_loss_and_double_count() {
        let t = SimTime::ZERO;
        assert!(check_conservation(10, 4, 3, 3, t).is_none());
        let lost = check_conservation(10, 4, 3, 2, t).expect("lost message");
        assert_eq!(lost.kind, InvariantKind::RetryConservation);
        let doubled = check_conservation(10, 5, 3, 3, t).expect("double count");
        assert_eq!(doubled.kind, InvariantKind::RetryConservation);
    }

    #[test]
    fn metrics_conservation_flags_disagreement() {
        let mut r = concilium_obs::Registry::new();
        r.inc("episode.sent", 5);
        r.inc("episode.expired", 2);
        let t = SimTime::from_secs(9);
        assert!(check_metrics_conservation(
            &r,
            &[("episode.sent", 5), ("episode.expired", 2)],
            t
        )
        .is_none());
        let v = check_metrics_conservation(&r, &[("episode.sent", 6)], t)
            .expect("mismatch must be flagged");
        assert_eq!(v.kind, InvariantKind::MetricsConservation);
        assert!(v.detail.contains("episode.sent"));
        // A missing counter reads as zero and is compared like any other.
        let v = check_metrics_conservation(&r, &[("episode.judged", 1)], t)
            .expect("absent counter vs nonzero oracle must be flagged");
        assert_eq!(v.kind, InvariantKind::MetricsConservation);
    }

    #[test]
    fn serve_conservation_catches_leaks_at_both_stages() {
        let t = SimTime::from_secs(3);
        assert!(check_serve_conservation(10, 8, 2, 5, 2, 1, t).is_none());
        // A report offered but neither admitted nor shed: silent drop.
        let v = check_serve_conservation(10, 7, 2, 5, 1, 1, t).expect("offer leak");
        assert_eq!(v.kind, InvariantKind::ServeConservation);
        assert!(v.detail.contains("offered"));
        // An admitted report that vanished from the pipeline.
        let v = check_serve_conservation(10, 8, 2, 5, 1, 1, t).expect("admit leak");
        assert_eq!(v.kind, InvariantKind::ServeConservation);
        assert!(v.detail.contains("admitted"));
    }

    #[test]
    fn trace_hasher_is_deterministic_and_order_sensitive() {
        let run = |events: &[(&str, u64)]| {
            let mut h = TraceHasher::new();
            for &(label, x) in events {
                h.record(label, &[x]);
            }
            h.hex()
        };
        let a = run(&[("send", 1), ("ack", 1), ("send", 2)]);
        let b = run(&[("send", 1), ("ack", 1), ("send", 2)]);
        let c = run(&[("send", 1), ("send", 2), ("ack", 1)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(run(&[("send", 1)]), run(&[("send", 2)]));
    }
}
