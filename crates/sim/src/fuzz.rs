//! Coverage-guided scenario fuzzer (DESIGN.md §15).
//!
//! The static grid in [`EpisodeConfig::standard_grid`] exercises four
//! hand-picked fault regimes. This module *searches* the scenario space
//! instead: a seeded loop mutates episode configurations, runs full DST
//! episodes under the whole invariant suite, and keeps a corpus of the
//! episodes that exercised behaviour nothing before them did.
//!
//! *Coverage* is the [`CoverageSet`] extracted from the typed trace
//! events and metrics counters the `concilium-obs` layer records:
//! event-kind bigrams, log2-bucketed shed/retry/revision counters, and
//! verdict-window shapes. An episode is *novel* — and enters the corpus —
//! iff it exercises at least one bucket the accumulated set lacks.
//!
//! Determinism contract: a fuzz run is a pure function of
//! `(world, FuzzConfig, EpisodeOptions)`. Candidate generation happens in
//! deterministic batches on the master RNG; batch evaluation fans out via
//! `concilium-par`, whose submission-order merge makes corpus admission,
//! coverage accumulation, and every reported failure bit-identical at any
//! [`FuzzConfig::jobs`] value. Corpus entries serialize as replayable
//! [`EpisodeConfig::to_literal`] documents (committed under
//! `tests/corpus/`) and are minimised with a *coverage-preserving* variant
//! of the greedy shrinker: a shrink step is accepted only while the
//! episode still passes and still exercises every bucket the entry was
//! admitted for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use concilium_obs::CoverageSet;
use concilium_topology::TransitStubConfig;
use concilium_types::SimDuration;

use crate::explorer::{
    dst_world, run_episode, shrink_candidates, EpisodeConfig, EpisodeOptions, EpisodeReport,
    FailingCase,
};
use crate::{SimConfig, SimWorld};

/// Salt separating the fuzzer's master RNG stream from the episode
/// streams it seeds.
const FUZZ_SALT: u64 = 0x2545_f491_4f6c_dd1d;

/// How many violations are greedily shrunk before further findings are
/// reported as-is (shrinking replays whole episodes and is the expensive
/// part of a fuzz run).
const MAX_SHRUNK_FAILURES: usize = 3;

/// Which prebuilt world a fuzz run — and every corpus entry it emits —
/// drives. Recorded in corpus headers so replay rebuilds the same world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorldKind {
    /// The standard DST world: [`dst_world`], densely probed, fully
    /// meshed at tiny scale.
    Dst,
    /// The AS-like shared-bottleneck world: [`bottleneck_world`], a
    /// narrow transit core every overlay path funnels through, probed
    /// sparsely enough that adaptive adversaries find unobserved windows.
    Bottleneck,
}

impl WorldKind {
    /// Stable name used in corpus headers and `--world` flags.
    pub fn name(self) -> &'static str {
        match self {
            WorldKind::Dst => "dst",
            WorldKind::Bottleneck => "bottleneck",
        }
    }

    /// Parses a [`WorldKind::name`] rendering.
    pub fn parse(s: &str) -> Option<WorldKind> {
        match s {
            "dst" => Some(WorldKind::Dst),
            "bottleneck" => Some(WorldKind::Bottleneck),
            _ => None,
        }
    }

    /// Builds the world this kind denotes.
    pub fn build(self, world_seed: u64) -> SimWorld {
        match self {
            WorldKind::Dst => dst_world(world_seed),
            WorldKind::Bottleneck => bottleneck_world(world_seed),
        }
    }
}

/// An AS-like shared-bottleneck world: three core routers and four
/// transit routers funnel every inter-stub overlay path through a handful
/// of shared links, so distinct overlay routes overlap heavily and the
/// probe/route matrix develops multi-link ambiguity classes (serial links
/// no probe set can tell apart). Probing is deliberately sparse —
/// [`SimConfig::max_probe_time`] of 240 s against a 10-minute run — so
/// adaptive droppers (which forward only while a peer probed nearby) find
/// genuine unobserved windows to misbehave in.
///
/// Ambient failures are tuned like [`dst_world`]'s: rare and long-lived,
/// so an expired message implies a sustained outage that dominates its Δ
/// evidence window.
pub fn bottleneck_world(world_seed: u64) -> SimWorld {
    let mut cfg = SimConfig::tiny();
    cfg.topology = TransitStubConfig {
        core: 3,
        core_chords_per_router: 1.0,
        transit: 4,
        transit_sibling_prob: 0.2,
        stubs: 36,
        stub_sibling_prob: 0.1,
        stub_multihome_prob: 0.0,
        end_hosts: 48,
    };
    cfg.overlay_fraction = 0.25;
    cfg.max_probe_time = SimDuration::from_secs(240);
    cfg.failure.fraction_bad = 0.02;
    cfg.failure.mean_downtime = SimDuration::from_secs(240);
    cfg.failure.sd_downtime = SimDuration::from_secs(30);
    cfg.failure.min_downtime = SimDuration::from_secs(180);
    let mut rng = StdRng::seed_from_u64(world_seed);
    SimWorld::build(cfg, &mut rng)
}

/// Knobs of a fuzz run.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Total episodes to run (the budget), counting the seed round.
    /// Shrinking replays (corpus minimisation, failure minimisation) are
    /// not charged against it.
    pub budget: usize,
    /// Master seed: drives parent selection, mutation, and episode seeds.
    pub seed: u64,
    /// Worker threads for batch evaluation. Any value reproduces the
    /// `jobs = 1` run bit-identically.
    pub jobs: usize,
    /// Candidates generated per synchronisation point. Generation is
    /// batched so the master RNG never races evaluation: larger batches
    /// fan out better, smaller ones react to fresh coverage sooner.
    pub batch: usize,
    /// Whether admitted corpus entries are minimised with the
    /// coverage-preserving shrinker before being returned.
    pub shrink_corpus: bool,
    /// Keep at most this many corpus entries (the most novel survive).
    pub max_corpus: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            budget: 200,
            seed: 1,
            jobs: 1,
            batch: 16,
            shrink_corpus: true,
            max_corpus: 32,
        }
    }
}

/// A corpus entry: one passing episode that exercised novel coverage,
/// replayable from `(world kind, world seed, config, seed)` alone.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Stable entry name (`fuzz-NNNNNN`, the episode's budget index).
    pub name: String,
    /// The (possibly shrunk) episode configuration.
    pub config: EpisodeConfig,
    /// The episode seed.
    pub seed: u64,
    /// Trace hash of the replayed episode — the regression fingerprint.
    pub trace_hash: String,
    /// The coverage buckets this entry contributed when admitted (the
    /// buckets its shrunk form is required to preserve).
    pub novel: Vec<u64>,
}

impl CorpusEntry {
    /// Renders the entry as a committed corpus file: a header naming the
    /// world and fingerprint, then the replayable config literal.
    pub fn render(&self, world: WorldKind, world_seed: u64) -> String {
        let novel = self
            .novel
            .iter()
            .map(|b| format!("{b:#018x}"))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "// fuzz-corpus-v1: {}\n// world: {}\n// world-seed: {}\n// trace: {}\n\
             // novel-buckets: {}\n{}\n",
            self.name,
            world.name(),
            world_seed,
            self.trace_hash,
            novel,
            self.config.to_literal(self.seed)
        )
    }

    /// Parses a [`CorpusEntry::render`] document back into a replayable
    /// entry plus the world it ran on.
    pub fn parse(text: &str) -> Result<(CorpusEntry, WorldKind, u64), String> {
        let mut name = None;
        let mut world = None;
        let mut world_seed = None;
        let mut trace_hash = None;
        let mut novel = Vec::new();
        for raw in text.lines() {
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix("// fuzz-corpus-v1:") {
                name = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("// world:") {
                let w = rest.trim();
                world =
                    Some(WorldKind::parse(w).ok_or_else(|| format!("unknown world `{w}`"))?);
            } else if let Some(rest) = line.strip_prefix("// world-seed:") {
                world_seed =
                    Some(rest.trim().parse::<u64>().map_err(|e| format!("world-seed: {e}"))?);
            } else if let Some(rest) = line.strip_prefix("// trace:") {
                trace_hash = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("// novel-buckets:") {
                for tok in rest.split_whitespace() {
                    let hex = tok.strip_prefix("0x").unwrap_or(tok);
                    novel.push(
                        u64::from_str_radix(&hex.replace('_', ""), 16)
                            .map_err(|e| format!("novel-buckets: {e}"))?,
                    );
                }
            }
        }
        let (config, seed) = EpisodeConfig::parse_literal(text)?;
        Ok((
            CorpusEntry {
                name: name.ok_or("missing `// fuzz-corpus-v1:` header")?,
                config,
                seed,
                trace_hash: trace_hash.ok_or("missing `// trace:` header")?,
                novel,
            },
            world.ok_or("missing `// world:` header")?,
            world_seed.ok_or("missing `// world-seed:` header")?,
        ))
    }
}

/// Outcome of a fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Episodes actually run against the budget.
    pub episodes_run: usize,
    /// Union of every episode's coverage.
    pub coverage: CoverageSet,
    /// Passing episodes that contributed novel coverage, in admission
    /// order (minimised when [`FuzzConfig::shrink_corpus`] is set).
    pub corpus: Vec<CorpusEntry>,
    /// Invariant violations found, in discovery order; the first
    /// [`MAX_SHRUNK_FAILURES`] are greedily shrunk.
    pub failures: Vec<FailingCase>,
}

/// Extracts the coverage of one finished episode.
pub fn episode_coverage(report: &EpisodeReport) -> CoverageSet {
    let mut cov = CoverageSet::new();
    cov.absorb_trace(report.trace.events());
    cov.absorb_metrics(&report.metrics);
    cov
}

/// The accumulated coverage of a static grid over a seed list — the
/// baseline the fuzzer is measured against.
pub fn grid_coverage(
    world: &SimWorld,
    grid: &[(&str, EpisodeConfig)],
    seeds: &[u64],
    opts: &EpisodeOptions,
) -> CoverageSet {
    let mut cov = CoverageSet::new();
    for (_, cfg) in grid {
        for &seed in seeds {
            let report = run_episode(world, cfg, seed, opts);
            cov.absorb(&episode_coverage(&report));
        }
    }
    cov
}

/// One multiplicative-or-resample edit of a probability-like knob,
/// clamped to `[0, hi]`.
fn scale_knob(rng: &mut StdRng, v: f64, hi: f64) -> f64 {
    match rng.gen_range(0u8..4) {
        0 => 0.0,
        1 => if v == 0.0 { hi / 8.0 } else { (v * 0.5).max(1e-3) },
        2 => if v == 0.0 { hi / 4.0 } else { (v * 2.0).min(hi) },
        _ => rng.gen_range(0.0..=hi),
    }
}

fn pick_duration(rng: &mut StdRng, choices: &[u64]) -> SimDuration {
    SimDuration::from_secs(choices[rng.gen_range(0..choices.len())])
}

/// Applies 1–3 random edits to a parent configuration. Every knob the
/// grid exposes is mutable, plus the four extended families the grid
/// never reaches: coalition accusers, adaptive droppers, Gilbert–Elliott
/// bursts, and eclipse-style churn storms.
fn mutate(parent: &EpisodeConfig, rng: &mut StdRng) -> EpisodeConfig {
    let mut cfg = parent.clone();
    let edits = 1 + rng.gen_range(0usize..3);
    for _ in 0..edits {
        match rng.gen_range(0u8..17) {
            0 => cfg.faults.drop_probability = scale_knob(rng, cfg.faults.drop_probability, 0.4),
            1 => {
                cfg.faults.ack_drop_probability =
                    scale_knob(rng, cfg.faults.ack_drop_probability, 0.4);
            }
            2 => {
                cfg.faults.duplicate_probability =
                    scale_knob(rng, cfg.faults.duplicate_probability, 0.3);
            }
            3 => {
                cfg.faults.reorder_probability =
                    scale_knob(rng, cfg.faults.reorder_probability, 0.3);
            }
            4 => {
                cfg.faults.extra_latency_max =
                    SimDuration::from_millis([0, 20, 50, 200][rng.gen_range(0usize..4)]);
            }
            5 => {
                cfg.faults.churn.crash_fraction =
                    scale_knob(rng, cfg.faults.churn.crash_fraction, 0.4);
                if cfg.faults.churn.crash_fraction > 0.0 {
                    cfg.faults.churn.min_outage = SimDuration::from_secs(10);
                    cfg.faults.churn.mean_outage = pick_duration(rng, &[60, 90, 150, 240]);
                }
            }
            6 => {
                // Toggle or retune the Gilbert–Elliott channel.
                if cfg.faults.burst.enabled() && rng.gen_bool(0.25) {
                    cfg.faults.burst = crate::BurstConfig::default();
                } else {
                    cfg.faults.burst.good_to_bad = rng.gen_range(0.01..=0.2);
                    cfg.faults.burst.bad_to_good = rng.gen_range(0.05..=0.5);
                    cfg.faults.burst.bad_loss = rng.gen_range(0.3..=1.0);
                }
            }
            7 => {
                // Toggle or retune the eclipse-style storm.
                if cfg.faults.storm.fraction > 0.0 && rng.gen_bool(0.25) {
                    cfg.faults.storm = crate::StormConfig::default();
                } else {
                    cfg.faults.storm.fraction = rng.gen_range(0.1..=0.8);
                    cfg.faults.storm.start_frac = rng.gen_range(0.1..=0.8);
                    cfg.faults.storm.duration = pick_duration(rng, &[30, 60, 120, 240]);
                }
            }
            8 => cfg.dropper_fraction = scale_knob(rng, cfg.dropper_fraction, 0.4),
            9 => cfg.colluder_fraction = scale_knob(rng, cfg.colluder_fraction, 0.4),
            10 => cfg.withholder_fraction = scale_knob(rng, cfg.withholder_fraction, 0.4),
            11 => cfg.delayer_fraction = scale_knob(rng, cfg.delayer_fraction, 0.4),
            12 => cfg.replayer_fraction = scale_knob(rng, cfg.replayer_fraction, 0.4),
            13 => cfg.coalition_fraction = scale_knob(rng, cfg.coalition_fraction, 0.4),
            14 => cfg.adaptive_fraction = scale_knob(rng, cfg.adaptive_fraction, 0.4),
            15 => cfg.flows = [2, 4, 6, 9, 12][rng.gen_range(0usize..5)],
            _ => cfg.messages_per_flow = [10, 20, 40, 60][rng.gen_range(0usize..4)],
        }
    }
    cfg
}

/// Minimises a corpus entry while preserving the coverage it was admitted
/// for: a shrink candidate is accepted iff its episode still passes every
/// invariant *and* still exercises each of the entry's novel buckets.
fn shrink_corpus_entry(
    world: &SimWorld,
    entry: CorpusEntry,
    opts: &EpisodeOptions,
) -> CorpusEntry {
    let mut best = entry.config;
    let mut best_hash = entry.trace_hash;
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&best) {
            let report = run_episode(world, &cand, entry.seed, opts);
            if report.violation.is_some() {
                continue;
            }
            let cov = episode_coverage(&report);
            if entry.novel.iter().all(|&b| cov.contains(b)) {
                best = cand;
                best_hash = report.trace_hash;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    CorpusEntry { config: best, trace_hash: best_hash, ..entry }
}

/// Runs the coverage-guided fuzz loop.
///
/// The first batch is the extended grid itself (so the fuzzer starts from
/// every known family); each later batch mutates parents drawn from the
/// pool of coverage-contributing configurations. Results are merged in
/// submission order, so the outcome is bit-identical at any
/// [`FuzzConfig::jobs`] value.
pub fn fuzz(world: &SimWorld, cfg: &FuzzConfig, opts: &EpisodeOptions) -> FuzzOutcome {
    let _span = concilium_obs::span("fuzz.run");
    let mut master = StdRng::seed_from_u64(cfg.seed ^ FUZZ_SALT);
    let mut coverage = CoverageSet::new();
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut failures: Vec<FailingCase> = Vec::new();
    let mut pool: Vec<EpisodeConfig> =
        EpisodeConfig::extended_grid().into_iter().map(|(_, c)| c).collect();
    let mut episodes_run = 0usize;

    // Seed round: one episode per extended-grid arm.
    let mut pending: Vec<(EpisodeConfig, u64)> =
        pool.iter().map(|c| (c.clone(), master.gen())).collect();

    while episodes_run < cfg.budget {
        pending.truncate(cfg.budget - episodes_run);
        if pending.is_empty() {
            break;
        }
        let evaluated: Vec<(EpisodeReport, CoverageSet)> =
            concilium_par::par_map(cfg.jobs.max(1), &pending, |_, (c, s)| {
                let report = run_episode(world, c, *s, opts);
                let cov = episode_coverage(&report);
                (report, cov)
            });
        // Submission-order merge: admissions, coverage, and failures land
        // identically regardless of worker count.
        for ((c, s), (report, cov)) in pending.iter().zip(evaluated) {
            episodes_run += 1;
            let novel = cov.difference(&coverage);
            coverage.absorb(&cov);
            if let Some(violation) = report.violation {
                let case = FailingCase {
                    name: format!("fuzz-{episodes_run:06}"),
                    config: c.clone(),
                    seed: *s,
                    violation,
                    trace_hash: report.trace_hash,
                    trace: report.trace,
                };
                let case = if failures.len() < MAX_SHRUNK_FAILURES {
                    crate::explorer::shrink(world, &case, opts)
                } else {
                    case
                };
                failures.push(case);
                continue;
            }
            if !novel.is_empty() {
                corpus.push(CorpusEntry {
                    name: format!("fuzz-{episodes_run:06}"),
                    config: c.clone(),
                    seed: *s,
                    trace_hash: report.trace_hash,
                    novel,
                });
                pool.push(c.clone());
            }
        }
        // Next batch: mutations of coverage-contributing parents.
        pending = (0..cfg.batch.max(1))
            .map(|_| {
                let parent = &pool[master.gen_range(0..pool.len())];
                let child = mutate(parent, &mut master);
                let seed: u64 = master.gen();
                (child, seed)
            })
            .collect();
    }

    // Keep the most novel entries, then minimise the survivors.
    if corpus.len() > cfg.max_corpus {
        let mut ranked: Vec<(usize, usize)> =
            corpus.iter().enumerate().map(|(i, e)| (e.novel.len(), i)).collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut keep: Vec<usize> = ranked.into_iter().take(cfg.max_corpus).map(|(_, i)| i).collect();
        keep.sort_unstable();
        let mut kept = Vec::with_capacity(keep.len());
        for (i, entry) in corpus.into_iter().enumerate() {
            if keep.binary_search(&i).is_ok() {
                kept.push(entry);
            }
        }
        corpus = kept;
    }
    if cfg.shrink_corpus {
        corpus = corpus
            .into_iter()
            .map(|entry| shrink_corpus_entry(world, entry, opts))
            .collect();
    }

    FuzzOutcome { episodes_run, coverage, corpus, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(budget: usize, jobs: usize) -> FuzzConfig {
        FuzzConfig { budget, jobs, batch: 8, shrink_corpus: false, max_corpus: 64, seed: 9 }
    }

    fn quick_opts() -> EpisodeOptions {
        EpisodeOptions { tomography_stripes: 60, ..EpisodeOptions::default() }
    }

    #[test]
    fn fuzz_is_bit_identical_across_jobs() {
        let world = dst_world(77);
        let opts = quick_opts();
        let a = fuzz(&world, &quick_cfg(20, 1), &opts);
        let b = fuzz(&world, &quick_cfg(20, 4), &opts);
        assert_eq!(a.episodes_run, b.episodes_run);
        assert_eq!(a.coverage, b.coverage, "coverage must not depend on worker count");
        assert_eq!(a.corpus.len(), b.corpus.len());
        for (x, y) in a.corpus.iter().zip(&b.corpus) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.trace_hash, y.trace_hash);
            assert_eq!(x.novel, y.novel);
        }
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn seed_round_populates_corpus_and_coverage() {
        let world = dst_world(77);
        let out = fuzz(&world, &quick_cfg(7, 2), &quick_opts());
        assert_eq!(out.episodes_run, 7, "budget is an exact episode count");
        assert!(!out.coverage.is_empty());
        // The very first episode always contributes everything it covers.
        assert!(!out.corpus.is_empty());
        assert!(out.failures.is_empty(), "extended grid arms must pass: {:?}", out.failures);
    }

    #[test]
    fn corpus_entry_round_trips_through_render_and_parse() {
        let entry = CorpusEntry {
            name: "fuzz-000004".into(),
            config: EpisodeConfig::coalition_storm(),
            seed: 1234,
            trace_hash: "deadbeef".into(),
            novel: vec![3, 0xfeed_face_cafe_f00d],
        };
        let text = entry.render(WorldKind::Bottleneck, 42);
        let (parsed, world, world_seed) = CorpusEntry::parse(&text).expect("round trip");
        assert_eq!(parsed.name, entry.name);
        assert_eq!(world, WorldKind::Bottleneck);
        assert_eq!(world_seed, 42);
        assert_eq!(parsed.seed, entry.seed);
        assert_eq!(parsed.trace_hash, entry.trace_hash);
        assert_eq!(parsed.novel, entry.novel);
        assert_eq!(
            parsed.config.to_literal(parsed.seed),
            entry.config.to_literal(entry.seed),
            "parsed config must re-render identically"
        );
    }

    #[test]
    fn bottleneck_world_funnels_paths_and_probes_sparsely() {
        let world = bottleneck_world(7);
        assert!(world.num_hosts() >= 6, "got {} hosts", world.num_hosts());
        assert_eq!(world.config().max_probe_time, SimDuration::from_secs(240));
        // The narrow core forces shared links: at least one host's probe
        // tree must contain a logical edge spanning several IP links — a
        // multi-link ambiguity class.
        let shared = (0..world.num_hosts()).any(|h| {
            let logical = world.tree(h).logical();
            (0..logical.num_edges()).any(|e| logical.edge_links(e).len() > 1)
        });
        assert!(shared, "bottleneck world must exhibit multi-link ambiguity classes");
    }

    #[test]
    fn mutation_is_deterministic_and_stays_valid() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut cfg_a = EpisodeConfig::default();
        let mut cfg_b = EpisodeConfig::default();
        for _ in 0..200 {
            cfg_a = mutate(&cfg_a, &mut a);
            cfg_b = mutate(&cfg_b, &mut b);
            assert_eq!(cfg_a.to_literal(0), cfg_b.to_literal(0));
            // Every mutant must satisfy FaultPlan's validation.
            let plan = crate::FaultPlan::new(cfg_a.faults, 1, 8, SimDuration::from_secs(600));
            assert!(plan.is_ok(), "mutant rejected: {:?}", cfg_a.faults);
        }
    }
}
