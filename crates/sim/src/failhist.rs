//! An indexed, query-efficient view of a link-failure history.

use std::collections::HashMap;

use concilium_topology::LinkStatus;
use concilium_types::{LinkId, SimTime};

/// Per-link sorted downtime intervals, supporting O(log n) "was this link
/// up at time t?" queries. Built once after the failure phase of a
/// simulation; the blame evaluation of Figure 5 issues millions of these
/// queries.
#[derive(Clone, Debug, Default)]
pub struct IndexedHistory {
    /// link → sorted, disjoint `(from, to)` downtime intervals.
    intervals: HashMap<LinkId, Vec<(SimTime, SimTime)>>,
}

impl IndexedHistory {
    /// Builds the index from a finished [`LinkStatus`].
    ///
    /// Open downtimes (links still down) are closed at `end_of_time`.
    pub fn from_status(status: &LinkStatus, num_links: usize, end_of_time: SimTime) -> Self {
        let mut intervals: HashMap<LinkId, Vec<(SimTime, SimTime)>> = HashMap::new();
        for &(link, from, to) in status.history() {
            intervals.entry(link).or_default().push((from, to));
        }
        // Close still-open downtimes.
        for i in 0..num_links {
            let link = LinkId(i as u32);
            if let Some(from) = status.down_since(link) {
                intervals.entry(link).or_default().push((from, end_of_time));
            }
        }
        for v in intervals.values_mut() {
            v.sort();
        }
        IndexedHistory { intervals }
    }

    /// Whether `link` was up at time `t`. Interval ends are exclusive (a
    /// link repaired at `t` is up at `t`), matching
    /// [`LinkStatus::was_up`].
    pub fn was_up(&self, link: LinkId, t: SimTime) -> bool {
        let Some(iv) = self.intervals.get(&link) else {
            return true;
        };
        // Find the last interval starting at or before t.
        let idx = iv.partition_point(|&(from, _)| from <= t);
        if idx == 0 {
            return true;
        }
        let (_, to) = iv[idx - 1];
        t >= to
    }

    /// Whether every link of `links` was up at `t`.
    pub fn path_up(&self, links: &[LinkId], t: SimTime) -> bool {
        links.iter().all(|&l| self.was_up(l, t))
    }

    /// Number of links with any recorded downtime.
    pub fn links_with_failures(&self) -> usize {
        self.intervals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_topology::LinkStatus;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn matches_linear_scan() {
        let mut status = LinkStatus::new(3);
        status.fail(LinkId(0), t(10));
        status.repair(LinkId(0), t(20));
        status.fail(LinkId(0), t(50));
        status.repair(LinkId(0), t(60));
        status.fail(LinkId(1), t(30)); // still open

        let idx = IndexedHistory::from_status(&status, 3, t(100));
        for probe in [0u64, 5, 10, 15, 20, 25, 49, 50, 55, 60, 99] {
            assert_eq!(
                idx.was_up(LinkId(0), t(probe)),
                status.was_up(LinkId(0), t(probe)),
                "link 0 at {probe}s"
            );
        }
        // Open interval: down from 30 onwards.
        assert!(idx.was_up(LinkId(1), t(29)));
        assert!(!idx.was_up(LinkId(1), t(31)));
        assert!(!idx.was_up(LinkId(1), t(99)));
        // Untouched link always up.
        assert!(idx.was_up(LinkId(2), t(50)));
        assert_eq!(idx.links_with_failures(), 2);
    }

    #[test]
    fn path_up_requires_all_links() {
        let mut status = LinkStatus::new(2);
        status.fail(LinkId(0), t(10));
        status.repair(LinkId(0), t(20));
        let idx = IndexedHistory::from_status(&status, 2, t(100));
        assert!(idx.path_up(&[LinkId(0), LinkId(1)], t(5)));
        assert!(!idx.path_up(&[LinkId(0), LinkId(1)], t(15)));
        assert!(idx.path_up(&[LinkId(1)], t(15)));
        assert!(idx.path_up(&[], t(15)));
    }

    #[test]
    fn boundary_semantics_match() {
        let mut status = LinkStatus::new(1);
        status.fail(LinkId(0), t(10));
        status.repair(LinkId(0), t(20));
        let idx = IndexedHistory::from_status(&status, 1, t(100));
        // Down at failure instant, up at repair instant.
        assert!(!idx.was_up(LinkId(0), t(10)));
        assert!(idx.was_up(LinkId(0), t(20)));
    }
}
