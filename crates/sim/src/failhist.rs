//! An indexed, query-efficient view of a link-failure history.

use std::collections::HashMap;

use concilium_topology::LinkStatus;
use concilium_types::{LinkId, SimTime};

/// Per-link sorted downtime intervals, supporting O(log n) "was this link
/// up at time t?" queries. Built once after the failure phase of a
/// simulation; the blame evaluation of Figure 5 issues millions of these
/// queries.
#[derive(Clone, Debug, Default)]
pub struct IndexedHistory {
    /// link → sorted, disjoint `(from, to)` downtime intervals.
    intervals: HashMap<LinkId, Vec<(SimTime, SimTime)>>,
}

impl IndexedHistory {
    /// Builds the index from a finished [`LinkStatus`].
    ///
    /// Open downtimes (links still down) are closed at `end_of_time`.
    pub fn from_status(status: &LinkStatus, num_links: usize, end_of_time: SimTime) -> Self {
        let mut intervals: HashMap<LinkId, Vec<(SimTime, SimTime)>> = HashMap::new();
        for &(link, from, to) in status.history() {
            intervals.entry(link).or_default().push((from, to));
        }
        // Close still-open downtimes.
        for i in 0..num_links {
            let link = LinkId(i as u32);
            if let Some(from) = status.down_since(link) {
                intervals.entry(link).or_default().push((from, end_of_time));
            }
        }
        for v in intervals.values_mut() {
            v.sort();
        }
        IndexedHistory { intervals }
    }

    /// Whether `link` was up at time `t`. Interval ends are exclusive (a
    /// link repaired at `t` is up at `t`), matching
    /// [`LinkStatus::was_up`].
    pub fn was_up(&self, link: LinkId, t: SimTime) -> bool {
        let Some(iv) = self.intervals.get(&link) else {
            return true;
        };
        // Find the last interval starting at or before t.
        let idx = iv.partition_point(|&(from, _)| from <= t);
        if idx == 0 {
            return true;
        }
        let (_, to) = iv[idx - 1];
        t >= to
    }

    /// Whether every link of `links` was up at `t`.
    pub fn path_up(&self, links: &[LinkId], t: SimTime) -> bool {
        links.iter().all(|&l| self.was_up(l, t))
    }

    /// Number of links with any recorded downtime.
    pub fn links_with_failures(&self) -> usize {
        self.intervals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_topology::LinkStatus;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn matches_linear_scan() {
        let mut status = LinkStatus::new(3);
        status.fail(LinkId(0), t(10));
        status.repair(LinkId(0), t(20));
        status.fail(LinkId(0), t(50));
        status.repair(LinkId(0), t(60));
        status.fail(LinkId(1), t(30)); // still open

        let idx = IndexedHistory::from_status(&status, 3, t(100));
        for probe in [0u64, 5, 10, 15, 20, 25, 49, 50, 55, 60, 99] {
            assert_eq!(
                idx.was_up(LinkId(0), t(probe)),
                status.was_up(LinkId(0), t(probe)),
                "link 0 at {probe}s"
            );
        }
        // Open interval: down from 30 onwards.
        assert!(idx.was_up(LinkId(1), t(29)));
        assert!(!idx.was_up(LinkId(1), t(31)));
        assert!(!idx.was_up(LinkId(1), t(99)));
        // Untouched link always up.
        assert!(idx.was_up(LinkId(2), t(50)));
        assert_eq!(idx.links_with_failures(), 2);
    }

    #[test]
    fn path_up_requires_all_links() {
        let mut status = LinkStatus::new(2);
        status.fail(LinkId(0), t(10));
        status.repair(LinkId(0), t(20));
        let idx = IndexedHistory::from_status(&status, 2, t(100));
        assert!(idx.path_up(&[LinkId(0), LinkId(1)], t(5)));
        assert!(!idx.path_up(&[LinkId(0), LinkId(1)], t(15)));
        assert!(idx.path_up(&[LinkId(1)], t(15)));
        assert!(idx.path_up(&[], t(15)));
    }

    #[test]
    fn boundary_semantics_match() {
        let mut status = LinkStatus::new(1);
        status.fail(LinkId(0), t(10));
        status.repair(LinkId(0), t(20));
        let idx = IndexedHistory::from_status(&status, 1, t(100));
        // Down at failure instant, up at repair instant.
        assert!(!idx.was_up(LinkId(0), t(10)));
        assert!(idx.was_up(LinkId(0), t(20)));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        const NUM_LINKS: usize = 5;

        /// Replays a random event stream against a [`LinkStatus`]: each
        /// word decodes to a strictly increasing timestamp, a link, and a
        /// fail-or-repair op (both idempotent, so arbitrary sequences are
        /// valid). Returns the oracle and an `end_of_time` strictly after
        /// every event.
        fn build(events: &[u64]) -> (LinkStatus, SimTime) {
            let mut status = LinkStatus::new(NUM_LINKS);
            let mut now = 0u64;
            for &e in events {
                now += e % 97 + 1;
                let link = LinkId(((e >> 8) % NUM_LINKS as u64) as u32);
                if (e >> 16) & 1 == 0 {
                    status.fail(link, SimTime::from_secs(now));
                } else {
                    status.repair(link, SimTime::from_secs(now));
                }
            }
            (status, SimTime::from_secs(now + 50))
        }

        /// Every instant worth probing: each interval boundary and its
        /// neighbourhood, clamped below `end`.
        fn boundary_probes(status: &LinkStatus, end: SimTime) -> Vec<SimTime> {
            let mut probes = vec![SimTime::ZERO];
            let mut push = |s: u64| {
                for q in [s.saturating_sub(1), s, s + 1] {
                    let t = SimTime::from_secs(q);
                    if t < end {
                        probes.push(t);
                    }
                }
            };
            for &(_, from, to) in status.history() {
                push(from.as_micros() / 1_000_000);
                push(to.as_micros() / 1_000_000);
            }
            for l in 0..NUM_LINKS {
                if let Some(from) = status.down_since(LinkId(l as u32)) {
                    push(from.as_micros() / 1_000_000);
                }
            }
            probes
        }

        proptest! {
            #[test]
            fn indexed_queries_match_the_linear_oracle(
                events in proptest::collection::vec(any::<u64>(), 1..80),
                samples in proptest::collection::vec(any::<u64>(), 1..40),
            ) {
                let (status, end) = build(&events);
                let idx = IndexedHistory::from_status(&status, NUM_LINKS, end);
                let end_secs = end.as_micros() / 1_000_000;
                let mut probes = boundary_probes(&status, end);
                probes.extend(samples.iter().map(|&s| SimTime::from_secs(s % end_secs)));
                for &t in &probes {
                    for l in 0..NUM_LINKS {
                        let link = LinkId(l as u32);
                        prop_assert_eq!(
                            idx.was_up(link, t),
                            status.was_up(link, t),
                            "link {} at {}", l, t
                        );
                    }
                }
            }

            #[test]
            fn open_downtimes_close_exactly_at_end_of_time(
                events in proptest::collection::vec(any::<u64>(), 1..80),
            ) {
                let (status, end) = build(&events);
                let idx = IndexedHistory::from_status(&status, NUM_LINKS, end);
                let last = end.saturating_sub(concilium_types::SimDuration::from_secs(1));
                for l in 0..NUM_LINKS {
                    let link = LinkId(l as u32);
                    if status.down_since(link).is_some() {
                        // Still down just before the horizon...
                        prop_assert!(!idx.was_up(link, last));
                        // ...and the closing interval end is exclusive,
                        // like every repair.
                        prop_assert!(idx.was_up(link, end));
                    }
                }
            }

            #[test]
            fn path_up_agrees_with_per_link_queries(
                events in proptest::collection::vec(any::<u64>(), 1..60),
                sample in any::<u64>(),
            ) {
                let (status, end) = build(&events);
                let idx = IndexedHistory::from_status(&status, NUM_LINKS, end);
                let t = SimTime::from_secs(sample % (end.as_micros() / 1_000_000));
                let links: Vec<LinkId> =
                    (0..NUM_LINKS).map(|l| LinkId(l as u32)).collect();
                let each = links.iter().all(|&l| idx.was_up(l, t));
                prop_assert_eq!(idx.path_up(&links, t), each);
            }
        }
    }
}
