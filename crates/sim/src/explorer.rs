//! Seeded fault-plan explorer: full diagnose–accuse–revise episodes under
//! deterministic fault injection, with whole-system invariant checking and
//! counterexample shrinking.
//!
//! An *episode* replays the Concilium protocol over a pre-built
//! [`SimWorld`]: stewards send application messages along overlay routes,
//! retransmit unacknowledged ones with capped backoff, judge the first
//! forwarder when every attempt expires, accumulate verdicts in m-of-w
//! windows, and escalate to formal accusations that walk the §3.5
//! revision chain and land in the accusation DHT. A seeded
//! [`FaultPlan`] perturbs the transport (drops, duplicates, reordering,
//! latency, churn) and an [`AdversarySets`] assigns Byzantine roles.
//! Every invariant from [`crate::invariants`] is evaluated as the episode
//! runs; the first violation aborts it.
//!
//! Episodes are bit-deterministic: the same world, seed, and
//! [`EpisodeConfig`] produce the same chained trace hash. The
//! [`explore`] sweep runs a seed × configuration grid and reports the
//! first failure; [`shrink`] then minimises the failing configuration —
//! dropping adversary roles, zeroing fault knobs, halving magnitudes and
//! churn windows — until no smaller configuration reproduces the same
//! invariant violation, and prints a copy-pasteable reproducer.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use concilium::ack::{Ack, AckBody, RetransmitQueue};
use concilium::blame::{blame_from_path_evidence, LinkEvidence};
use concilium::dht::AccusationDht;
use concilium::retry::RetryPolicy;
use concilium::revision::{AccusationChain, HandoffOutcome};
use concilium::verdict::VerdictWindow;
use concilium::{
    Accusation, ConciliumConfig, DropContext, ForwardingCommitment, Verdict,
};
use concilium_tomography::infer::infer_pass_rates_batch;
use concilium_tomography::oracle::oracle_pass_rates;
use concilium_tomography::probe::simulate_stripes;
use concilium_tomography::{
    infer_pass_rates_tolerant_batch, AmbiguityClasses, InferScratch, LinkObservation,
    PartialProbeRecord, TomographySnapshot,
};
use concilium_obs::{
    ppb, CausalIndex, CausalLedger, EntityRef, FaultKind, LinkObsSummary, Registry, Trace,
    TraceEvent,
};
use concilium_types::{Id, LinkId, MsgId, SimDuration, SimTime};

use crate::invariants::{
    check_blame, check_conservation, check_metrics_conservation, check_window, InvariantKind,
    TraceHasher, Violation,
};
use crate::faults::{BurstConfig, StormConfig};
use crate::{
    AdversarySets, ChurnConfig, EventQueue, FaultConfig, FaultPlan, RouteFate, SimWorld,
};

/// The blame combinator under test: maps per-link evidence and the probe
/// accuracy to a blame value. Production episodes use
/// [`concilium::blame::blame_from_path_evidence`]; tests can substitute a
/// deliberately broken mutant to prove the invariants catch it.
pub type BlameFn = fn(&[LinkEvidence], f64) -> f64;

fn production_blame(evidence: &[LinkEvidence], accuracy: f64) -> f64 {
    blame_from_path_evidence(evidence, accuracy)
}

const RTT: SimDuration = SimDuration::from_millis(200);

/// Retry schedule for application messages. The horizon (~50–100 s of
/// backoff across five retries) is deliberately long relative to probe
/// cadence but short relative to ambient outages: a message that exhausts
/// it has seen the network fail persistently, so the evidence gathered at
/// the midpoint of its lifetime squarely covers the outage.
/// Midpoint of a failed message's lifetime: the Δ evidence window around
/// it covers the span in which every delivery attempt failed.
fn evidence_time(sent_at: SimTime, expired_at: SimTime) -> SimTime {
    SimTime::from_micros((sent_at.as_micros() + expired_at.as_micros()) / 2)
}

fn data_retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_delay: SimDuration::from_secs(4),
        multiplier: 2.0,
        max_delay: SimDuration::from_secs(40),
        jitter: 0.5,
    }
}
const ADV_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const MSG_SALT: u64 = 0xd1b5_4a32_d192_ed03;
const TOMO_SALT: u64 = 0x517c_c1b7_2722_0a95;

/// One arm of the fault grid: a [`FaultConfig`] for the transport plus
/// adversary-role fractions and the message workload.
#[derive(Clone, Debug)]
pub struct EpisodeConfig {
    /// Transport and churn fault knobs, passed to [`FaultPlan::new`].
    pub faults: FaultConfig,
    /// Fraction of hosts that silently drop forwarded messages.
    pub dropper_fraction: f64,
    /// Fraction of hosts that lie in probe snapshots to frame innocents.
    pub colluder_fraction: f64,
    /// Fraction of hosts that withhold acknowledgments.
    pub withholder_fraction: f64,
    /// Fraction of hosts whose snapshots arrive stale by the delayer shift.
    pub delayer_fraction: f64,
    /// Fraction of hosts that replay very old snapshots.
    pub replayer_fraction: f64,
    /// Fraction of hosts in a colluding accuser coalition: they withhold
    /// acknowledgments *and* flip §4.3 probe evidence to shield members
    /// and frame non-members.
    pub coalition_fraction: f64,
    /// Fraction of hosts that drop forwarded messages only while no
    /// routing peer has probed near the current virtual time
    /// (see [`crate::ADAPTIVE_GUARD`]).
    pub adaptive_fraction: f64,
    /// Number of (source, destination) flows to drive.
    pub flows: usize,
    /// Messages sent per flow, spread across the run.
    pub messages_per_flow: usize,
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        EpisodeConfig {
            faults: FaultConfig::default(),
            dropper_fraction: 0.0,
            colluder_fraction: 0.0,
            withholder_fraction: 0.0,
            delayer_fraction: 0.0,
            replayer_fraction: 0.0,
            coalition_fraction: 0.0,
            adaptive_fraction: 0.0,
            flows: 6,
            messages_per_flow: 40,
        }
    }
}

impl EpisodeConfig {
    /// No injected faults at all: only the world's ambient link failures.
    pub fn transparent() -> Self {
        EpisodeConfig::default()
    }

    /// A lossy, jittery transport with no Byzantine hosts.
    pub fn lossy() -> Self {
        EpisodeConfig {
            faults: FaultConfig {
                drop_probability: 0.15,
                ack_drop_probability: 0.15,
                duplicate_probability: 0.05,
                reorder_probability: 0.05,
                extra_latency_max: SimDuration::from_millis(50),
                ..FaultConfig::default()
            },
            ..EpisodeConfig::default()
        }
    }

    /// Heavy crash/restart churn with a clean transport.
    pub fn churning() -> Self {
        EpisodeConfig {
            faults: FaultConfig {
                churn: ChurnConfig {
                    crash_fraction: 0.25,
                    mean_outage: SimDuration::from_secs(90),
                    min_outage: SimDuration::from_secs(10),
                },
                ..FaultConfig::default()
            },
            ..EpisodeConfig::default()
        }
    }

    /// A mixed Byzantine population over a mildly lossy transport.
    pub fn byzantine() -> Self {
        EpisodeConfig {
            faults: FaultConfig {
                drop_probability: 0.05,
                ack_drop_probability: 0.05,
                ..FaultConfig::default()
            },
            dropper_fraction: 0.2,
            withholder_fraction: 0.1,
            delayer_fraction: 0.1,
            replayer_fraction: 0.1,
            ..EpisodeConfig::default()
        }
    }

    /// A colluding accuser coalition riding an eclipse-style churn storm:
    /// a shared outage window takes a third of the crashing population
    /// down together while coalition members withhold acks and flip
    /// evidence for each other.
    pub fn coalition_storm() -> Self {
        EpisodeConfig {
            faults: FaultConfig {
                churn: ChurnConfig {
                    crash_fraction: 0.3,
                    mean_outage: SimDuration::from_secs(120),
                    min_outage: SimDuration::from_secs(20),
                },
                storm: StormConfig {
                    fraction: 0.5,
                    start_frac: 0.4,
                    duration: SimDuration::from_secs(120),
                },
                ..FaultConfig::default()
            },
            coalition_fraction: 0.2,
            ..EpisodeConfig::default()
        }
    }

    /// Adaptive adversaries that forward faithfully whenever a routing
    /// peer has probed nearby in virtual time and drop otherwise. Inert
    /// on densely probed worlds by design — pair with a sparse-probe
    /// world (see `fuzz::bottleneck_world`) to expose the behaviour.
    pub fn adaptive() -> Self {
        EpisodeConfig {
            adaptive_fraction: 0.2,
            ..EpisodeConfig::default()
        }
    }

    /// Gilbert–Elliott bursty loss: a clean channel that occasionally
    /// slips into a bad state eating ~80% of traffic for a handful of
    /// decisions at a time.
    pub fn bursty() -> Self {
        EpisodeConfig {
            faults: FaultConfig {
                burst: BurstConfig {
                    good_to_bad: 0.05,
                    bad_to_good: 0.2,
                    bad_loss: 0.8,
                },
                ..FaultConfig::default()
            },
            ..EpisodeConfig::default()
        }
    }

    /// The standard four-arm sweep grid used by the acceptance suite and
    /// the CI `dst-sweep` driver.
    pub fn standard_grid() -> Vec<(&'static str, EpisodeConfig)> {
        vec![
            ("transparent", EpisodeConfig::transparent()),
            ("lossy", EpisodeConfig::lossy()),
            ("churning", EpisodeConfig::churning()),
            ("byzantine", EpisodeConfig::byzantine()),
        ]
    }

    /// The standard grid plus the fuzzer's extended adversary families:
    /// coalition-plus-storm, adaptive droppers, and bursty loss.
    pub fn extended_grid() -> Vec<(&'static str, EpisodeConfig)> {
        let mut grid = EpisodeConfig::standard_grid();
        grid.push(("coalition-storm", EpisodeConfig::coalition_storm()));
        grid.push(("adaptive", EpisodeConfig::adaptive()));
        grid.push(("bursty", EpisodeConfig::bursty()));
        grid
    }

    /// Whether every lost message is explained by the network alone:
    /// no plan-level transport loss of messages or acknowledgments.
    /// Duplication, reordering, latency, and churn do not lose messages,
    /// so they keep a configuration network-only.
    ///
    /// The no-false-blame invariant is enforced exactly in this regime.
    /// Under ambient transport loss, Concilium's §3.4 evidence can
    /// legitimately convict an honest forwarder (the paper's false-positive
    /// rate, bounded by the m-of-w window) — those standings are counted
    /// in [`EpisodeStats::false_standings`] instead.
    ///
    /// Bursty (Gilbert–Elliott) loss is transport loss, and hosts that
    /// lie in probe snapshots — plain colluders and accuser coalitions
    /// alike — flip the very evidence the no-false-blame check relies on
    /// (§4.3's documented attack, not a bug in the checker), so all
    /// three disqualify a configuration from strict enforcement.
    pub fn network_only(&self) -> bool {
        self.faults.drop_probability == 0.0
            && self.faults.ack_drop_probability == 0.0
            && !(self.faults.burst.enabled() && self.faults.burst.bad_loss > 0.0)
            && self.colluder_fraction == 0.0
            && self.coalition_fraction == 0.0
    }

    /// Number of fault dimensions that are active (non-zero).
    pub fn active_dimensions(&self) -> usize {
        let f = &self.faults;
        [
            f.drop_probability > 0.0,
            f.ack_drop_probability > 0.0,
            f.duplicate_probability > 0.0,
            f.reorder_probability > 0.0,
            f.extra_latency_max > SimDuration::ZERO,
            f.churn.crash_fraction > 0.0,
            f.burst.enabled(),
            f.storm.fraction > 0.0,
            self.dropper_fraction > 0.0,
            self.colluder_fraction > 0.0,
            self.withholder_fraction > 0.0,
            self.delayer_fraction > 0.0,
            self.replayer_fraction > 0.0,
            self.coalition_fraction > 0.0,
            self.adaptive_fraction > 0.0,
        ]
        .iter()
        .filter(|&&active| active)
        .count()
    }

    /// Renders the configuration as a copy-pasteable Rust literal with the
    /// seed that reproduces the episode.
    pub fn to_literal(&self, seed: u64) -> String {
        let f = &self.faults;
        format!(
            "// seed: {seed}\n\
             EpisodeConfig {{\n\
             \x20   faults: FaultConfig {{\n\
             \x20       drop_probability: {:?},\n\
             \x20       ack_drop_probability: {:?},\n\
             \x20       duplicate_probability: {:?},\n\
             \x20       reorder_probability: {:?},\n\
             \x20       extra_latency_max: SimDuration::from_micros({}),\n\
             \x20       reorder_delay: SimDuration::from_micros({}),\n\
             \x20       delayer_shift: SimDuration::from_micros({}),\n\
             \x20       replay_age: SimDuration::from_micros({}),\n\
             \x20       churn: ChurnConfig {{\n\
             \x20           crash_fraction: {:?},\n\
             \x20           mean_outage: SimDuration::from_micros({}),\n\
             \x20           min_outage: SimDuration::from_micros({}),\n\
             \x20       }},\n\
             \x20       burst: BurstConfig {{\n\
             \x20           good_to_bad: {:?},\n\
             \x20           bad_to_good: {:?},\n\
             \x20           bad_loss: {:?},\n\
             \x20       }},\n\
             \x20       storm: StormConfig {{\n\
             \x20           fraction: {:?},\n\
             \x20           start_frac: {:?},\n\
             \x20           duration: SimDuration::from_micros({}),\n\
             \x20       }},\n\
             \x20   }},\n\
             \x20   dropper_fraction: {:?},\n\
             \x20   colluder_fraction: {:?},\n\
             \x20   withholder_fraction: {:?},\n\
             \x20   delayer_fraction: {:?},\n\
             \x20   replayer_fraction: {:?},\n\
             \x20   coalition_fraction: {:?},\n\
             \x20   adaptive_fraction: {:?},\n\
             \x20   flows: {},\n\
             \x20   messages_per_flow: {},\n\
             }}",
            f.drop_probability,
            f.ack_drop_probability,
            f.duplicate_probability,
            f.reorder_probability,
            f.extra_latency_max.as_micros(),
            f.reorder_delay.as_micros(),
            f.delayer_shift.as_micros(),
            f.replay_age.as_micros(),
            f.churn.crash_fraction,
            f.churn.mean_outage.as_micros(),
            f.churn.min_outage.as_micros(),
            f.burst.good_to_bad,
            f.burst.bad_to_good,
            f.burst.bad_loss,
            f.storm.fraction,
            f.storm.start_frac,
            f.storm.duration.as_micros(),
            self.dropper_fraction,
            self.colluder_fraction,
            self.withholder_fraction,
            self.delayer_fraction,
            self.replayer_fraction,
            self.coalition_fraction,
            self.adaptive_fraction,
            self.flows,
            self.messages_per_flow,
        )
    }

    /// Parses a [`EpisodeConfig::to_literal`] rendering (plus its
    /// `// seed:` header) back into a configuration and seed.
    ///
    /// The parser is line-based and keyed on field names, so it tolerates
    /// surrounding comment lines (corpus headers) and indentation changes,
    /// but rejects unknown fields — a corpus entry written by a newer
    /// serializer fails loudly instead of replaying the wrong scenario.
    pub fn parse_literal(text: &str) -> Result<(EpisodeConfig, u64), String> {
        fn f64v(key: &str, v: &str) -> Result<f64, String> {
            v.parse::<f64>().map_err(|e| format!("{key}: {e}"))
        }
        fn usizev(key: &str, v: &str) -> Result<usize, String> {
            v.parse::<usize>().map_err(|e| format!("{key}: {e}"))
        }
        fn durv(key: &str, v: &str) -> Result<SimDuration, String> {
            let inner = v
                .strip_prefix("SimDuration::from_micros(")
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| format!("{key}: expected SimDuration::from_micros(..), got {v}"))?;
            Ok(SimDuration::from_micros(
                inner.parse().map_err(|e| format!("{key}: {e}"))?,
            ))
        }

        let mut cfg = EpisodeConfig::default();
        let mut seed: Option<u64> = None;
        let mut depth = 0usize;
        for raw in text.lines() {
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix("// seed:") {
                seed = Some(rest.trim().parse().map_err(|e| format!("seed: {e}"))?);
                continue;
            }
            if line.starts_with("//") || line.is_empty() {
                continue;
            }
            // Field lines only count inside the `EpisodeConfig` literal;
            // anything before it (corpus headers) or after it (a
            // reproducer's rendered event trace) is ignored.
            if depth == 0 {
                if line.starts_with("EpisodeConfig") && line.ends_with('{') {
                    depth = 1;
                }
                continue;
            }
            depth = (depth + line.matches('{').count())
                .saturating_sub(line.matches('}').count());
            let Some((key, value)) = line.split_once(':') else {
                continue; // closing braces
            };
            let key = key.trim();
            let value = value.trim().trim_end_matches(',');
            if value.ends_with('{') {
                continue; // struct openers like `faults: FaultConfig {`
            }
            let f = &mut cfg.faults;
            match key {
                "drop_probability" => f.drop_probability = f64v(key, value)?,
                "ack_drop_probability" => f.ack_drop_probability = f64v(key, value)?,
                "duplicate_probability" => f.duplicate_probability = f64v(key, value)?,
                "reorder_probability" => f.reorder_probability = f64v(key, value)?,
                "extra_latency_max" => f.extra_latency_max = durv(key, value)?,
                "reorder_delay" => f.reorder_delay = durv(key, value)?,
                "delayer_shift" => f.delayer_shift = durv(key, value)?,
                "replay_age" => f.replay_age = durv(key, value)?,
                "crash_fraction" => f.churn.crash_fraction = f64v(key, value)?,
                "mean_outage" => f.churn.mean_outage = durv(key, value)?,
                "min_outage" => f.churn.min_outage = durv(key, value)?,
                "good_to_bad" => f.burst.good_to_bad = f64v(key, value)?,
                "bad_to_good" => f.burst.bad_to_good = f64v(key, value)?,
                "bad_loss" => f.burst.bad_loss = f64v(key, value)?,
                "fraction" => f.storm.fraction = f64v(key, value)?,
                "start_frac" => f.storm.start_frac = f64v(key, value)?,
                "duration" => f.storm.duration = durv(key, value)?,
                "dropper_fraction" => cfg.dropper_fraction = f64v(key, value)?,
                "colluder_fraction" => cfg.colluder_fraction = f64v(key, value)?,
                "withholder_fraction" => cfg.withholder_fraction = f64v(key, value)?,
                "delayer_fraction" => cfg.delayer_fraction = f64v(key, value)?,
                "replayer_fraction" => cfg.replayer_fraction = f64v(key, value)?,
                "coalition_fraction" => cfg.coalition_fraction = f64v(key, value)?,
                "adaptive_fraction" => cfg.adaptive_fraction = f64v(key, value)?,
                "flows" => cfg.flows = usizev(key, value)?,
                "messages_per_flow" => cfg.messages_per_flow = usizev(key, value)?,
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        let seed = seed.ok_or_else(|| "missing `// seed:` header".to_string())?;
        Ok((cfg, seed))
    }
}

/// Hooks controlling how an episode evaluates the system under test.
#[derive(Clone, Copy, Debug)]
pub struct EpisodeOptions {
    /// The blame combinator the judging nodes use.
    pub blame_fn: BlameFn,
    /// Whether every blame value is cross-checked against the direct
    /// Eq. 2–3 oracle (disable to let a broken combinator run long enough
    /// to be caught downstream by the no-false-blame invariant).
    pub check_blame_oracle: bool,
    /// Stripes per tree for the end-of-episode tomography cross-check.
    pub tomography_stripes: usize,
    /// Ring capacity of each episode's structured trace. The ring keeps
    /// the newest events, so a failing episode always retains the causal
    /// tail that led to the violation. 0 disables recording (the trace
    /// hash is unaffected — it absorbs every event either way).
    pub trace_capacity: usize,
    /// Whether [`explore_jobs`] keeps the traces of *passing* episodes in
    /// [`ExploreOutcome::traces`] (for `--trace-out` exports). Failing
    /// episodes always keep theirs.
    pub collect_traces: bool,
}

impl Default for EpisodeOptions {
    fn default() -> Self {
        EpisodeOptions {
            blame_fn: production_blame,
            check_blame_oracle: true,
            tomography_stripes: 300,
            trace_capacity: concilium_obs::DEFAULT_TRACE_CAPACITY,
            collect_traces: false,
        }
    }
}

/// Event and bookkeeping counters accumulated over an episode.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpisodeStats {
    /// Events popped from the queue.
    pub events: usize,
    /// Messages registered with the steward.
    pub sent: usize,
    /// Sends skipped because a route host was crashed at send time.
    pub churn_blocked: usize,
    /// Messages that truly reached their destination.
    pub delivered: usize,
    /// Messages settled by a verified acknowledgment.
    pub settled: usize,
    /// Messages whose retry schedule expired.
    pub expired: usize,
    /// Expiries that produced a verdict.
    pub judged: usize,
    /// Guilty verdicts among them.
    pub guilty: usize,
    /// Expiries skipped: route too short to have an intermediate hop.
    pub skipped_short_route: usize,
    /// Expiries skipped: the first forwarder never received the message,
    /// so no forwarding commitment exists to judge against.
    pub skipped_uncommitted: usize,
    /// Expiries skipped: some path link had no admissible evidence.
    pub skipped_uncovered: usize,
    /// Expiries skipped: the judging steward was crashed.
    pub skipped_judge_down: usize,
    /// Verdict windows that crossed the accusation quota.
    pub escalations: usize,
    /// Escalations dissolved (ack proof or network exoneration).
    pub dissolved: usize,
    /// Accusation chains built, verified, and stored.
    pub chains_checked: usize,
    /// Revision handoffs lost to the transport (chain stands early).
    pub handoffs_withheld: usize,
    /// DHT writes that reported a typed quorum failure.
    pub dht_refused: usize,
    /// Honest hosts left standing as culprits under ambient transport
    /// loss — the paper's false-positive rate, a violation only in
    /// network-only configurations.
    pub false_standings: usize,
}

impl EpisodeStats {
    /// Adds another episode's counters into this accumulator.
    pub fn absorb(&mut self, other: &EpisodeStats) {
        self.events += other.events;
        self.sent += other.sent;
        self.churn_blocked += other.churn_blocked;
        self.delivered += other.delivered;
        self.settled += other.settled;
        self.expired += other.expired;
        self.judged += other.judged;
        self.guilty += other.guilty;
        self.skipped_short_route += other.skipped_short_route;
        self.skipped_uncommitted += other.skipped_uncommitted;
        self.skipped_uncovered += other.skipped_uncovered;
        self.skipped_judge_down += other.skipped_judge_down;
        self.escalations += other.escalations;
        self.dissolved += other.dissolved;
        self.chains_checked += other.chains_checked;
        self.handoffs_withheld += other.handoffs_withheld;
        self.dht_refused += other.dht_refused;
        self.false_standings += other.false_standings;
    }
}

/// The result of running one episode.
#[derive(Clone, Debug)]
pub struct EpisodeReport {
    /// The first invariant violation, if any.
    pub violation: Option<Violation>,
    /// Chained hash of the full event trace (replay fingerprint).
    pub trace_hash: String,
    /// Counters accumulated while the episode ran.
    pub stats: EpisodeStats,
    /// Ring-buffered structured trace — the newest
    /// [`EpisodeOptions::trace_capacity`] events in virtual-time order.
    pub trace: Trace,
    /// Event-derived metrics for this episode. Every key is a function of
    /// virtual time and the seed, so registries from the same episode are
    /// identical regardless of worker count.
    pub metrics: Registry,
}

/// A seed + configuration pair that violated an invariant.
#[derive(Clone, Debug)]
pub struct FailingCase {
    /// Grid-arm name (suffixed `-shrunk` after minimisation).
    pub name: String,
    /// The failing configuration.
    pub config: EpisodeConfig,
    /// The seed that reproduces it.
    pub seed: u64,
    /// What broke.
    pub violation: Violation,
    /// Trace hash of the violating run.
    pub trace_hash: String,
    /// Structured trace of the violating run — the causal tail that led
    /// to the violation, rendered by [`FailingCase::reproducer`].
    pub trace: Trace,
}

impl FailingCase {
    /// A copy-pasteable reproducer: the violation, the trace hash, the
    /// configuration literal with its seed, the virtual-time event trace
    /// leading up to the violation, and the causal chain for the violated
    /// entity (not just the ring tail — the cause→effect path from the
    /// entity's originating send/admit to its last event).
    pub fn reproducer(&self) -> String {
        let mut out = format!(
            "// {}: {}\n// trace: {}\n{}",
            self.name,
            self.violation,
            self.trace_hash,
            self.config.to_literal(self.seed)
        );
        if !self.trace.is_empty() {
            out.push_str("\n\n// events leading to the violation:\n");
            out.push_str(&self.trace.render());
            if let Some((entity, chain)) = self.causal_tail() {
                out.push_str(&format!("\n\n// causal chain for {entity}:\n"));
                out.push_str(&chain);
            }
        }
        out
    }

    /// The violated entity and its rendered causal chain, rebuilt from
    /// the ring-buffered trace. When the violation does not name an
    /// entity, the last entity-bearing event's first key stands in. A
    /// ring that evicted the chain's root is tolerated: the chain simply
    /// starts at the oldest surviving link.
    fn causal_tail(&self) -> Option<(EntityRef, String)> {
        let entity = self.violation.entity.or_else(|| {
            let mut keys = Vec::new();
            let mut last = None;
            for traced in self.trace.events() {
                concilium_obs::entities(&traced.event, &mut keys);
                if let Some(&first) = keys.first() {
                    last = Some(first);
                }
            }
            last
        })?;
        let index = CausalIndex::from_events(self.trace.events());
        let &last = index.timeline(&entity).last()?;
        let mut rendered = String::new();
        for i in index.chain(last) {
            rendered.push_str("// ");
            rendered.push_str(&index.events()[i].render());
            rendered.push('\n');
        }
        Some((entity, rendered))
    }
}

/// One passing episode's trace, kept by [`explore_jobs`] when
/// [`EpisodeOptions::collect_traces`] is set (for `--trace-out` exports).
#[derive(Clone, Debug)]
pub struct EpisodeTrace {
    /// Grid-arm name.
    pub name: String,
    /// Episode seed.
    pub seed: u64,
    /// The episode's structured trace.
    pub trace: Trace,
}

/// Outcome of a seed × configuration sweep.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Episodes completed (including the failing one, if any).
    pub episodes_run: usize,
    /// The first failing case found, stopping the sweep.
    pub failure: Option<FailingCase>,
    /// Counters summed over every episode run.
    pub totals: EpisodeStats,
    /// Chained hash over every episode's trace hash, in sweep submission
    /// order. Two sweeps over the same grid and seeds are bit-identical
    /// iff their digests match — the equality CI checks between `--jobs 1`
    /// and `--jobs N` runs.
    pub trace_digest: String,
    /// Per-episode metrics merged in submission order (counters add,
    /// gauges keep the maximum), so the merged registry is independent of
    /// worker count.
    pub metrics: Registry,
    /// Every episode's trace in submission order, populated only when
    /// [`EpisodeOptions::collect_traces`] is set.
    pub traces: Vec<EpisodeTrace>,
}

/// Builds the canonical DST world: [`crate::SimConfig::tiny`] with link
/// repairs fast enough to matter inside the ten-minute run.
///
/// The paper's ambient failure model (5% of links bad, 15-minute mean
/// downtime) never repairs a link within a tiny run, which starves the
/// protocol: multi-hop routes that start dark stay dark, nothing is
/// delivered or acknowledged, and stewardship never escalates. DST wants
/// the opposite — every protocol path exercised — so the explorer's world
/// keeps the depth-weighted failure process but makes outages short and
/// rarer (2% of links, ~60-second downtime).
pub fn dst_world(world_seed: u64) -> SimWorld {
    let mut cfg = crate::SimConfig::tiny();
    cfg.failure.fraction_bad = 0.02;
    // Outages must outlast the episode retry horizon: an expired message
    // then implies a *sustained* outage, one long enough to dominate the
    // Δ evidence window, so tolerant rebuttals reliably exonerate honest
    // forwarders instead of drowning the down-link in pre-outage samples.
    cfg.failure.mean_downtime = SimDuration::from_secs(240);
    cfg.failure.sd_downtime = SimDuration::from_secs(30);
    cfg.failure.min_downtime = SimDuration::from_secs(180);
    let mut rng = StdRng::seed_from_u64(world_seed);
    SimWorld::build(cfg, &mut rng)
}

/// Runs one episode of `cfg` with `seed` over `world` and reports the
/// first invariant violation, the trace hash, and the episode counters.
pub fn run_episode(
    world: &SimWorld,
    cfg: &EpisodeConfig,
    seed: u64,
    opts: &EpisodeOptions,
) -> EpisodeReport {
    Episode::new(world, cfg, seed, opts).run()
}

/// Sweeps `grid` × `seeds` in order, stopping at the first violation.
///
/// Serial shorthand for [`explore_jobs`] with one worker.
pub fn explore(
    world: &SimWorld,
    grid: &[(&str, EpisodeConfig)],
    seeds: &[u64],
    opts: &EpisodeOptions,
) -> ExploreOutcome {
    explore_jobs(world, grid, seeds, opts, 1)
}

/// Sweeps `grid` × `seeds` on up to `jobs` workers, stopping at the first
/// violation, with output bit-identical to the serial sweep.
///
/// Episodes are independent (each builds its own RNG from its seed and
/// borrows the immutable world), so they are farmed out with
/// [`concilium_par::par_map_while`]. Cancellation is by *minimum violating
/// index*: workers that find a violation publish their sweep index, tasks
/// beyond the current minimum are skipped, and the result is truncated to
/// the prefix ending at the smallest violating index — exactly the episodes
/// the serial sweep would have run, absorbed in the same order. Everything
/// in the outcome (`episodes_run`, `totals`, the failing case, the trace
/// digest) is therefore independent of `jobs`.
pub fn explore_jobs(
    world: &SimWorld,
    grid: &[(&str, EpisodeConfig)],
    seeds: &[u64],
    opts: &EpisodeOptions,
    jobs: usize,
) -> ExploreOutcome {
    // Grid-major, seed-minor: the same submission order as the serial loop.
    let tasks: Vec<(usize, u64)> = (0..grid.len())
        .flat_map(|arm| seeds.iter().map(move |&seed| (arm, seed)))
        .collect();
    let (reports, stopped) = concilium_par::par_map_while(jobs, &tasks, |_, &(arm, seed)| {
        let report = run_episode(world, &grid[arm].1, seed, opts);
        let stop = report.violation.is_some();
        (report, stop)
    });

    let mut totals = EpisodeStats::default();
    let mut digest = TraceHasher::new();
    let mut failure = None;
    let mut metrics = Registry::new();
    let mut traces = Vec::new();
    for (i, report) in reports.iter().enumerate() {
        totals.absorb(&report.stats);
        digest.record(&report.trace_hash, &[i as u64]);
        metrics.merge(&report.metrics);
        let (arm, seed) = tasks[i];
        if opts.collect_traces {
            traces.push(EpisodeTrace {
                name: grid[arm].0.to_string(),
                seed,
                trace: report.trace.clone(),
            });
        }
        if report.violation.is_some() {
            debug_assert_eq!(Some(i), stopped, "violations only at the stop index");
            failure = Some(FailingCase {
                name: grid[arm].0.to_string(),
                config: grid[arm].1.clone(),
                seed,
                violation: report.violation.clone().expect("checked above"),
                trace_hash: report.trace_hash.clone(),
                trace: report.trace.clone(),
            });
        }
    }
    ExploreOutcome {
        episodes_run: reports.len(),
        failure,
        totals,
        trace_digest: digest.hex(),
        metrics,
        traces,
    }
}

/// Greedily minimises a failing configuration: an edit is kept only if
/// re-running the episode reproduces a violation of the same
/// [`InvariantKind`]. Edits try, in order, to drop whole adversary roles,
/// zero transport knobs, remove churn, halve surviving magnitudes and the
/// churn window, and shrink the message workload.
pub fn shrink(world: &SimWorld, case: &FailingCase, opts: &EpisodeOptions) -> FailingCase {
    let _span = concilium_obs::span("dst.shrink");
    let kind = case.violation.kind;
    let seed = case.seed;
    let mut best = case.config.clone();
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&best) {
            let reproduces = run_episode(world, &cand, seed, opts)
                .violation
                .is_some_and(|v| v.kind == kind);
            if reproduces {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    let report = run_episode(world, &best, seed, opts);
    let violation =
        report.violation.expect("shrinking only accepts reproducing configurations");
    FailingCase {
        name: format!("{}-shrunk", case.name),
        config: best,
        seed,
        violation,
        trace_hash: report.trace_hash,
        trace: report.trace,
    }
}

pub(crate) fn shrink_candidates(cfg: &EpisodeConfig) -> Vec<EpisodeConfig> {
    let mut out: Vec<EpisodeConfig> = Vec::new();
    let mut push = |edit: &dyn Fn(&mut EpisodeConfig)| {
        let mut c = cfg.clone();
        edit(&mut c);
        out.push(c);
    };
    // Drop whole adversary roles.
    if cfg.dropper_fraction > 0.0 {
        push(&|c| c.dropper_fraction = 0.0);
    }
    if cfg.colluder_fraction > 0.0 {
        push(&|c| c.colluder_fraction = 0.0);
    }
    if cfg.withholder_fraction > 0.0 {
        push(&|c| c.withholder_fraction = 0.0);
    }
    if cfg.delayer_fraction > 0.0 {
        push(&|c| c.delayer_fraction = 0.0);
    }
    if cfg.replayer_fraction > 0.0 {
        push(&|c| c.replayer_fraction = 0.0);
    }
    if cfg.coalition_fraction > 0.0 {
        push(&|c| c.coalition_fraction = 0.0);
    }
    if cfg.adaptive_fraction > 0.0 {
        push(&|c| c.adaptive_fraction = 0.0);
    }
    // Zero transport knobs outright.
    if cfg.faults.drop_probability > 0.0 {
        push(&|c| c.faults.drop_probability = 0.0);
    }
    if cfg.faults.ack_drop_probability > 0.0 {
        push(&|c| c.faults.ack_drop_probability = 0.0);
    }
    if cfg.faults.duplicate_probability > 0.0 {
        push(&|c| c.faults.duplicate_probability = 0.0);
    }
    if cfg.faults.reorder_probability > 0.0 {
        push(&|c| c.faults.reorder_probability = 0.0);
    }
    if cfg.faults.extra_latency_max > SimDuration::ZERO {
        push(&|c| c.faults.extra_latency_max = SimDuration::ZERO);
    }
    // Remove churn, the burst channel, and the churn storm.
    if cfg.faults.churn.crash_fraction > 0.0 {
        push(&|c| c.faults.churn.crash_fraction = 0.0);
    }
    if cfg.faults.burst.enabled() {
        push(&|c| c.faults.burst = BurstConfig::default());
    }
    if cfg.faults.storm.fraction > 0.0 {
        push(&|c| c.faults.storm = StormConfig::default());
    }
    // Halve surviving magnitudes (flooring tiny values to zero).
    let halved = |v: f64| if v / 2.0 < 1e-3 { 0.0 } else { v / 2.0 };
    for knob in 0..8 {
        let value = match knob {
            0 => cfg.faults.drop_probability,
            1 => cfg.faults.ack_drop_probability,
            2 => cfg.dropper_fraction,
            3 => cfg.withholder_fraction,
            4 => cfg.delayer_fraction,
            5 => cfg.replayer_fraction,
            6 => cfg.coalition_fraction,
            _ => cfg.adaptive_fraction,
        };
        if value > 0.0 {
            push(&move |c| {
                let slot = match knob {
                    0 => &mut c.faults.drop_probability,
                    1 => &mut c.faults.ack_drop_probability,
                    2 => &mut c.dropper_fraction,
                    3 => &mut c.withholder_fraction,
                    4 => &mut c.delayer_fraction,
                    5 => &mut c.replayer_fraction,
                    6 => &mut c.coalition_fraction,
                    _ => &mut c.adaptive_fraction,
                };
                *slot = halved(*slot);
            });
        }
    }
    // Soften the burst channel without removing it.
    if cfg.faults.burst.enabled() && cfg.faults.burst.bad_loss > 1e-3 {
        push(&|c| c.faults.burst.bad_loss = halved(c.faults.burst.bad_loss));
    }
    // Binary-search the churn window toward the minimum outage.
    let churn = &cfg.faults.churn;
    if churn.crash_fraction > 0.0 && churn.mean_outage > churn.min_outage {
        let target = SimDuration::from_micros(
            (churn.mean_outage.as_micros() / 2).max(churn.min_outage.as_micros()),
        );
        push(&move |c| c.faults.churn.mean_outage = target);
    }
    // Shrink the workload.
    if cfg.flows > 1 {
        push(&|c| c.flows = (c.flows / 2).max(1));
    }
    if cfg.messages_per_flow > 1 {
        push(&|c| c.messages_per_flow = (c.messages_per_flow / 2).max(1));
    }
    out
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MsgState {
    Unregistered,
    InFlight,
    Settled,
    Expired,
}

#[derive(Clone)]
struct MsgInfo {
    msg: MsgId,
    flow: usize,
    sent_at: SimTime,
    /// Full intended overlay route, source first. Shared with the per-flow
    /// route table so cloning a `MsgInfo` (which happens on every ack,
    /// retransmit poll, and judgment) never copies the hop list.
    route: Arc<[usize]>,
    /// Highest route index that actually received the message.
    received_upto: usize,
    truly_delivered: bool,
}

#[derive(Clone)]
enum Ev {
    Send(usize),
    Ack(usize),
    Tick,
}

/// Evidence about one hop's IP path, keeping per-observation origins so
/// escalation can rebuild the signed snapshots behind each observation.
#[derive(Clone, Default)]
struct Gathered {
    per_link: Vec<(LinkId, Vec<(usize, bool)>)>,
}

impl Gathered {
    fn to_link_evidence(&self) -> Vec<LinkEvidence> {
        self.per_link
            .iter()
            .map(|(link, obs)| LinkEvidence {
                link: *link,
                observations: obs.iter().map(|&(_, up)| up).collect(),
            })
            .collect()
    }

    fn covered(&self) -> bool {
        !self.per_link.is_empty() && self.per_link.iter().all(|(_, obs)| !obs.is_empty())
    }
}

struct PairState {
    window: VerdictWindow,
    accused: bool,
}

enum WalkEnd {
    Dissolved,
    Standing(usize),
}

/// Dense per-episode event counters, mirroring the registry keys the old
/// per-event `Registry::inc` calls produced. `flush` recreates *exactly*
/// the same final registry — a key appears iff the old code would have
/// called `inc` for it at least once (note `episode.snapshot_observations`,
/// which the old code created on every batch even when a batch carried
/// zero observations) — so the metrics snapshot crossing the digest
/// boundary is unchanged.
#[derive(Clone, Copy, Debug, Default)]
struct EventTallies {
    sent: u64,
    churn_blocked: u64,
    delivered: u64,
    faults_injected: u64,
    acks: u64,
    retries: u64,
    expired: u64,
    snapshot_batches: u64,
    snapshot_observations: u64,
    judged: u64,
    verdicts: u64,
    guilty_verdicts: u64,
    escalations: u64,
    dissolved: u64,
    standings: u64,
    revisions: u64,
    accusations_stored: u64,
    dht_refused: u64,
    ticks: u64,
}

impl EventTallies {
    /// Folds the tallies into `metrics`, creating exactly the keys the
    /// per-event `inc` calls used to create.
    fn flush(&self, metrics: &mut Registry) {
        let counters = [
            ("episode.sent", self.sent),
            ("episode.churn_blocked", self.churn_blocked),
            ("episode.delivered", self.delivered),
            ("episode.faults_injected", self.faults_injected),
            ("episode.acks", self.acks),
            ("episode.retries", self.retries),
            ("episode.expired", self.expired),
            ("episode.snapshot_batches", self.snapshot_batches),
            ("episode.judged", self.judged),
            ("episode.verdicts", self.verdicts),
            ("episode.guilty_verdicts", self.guilty_verdicts),
            ("episode.escalations", self.escalations),
            ("episode.dissolved", self.dissolved),
            ("episode.standings", self.standings),
            ("episode.revisions", self.revisions),
            ("episode.accusations_stored", self.accusations_stored),
            ("episode.dht_refused", self.dht_refused),
            ("episode.ticks", self.ticks),
        ];
        for (key, value) in counters {
            if value > 0 {
                metrics.inc(key, value);
            }
        }
        // Observation totals were incremented once per gathered batch even
        // when the batch carried zero observations, so the key's existence
        // tracks batches, not the total.
        if self.snapshot_batches > 0 {
            metrics.inc("episode.snapshot_observations", self.snapshot_observations);
        }
    }
}

struct Episode<'w> {
    world: &'w SimWorld,
    opts: &'w EpisodeOptions,
    seed: u64,
    protocol: ConciliumConfig,
    accuracy: f64,
    delta: SimDuration,
    plan: FaultPlan,
    adv: AdversarySets,
    rng: StdRng,
    flows: Vec<(usize, usize)>,
    /// Overlay route per flow, computed once at construction: routing
    /// tables are static within an episode, so every send and retransmit
    /// of a flow takes the same route.
    flow_routes: Vec<Arc<[usize]>>,
    sends: Vec<(usize, SimTime)>,
    infos: Vec<Option<MsgInfo>>,
    msg_state: Vec<MsgState>,
    retrans: RetransmitQueue,
    // Ordered containers only: the episode feeds emit()/trace hashing, so
    // any iterable state on this struct must have a deterministic order
    // (lint rule hash-iter).
    pairs: BTreeMap<(usize, usize), PairState>,
    dht: AccusationDht,
    queue: EventQueue<Ev>,
    ticks: BTreeSet<u64>,
    /// Most recent tick time handed to `ticks` — `schedule_tick` runs
    /// after every popped event and usually re-derives the same next
    /// retransmission time, so this one-entry memo skips the set probe.
    last_tick: Option<u64>,
    hasher: TraceHasher,
    trace: Trace,
    metrics: Registry,
    /// Event counters accumulated densely during the run and folded into
    /// `metrics` once at the end (identical final registry, no per-event
    /// string-keyed map traffic).
    tallies: EventTallies,
    /// Reusable buffer for an event's hash fields (`emit` is per-event).
    fields_scratch: Vec<u64>,
    stats: EpisodeStats,
    violation: Option<Violation>,
    enforce_no_false_blame: bool,
    /// Streaming causal-reachability monitor (DESIGN.md §17): sees every
    /// emitted event — unlike the ring-buffered trace, which may evict
    /// the originating send before its verdict lands.
    causal: CausalLedger,
}

impl<'w> Episode<'w> {
    fn new(
        world: &'w SimWorld,
        cfg: &EpisodeConfig,
        seed: u64,
        opts: &'w EpisodeOptions,
    ) -> Self {
        let n = world.num_hosts();
        let duration = world.config().duration;
        let plan = FaultPlan::new(cfg.faults, seed, n, duration)
            .expect("episode fault configurations are validated by construction");
        let mut arng = StdRng::seed_from_u64(seed ^ ADV_SALT);
        let adv =
            AdversarySets::sample(n, cfg.dropper_fraction, cfg.colluder_fraction, &mut arng)
                .sample_byzantine(
                    n,
                    cfg.withholder_fraction,
                    cfg.delayer_fraction,
                    cfg.replayer_fraction,
                    &mut arng,
                )
                .sample_extended(
                    n,
                    cfg.coalition_fraction,
                    cfg.adaptive_fraction,
                    &mut arng,
                );
        let mut rng = StdRng::seed_from_u64(seed ^ MSG_SALT);

        // Pick flows, preferring routes with at least one intermediate hop
        // so stewardship has a forwarder to judge. The accepting route is
        // kept: it is what every send and retransmit of the flow will take.
        let mut flows = Vec::new();
        let mut flow_routes: Vec<Arc<[usize]>> = Vec::new();
        let max_tries = (n * n * 8).max(64);
        for min_len in [3usize, 2] {
            let mut tries = 0;
            while flows.len() < cfg.flows && tries < max_tries {
                tries += 1;
                let src = rng.gen_range(0..n);
                let dst = rng.gen_range(0..n);
                if src == dst {
                    continue;
                }
                if let Some(route) = world.route(src, world.node(dst).id()) {
                    if route.len() >= min_len && route.last() == Some(&dst) {
                        flows.push((src, dst));
                        flow_routes.push(route.into());
                    }
                }
            }
            if flows.len() >= cfg.flows {
                break;
            }
        }

        // Spread each flow's messages across the run, leaving headroom at
        // the end for the full retry schedule to play out.
        let lo = 60_000_000u64.min(duration.as_micros() / 4);
        let hi = duration.as_micros().saturating_sub(120_000_000).max(lo + 1);
        let mut sends = Vec::new();
        for flow in 0..flows.len() {
            for _ in 0..cfg.messages_per_flow {
                sends.push((flow, SimTime::from_micros(rng.gen_range(lo..hi))));
            }
        }

        let protocol = ConciliumConfig::default();
        // Strict no-false-blame needs two things: losses explained by the
        // network alone (no transport/coalition interference with the
        // evidence), and probing dense enough that every Δ window is
        // expected to hold admissible samples from each vantage. Sparsely
        // probed worlds (inter-probe gaps beyond Δ, e.g. the fuzzer's
        // shared-bottleneck world) legitimately exhibit the paper's
        // false-positive rate even on a clean transport, so their
        // standings are tallied, not treated as violations.
        let enforce_no_false_blame =
            cfg.network_only() && world.config().max_probe_time <= protocol.delta;
        let members = (0..n).map(|h| world.node(h).id()).collect();
        let dht = AccusationDht::new(members, protocol.dht_replication);
        let num_msgs = sends.len();
        Episode {
            world,
            opts,
            seed,
            accuracy: world.config().probe_accuracy,
            delta: protocol.delta,
            protocol,
            plan,
            adv,
            rng,
            flows,
            flow_routes,
            sends,
            infos: vec![None; num_msgs],
            msg_state: vec![MsgState::Unregistered; num_msgs],
            retrans: RetransmitQueue::new(data_retry_policy()),
            pairs: BTreeMap::new(),
            dht,
            queue: EventQueue::new(),
            ticks: BTreeSet::new(),
            last_tick: None,
            hasher: TraceHasher::new(),
            trace: Trace::with_capacity(opts.trace_capacity),
            metrics: Registry::new(),
            tallies: EventTallies::default(),
            fields_scratch: Vec::with_capacity(8),
            stats: EpisodeStats::default(),
            violation: None,
            enforce_no_false_blame,
            causal: CausalLedger::new(),
        }
    }

    /// Records `event` at virtual time `at` in every sink that must
    /// agree: the chained trace hash (canonical encoding: timestamp
    /// first, then the event's own fields), the ring-buffered structured
    /// trace, and the per-episode metrics registry. One choke point makes
    /// the metric counters *derived from* the event stream, which is what
    /// lets [`check_metrics_conservation`] cross-check them against the
    /// episode's independent [`EpisodeStats`] bookkeeping at the end of
    /// the run.
    fn emit(&mut self, at: SimTime, event: TraceEvent) {
        self.fields_scratch.clear();
        self.fields_scratch.push(at.as_micros());
        event.hash_fields(&mut self.fields_scratch);
        self.hasher.record(event.label(), &self.fields_scratch);
        self.count(&event);
        // The causal ledger observes the same stream the hasher absorbs —
        // a read-only derivation, so digests are untouched. An orphan
        // (terminal event unreachable from its send/admit) is an
        // invariant violation like any other.
        if let Some(orphan) = self.causal.observe(&event) {
            if self.violation.is_none() {
                self.violation = Some(Violation {
                    kind: InvariantKind::CausalOrphan,
                    at,
                    detail: orphan.detail,
                    entity: Some(orphan.entity),
                });
            }
        }
        self.trace.push(at.as_micros(), event);
    }

    /// Metric counters derived from the event stream, tallied densely and
    /// folded into the registry by [`EventTallies::flush`] at the end of
    /// the run. Every count here is deterministic — a function of virtual
    /// time and the seed only.
    fn count(&mut self, event: &TraceEvent) {
        let t = &mut self.tallies;
        match event {
            TraceEvent::MessageSent { .. } => t.sent += 1,
            TraceEvent::ChurnBlocked { .. } => t.churn_blocked += 1,
            TraceEvent::RouteOutcome { delivered, .. } => {
                if *delivered {
                    t.delivered += 1;
                }
            }
            TraceEvent::FaultInjected { .. } => t.faults_injected += 1,
            TraceEvent::AckReceived { .. } => t.acks += 1,
            TraceEvent::RetryFired { .. } => t.retries += 1,
            TraceEvent::MessageExpired { .. } => t.expired += 1,
            TraceEvent::SnapshotsGathered { observations, .. } => {
                t.snapshot_batches += 1;
                t.snapshot_observations += *observations;
            }
            TraceEvent::BlameComputed { .. } => t.judged += 1,
            TraceEvent::VerdictAccumulated { guilty, .. } => {
                t.verdicts += 1;
                if *guilty {
                    t.guilty_verdicts += 1;
                }
            }
            TraceEvent::Escalated { .. } => t.escalations += 1,
            TraceEvent::Dissolved { .. } => t.dissolved += 1,
            TraceEvent::CulpritStanding { .. } => t.standings += 1,
            TraceEvent::AccusationRevised { .. } => t.revisions += 1,
            TraceEvent::AccusationStored { .. } => t.accusations_stored += 1,
            TraceEvent::DhtRefused { .. } => t.dht_refused += 1,
            // Service-mode events never occur inside a network episode;
            // they belong to the serve chaos arm's own accounting.
            TraceEvent::ReportAdmitted { .. }
            | TraceEvent::LoadShed { .. }
            | TraceEvent::ReportCompleted { .. }
            | TraceEvent::JournalCommitted { .. }
            | TraceEvent::SupervisorRestarted { .. }
            | TraceEvent::DegradedEntered { .. }
            | TraceEvent::RecoveryReplayed { .. } => {}
            TraceEvent::Tick => t.ticks += 1,
        }
    }

    /// Cross-checks the event-derived metric counters against the
    /// episode's independent [`EpisodeStats`] bookkeeping. The two are
    /// maintained on different code paths, so a disagreement means an
    /// event was emitted without its state transition or vice versa.
    fn metrics_conservation_check(&mut self, at: SimTime) {
        let expected = [
            // A MessageSent event is emitted for every attempt, including
            // the ones the steward then backs off from for churn.
            (
                "episode.sent",
                (self.stats.sent + self.stats.churn_blocked) as u64,
            ),
            ("episode.churn_blocked", self.stats.churn_blocked as u64),
            ("episode.delivered", self.stats.delivered as u64),
            ("episode.expired", self.stats.expired as u64),
            ("episode.judged", self.stats.judged as u64),
            ("episode.guilty_verdicts", self.stats.guilty as u64),
            ("episode.verdicts", self.stats.judged as u64),
            ("episode.escalations", self.stats.escalations as u64),
            ("episode.dissolved", self.stats.dissolved as u64),
            (
                "episode.standings",
                (self.stats.escalations - self.stats.dissolved) as u64,
            ),
            ("episode.dht_refused", self.stats.dht_refused as u64),
            ("episode.retries", self.retrans.attempts_fired()),
        ];
        if let Some(v) = check_metrics_conservation(&self.metrics, &expected, at) {
            self.violation = Some(v);
        }
    }

    fn run(mut self) -> EpisodeReport {
        let _span = concilium_obs::span("episode.run");
        for (idx, &(_, t)) in self.sends.iter().enumerate() {
            self.queue.schedule(t, Ev::Send(idx));
        }
        let mut last_t = SimTime::ZERO;
        while self.violation.is_none() {
            let Some((t, ev)) = self.queue.pop() else { break };
            last_t = t;
            self.stats.events += 1;
            match ev {
                Ev::Send(idx) => self.on_send(idx, t),
                Ev::Ack(idx) => self.on_ack_event(idx, t),
                Ev::Tick => self.emit(t, TraceEvent::Tick),
            }
            if self.violation.is_some() {
                break;
            }
            self.poll_retransmits(t);
            if self.violation.is_some() {
                break;
            }
            if let Some(v) = check_conservation(
                self.stats.sent,
                self.stats.settled,
                self.stats.expired,
                self.retrans.pending(),
                t,
            ) {
                self.violation = Some(v);
                break;
            }
            self.schedule_tick();
        }
        if self.violation.is_none() {
            self.tomography_check();
        }
        // Deterministic end-of-run instruments: the event tallies, queue
        // pressure, and the retry layer's virtual-time bookkeeping.
        // Recorded before the conservation check so a report always
        // carries them.
        self.tallies.flush(&mut self.metrics);
        self.metrics
            .set_gauge("queue.depth_high_water", self.queue.depth_high_water() as f64);
        self.metrics.inc("retry.attempts_fired", self.retrans.attempts_fired());
        self.metrics
            .inc("retry.backoff_total_us", self.retrans.backoff_total().as_micros());
        if self.violation.is_none() {
            self.metrics_conservation_check(last_t);
        }
        EpisodeReport {
            violation: self.violation,
            trace_hash: self.hasher.hex(),
            stats: self.stats,
            trace: self.trace,
            metrics: self.metrics,
        }
    }

    fn on_send(&mut self, idx: usize, t: SimTime) {
        let _span = concilium_obs::span("episode.send");
        let (flow, _) = self.sends[idx];
        let (_, dst) = self.flows[flow];
        let target = self.world.node(dst).id();
        self.emit(t, TraceEvent::MessageSent { msg: idx as u64, flow: flow as u64 });
        let route = self.flow_routes[flow].clone();
        // A message whose route crosses a crashed host cannot gather the
        // commitments stewardship needs; the steward sees the churn and
        // backs off rather than judging anyone.
        if route.iter().any(|&h| !self.plan.host_up(h, t)) {
            self.stats.churn_blocked += 1;
            self.emit(t, TraceEvent::ChurnBlocked { msg: idx as u64 });
            return;
        }
        let outcome = self.world.route_fate_on_route(&route, t, &self.adv);
        let fate = self.plan.fate(t);
        // Plan-level drops model loss on the first overlay hop: the next
        // hop never receives the message and never commits to it.
        let plan_dropped = !fate.delivered();
        let taken = outcome.hops();
        let received_upto = if plan_dropped { 0 } else { taken - 1 };
        let truly_delivered = !plan_dropped && outcome.delivered();
        let msg = MsgId(idx as u64 + 1);
        self.retrans.on_send(msg, target, t, &mut self.rng);
        self.msg_state[idx] = MsgState::InFlight;
        self.stats.sent += 1;
        if truly_delivered {
            self.stats.delivered += 1;
        }
        self.infos[idx] = Some(MsgInfo {
            msg,
            flow,
            sent_at: t,
            route,
            received_upto,
            truly_delivered,
        });
        self.emit(
            t,
            TraceEvent::RouteOutcome {
                msg: idx as u64,
                received_upto: received_upto as u64,
                delivered: truly_delivered,
            },
        );
        if !truly_delivered {
            // Name the layer that killed the message: plan-level drops
            // model transport loss on the first overlay hop; otherwise
            // the world's route walk says which layer refused it.
            let kind = if plan_dropped {
                Some(FaultKind::TransportDrop)
            } else {
                match outcome {
                    RouteFate::DroppedByHost { .. } => Some(FaultKind::HostDrop),
                    RouteFate::DroppedByNetwork { .. } => Some(FaultKind::NetworkDrop),
                    RouteFate::Delivered { .. } => None,
                }
            };
            if let Some(kind) = kind {
                self.emit(t, TraceEvent::FaultInjected { msg: idx as u64, kind });
            }
        }
        if truly_delivered && self.plan.host_up(dst, t) && self.plan.ack_arrives(&self.adv, dst)
        {
            self.queue.schedule(t + RTT, Ev::Ack(idx));
        }
    }

    fn on_ack_event(&mut self, idx: usize, t: SimTime) {
        let _span = concilium_obs::span("episode.ack");
        self.emit(t, TraceEvent::AckReceived { msg: idx as u64 });
        let info = self.infos[idx].clone().expect("acks only follow sends");
        let (src, dst) = self.flows[info.flow];
        let dest = self.world.node(dst);
        let ack = Ack::issue(
            dest.id(),
            self.world.node(src).id(),
            AckBody::Single(info.msg),
            t,
            dest.keys(),
            &mut self.rng,
        );
        if !ack.verify(&dest.public_key()) {
            // A steward discards unverifiable acks; ours are well-formed
            // by construction, so this never settles anything.
            return;
        }
        let settled = self.retrans.on_ack(&ack, None);
        if settled == 0 {
            return; // duplicate ack for an already-settled message
        }
        if settled > 1 || self.msg_state[idx] != MsgState::InFlight {
            self.violation = Some(Violation {
                kind: InvariantKind::RetryConservation,
                at: t,
                entity: Some(EntityRef::message(idx as u64)),
                detail: format!(
                    "ack settled {settled} entries for message {} in state {:?}",
                    info.msg.0, self.msg_state[idx]
                ),
            });
            return;
        }
        self.msg_state[idx] = MsgState::Settled;
        self.stats.settled += settled;
    }

    fn poll_retransmits(&mut self, t: SimTime) {
        for p in self.retrans.due(t) {
            let idx = (p.msg.0 - 1) as usize;
            self.emit(
                t,
                TraceEvent::RetryFired { msg: idx as u64, attempt: u64::from(p.attempt) },
            );
            let info = self.infos[idx].clone().expect("registered messages have info");
            let (_, dst) = self.flows[info.flow];
            // The retransmission crosses the network as it is *now*, along
            // the flow's (static) route.
            let transported = self.plan.transport_delivers();
            let route_up = info.route.iter().all(|&h| self.plan.host_up(h, t));
            let reaches = transported
                && route_up
                && self
                    .world
                    .route_fate_on_route(&info.route, t, &self.adv)
                    .delivered();
            if reaches {
                if let Some(i) = self.infos[idx].as_mut() {
                    if !i.truly_delivered {
                        i.truly_delivered = true;
                        i.received_upto = i.route.len() - 1;
                    }
                }
                if self.plan.ack_arrives(&self.adv, dst) {
                    let _ = self.queue.try_schedule(t + RTT, Ev::Ack(idx));
                }
            }
        }
        for p in self.retrans.expired(t) {
            let idx = (p.msg.0 - 1) as usize;
            self.emit(t, TraceEvent::MessageExpired { msg: idx as u64 });
            if self.msg_state[idx] != MsgState::InFlight {
                self.violation = Some(Violation {
                    kind: InvariantKind::RetryConservation,
                    at: t,
                    entity: Some(EntityRef::message(idx as u64)),
                    detail: format!(
                        "message {} expired while in state {:?}",
                        p.msg.0, self.msg_state[idx]
                    ),
                });
                return;
            }
            self.msg_state[idx] = MsgState::Expired;
            self.stats.expired += 1;
            self.judge(idx, t);
            if self.violation.is_some() {
                return;
            }
        }
    }

    fn schedule_tick(&mut self) {
        if let Some(next) = self.retrans.next_event_time() {
            let micros = next.as_micros();
            // Consecutive events usually re-derive the same next
            // retransmission time; the memo skips the set probe for them.
            if self.last_tick == Some(micros) {
                return;
            }
            self.last_tick = Some(micros);
            if self.ticks.insert(micros) {
                let _ = self.queue.try_schedule(next, Ev::Tick);
            }
        }
    }

    /// The steward concludes a drop: judge the first forwarder, push the
    /// verdict into the pair's m-of-w window, escalate at the quota.
    fn judge(&mut self, idx: usize, now: SimTime) {
        let _span = concilium_obs::span("episode.judge");
        let info = self.infos[idx].clone().expect("expired messages have info");
        if info.route.len() < 3 {
            self.stats.skipped_short_route += 1;
            return;
        }
        if info.received_upto < 1 {
            // The first forwarder never received the message, so there is
            // no forwarding commitment to judge against (§3.4).
            self.stats.skipped_uncommitted += 1;
            return;
        }
        let (a, b, c) = (info.route[0], info.route[1], info.route[2]);
        if !self.plan.host_up(a, now) {
            self.stats.skipped_judge_down += 1;
            return;
        }
        // Evidence is centered on the midpoint of the message's lifetime:
        // every attempt between send and expiry failed, so that window
        // sits squarely inside whatever outage killed the message.
        let t_ev = evidence_time(info.sent_at, now);
        let ev = self.gather_evidence(a, b, c, t_ev);
        if !ev.covered() {
            self.stats.skipped_uncovered += 1;
            return;
        }
        self.emit(
            now,
            TraceEvent::SnapshotsGathered {
                links: ev.per_link.len() as u64,
                observations: ev.per_link.iter().map(|(_, obs)| obs.len() as u64).sum(),
            },
        );
        let link_ev = ev.to_link_evidence();
        let blame = (self.opts.blame_fn)(&link_ev, self.accuracy);
        self.emit(
            now,
            TraceEvent::BlameComputed {
                msg: idx as u64,
                blame_ppb: ppb(blame),
                accuracy_ppb: ppb(self.accuracy),
                links: ev
                    .per_link
                    .iter()
                    .map(|(link, obs)| LinkObsSummary {
                        link: u64::from(link.0),
                        up: obs.iter().filter(|&&(_, up)| up).count() as u64,
                        down: obs.iter().filter(|&&(_, up)| !up).count() as u64,
                    })
                    .collect(),
            },
        );
        if let Some(mut v) =
            check_blame(&link_ev, self.accuracy, blame, self.opts.check_blame_oracle, now)
        {
            v.entity = Some(EntityRef::message(idx as u64));
            self.violation = Some(v);
            return;
        }
        let verdict = Verdict::from_blame(blame, self.protocol.blame_threshold);
        self.stats.judged += 1;
        if verdict.is_guilty() {
            self.stats.guilty += 1;
        }
        let window_cap = self.protocol.window;
        let quota = self.protocol.guilty_quota;
        let (escalates, window_violation, window_guilty, window_len) = {
            let pair = self
                .pairs
                .entry((a, b))
                .or_insert_with(|| PairState { window: VerdictWindow::new(window_cap), accused: false });
            pair.window.push(verdict);
            let escalates =
                verdict.is_guilty() && !pair.accused && pair.window.should_accuse(quota);
            if escalates {
                pair.accused = true;
            }
            (
                escalates,
                check_window(&pair.window, now),
                pair.window.guilty_count() as u64,
                pair.window.len() as u64,
            )
        };
        self.emit(
            now,
            TraceEvent::VerdictAccumulated {
                judge: a as u64,
                accused: b as u64,
                guilty: verdict.is_guilty(),
                window_guilty,
                window_len,
            },
        );
        if let Some(mut v) = window_violation {
            v.entity = Some(EntityRef::host(b as u64));
            self.violation = Some(v);
            return;
        }
        if escalates {
            self.stats.escalations += 1;
            self.emit(
                now,
                TraceEvent::Escalated { msg: idx as u64, judge: a as u64, accused: b as u64 },
            );
            self.escalate(idx, now, &ev);
        }
    }

    /// Evidence available to `judge` about the IP path from `accused` to
    /// `next`, censored by the fault plan: remote snapshots must survive
    /// the transport, come from a live origin, and carry a timestamp
    /// inside the Δ window; colluders lie to frame non-colluders.
    ///
    /// Observations are pooled from two vantages: the judge's own archive
    /// plus its peers, and the *accused's* vouching peers — the hosts
    /// whose probe trees actually cover the accused's path links
    /// (Figure 4). Origins appearing in both pools are counted once.
    fn gather_evidence(
        &mut self,
        judge: usize,
        accused: usize,
        next: usize,
        t0: SimTime,
    ) -> Gathered {
        let world = self.world;
        let next_id = world.node(next).id();
        let Some(path) = world.path_to_peer(accused, next_id) else {
            return Gathered::default();
        };
        let links: Vec<LinkId> = path.links().to_vec();
        let mut per_link = Vec::with_capacity(links.len());
        for link in links {
            let mut raw = world.probe_evidence(judge, link, t0, self.delta, Some(accused));
            let seen: BTreeSet<usize> = raw.iter().map(|&(origin, _)| origin).collect();
            for (origin, up) in
                world.probe_evidence(accused, link, t0, self.delta, Some(accused))
            {
                if !seen.contains(&origin) {
                    raw.push((origin, up));
                }
            }
            let mut kept = Vec::new();
            for (origin, up) in raw {
                if origin != judge {
                    if !self.plan.transport_delivers() {
                        continue;
                    }
                    if !self.plan.host_up(origin, t0) {
                        continue;
                    }
                }
                // Replayers and delayers mis-stamp even their own
                // snapshots; stale stamps are inadmissible regardless of
                // who gathered them (§3.4 freshness).
                let stamped = self.plan.snapshot_time(&self.adv, origin, t0);
                if stamped.abs_diff(t0) > self.delta {
                    continue;
                }
                // Colluders and coalition members flip their reports:
                // links toward fellow liars are sworn down (shielding),
                // links toward everyone else sworn up (framing, §4.3).
                let reported = if self.adv.lies_in_snapshots(origin) {
                    !self.adv.is_shielded(accused)
                } else {
                    up
                };
                kept.push((origin, reported));
            }
            per_link.push((link, kept));
        }
        Gathered { per_link }
    }

    /// Evidence windows a defender cites across the message's lifetime:
    /// the midpoint of the failed-retry span, the send instant, and the
    /// expiry. A single Δ window straddling an outage boundary — or a
    /// pair of *serial* outages on different path links, each covering
    /// too little of one window for Eq. 3's per-link exoneration — can
    /// leave residual blame on an honest forwarder; the accusation
    /// stands only if every window implicates the host. Gathers the
    /// evidence for each window in turn and returns the midpoint batch
    /// (the one a revision amendment would carry) plus whether any
    /// window exonerated the network.
    fn defense(
        &mut self,
        judge: usize,
        accused: usize,
        next: usize,
        info: &MsgInfo,
        now: SimTime,
    ) -> (Gathered, bool) {
        let threshold = self.protocol.blame_threshold;
        let midpoint =
            self.gather_evidence(judge, accused, next, evidence_time(info.sent_at, now));
        let mut exonerated =
            (self.opts.blame_fn)(&midpoint.to_link_evidence(), self.accuracy) < threshold;
        for t0 in [info.sent_at, now] {
            if exonerated {
                break;
            }
            let ev = self.gather_evidence(judge, accused, next, t0);
            exonerated = (self.opts.blame_fn)(&ev.to_link_evidence(), self.accuracy) < threshold;
        }
        (midpoint, exonerated)
    }

    /// Walks the §3.5 revision chain on ground truth plus the judging
    /// combinator, returning where the blame comes to rest and the
    /// evidence gathered for each amendment (reused when the chain is
    /// actually built, so the stored chain matches the walk).
    fn walk(&mut self, info: &MsgInfo, now: SimTime) -> (WalkEnd, Vec<Option<Gathered>>) {
        let route = info.route.clone();
        let dst = *route.last().expect("routes are non-empty");
        let mut rev_evidence = Vec::new();
        if info.truly_delivered
            && !self.adv.is_ack_withholder(dst)
            && !self.adv.is_coalition(dst)
            && self.plan.host_up(dst, now)
        {
            // The destination can re-issue a signed ack on demand: the
            // "drop" was phantom and the accusation dissolves.
            return (WalkEnd::Dissolved, rev_evidence);
        }
        let mut i = 1;
        loop {
            let x = route[i];
            if self.adv.is_dropper(x) || !self.plan.host_up(x, now) {
                // Refuses to answer or cannot: silence keeps the blame.
                return (WalkEnd::Standing(i), rev_evidence);
            }
            if i + 1 == route.len() {
                // The destination held the message and never acked it.
                return (WalkEnd::Standing(i), rev_evidence);
            }
            let y = route[i + 1];
            if info.received_upto > i {
                if i + 1 == route.len() - 1 {
                    // Y is the destination: its receive commitment plus
                    // the missing ack carry the blame without evidence.
                    rev_evidence.push(None);
                    i += 1;
                    continue;
                }
                let z = route[i + 2];
                let (ev, exonerated) = self.defense(x, y, z, info, now);
                if !exonerated {
                    rev_evidence.push(Some(ev));
                    i += 1;
                    continue;
                }
                // X holds Y's commitment but its own evidence shows the
                // network at fault downstream: the chain dissolves.
                return (WalkEnd::Dissolved, rev_evidence);
            }
            // Y never received the message: the loss happened between X
            // and Y. X's rebuttal is the evidence about that path.
            let (_, exonerated) = self.defense(route[0], x, y, info, now);
            if !exonerated {
                return (WalkEnd::Standing(i), rev_evidence);
            }
            return (WalkEnd::Dissolved, rev_evidence);
        }
    }

    fn escalate(&mut self, idx: usize, now: SimTime, trigger_ev: &Gathered) {
        let info = self.infos[idx].clone().expect("escalations follow judgments");
        let (end, rev_evidence) = self.walk(&info, now);
        match end {
            WalkEnd::Dissolved => {
                self.stats.dissolved += 1;
                self.emit(now, TraceEvent::Dissolved { msg: idx as u64 });
            }
            WalkEnd::Standing(ci) => {
                let culprit = info.route[ci];
                self.emit(
                    now,
                    TraceEvent::CulpritStanding {
                        msg: idx as u64,
                        position: ci as u64,
                        culprit: culprit as u64,
                    },
                );
                let honest = !self.adv.is_adversarial(culprit);
                // A crash anywhere on the route during the message's
                // lifetime can defeat every retransmission without the
                // network being at fault; such standings are churn
                // casualties, not combinator bugs.
                let route_churned = info.route.iter().any(|&h| {
                    self.plan
                        .outage(h)
                        .is_some_and(|(s, e)| s <= now && e >= info.sent_at)
                });
                if honest && !route_churned {
                    if self.enforce_no_false_blame {
                        self.violation = Some(Violation {
                            kind: InvariantKind::FalseAccusation,
                            at: now,
                            entity: Some(EntityRef::host(culprit as u64)),
                            detail: format!(
                                "honest host {culprit} (route position {ci} of {:?}) ends \
                                 the accusation chain as culprit for message {} sent at {}",
                                info.route, info.msg.0, info.sent_at
                            ),
                        });
                        return;
                    }
                    // Under ambient transport loss a false standing is the
                    // paper's bounded false-positive rate, not a bug; the
                    // chain mechanics below must still hold for it.
                    self.stats.false_standings += 1;
                }
                self.check_chain(&info, ci, now, trigger_ev, &rev_evidence);
            }
        }
    }

    /// Builds the real accusation chain for a blameworthy culprit, hands
    /// revisions over the lossy transport, stores the result in the DHT,
    /// and checks the chain-integrity and DHT-durability invariants.
    fn check_chain(
        &mut self,
        info: &MsgInfo,
        culprit_pos: usize,
        now: SimTime,
        trigger_ev: &Gathered,
        rev_evidence: &[Option<Gathered>],
    ) {
        let world = self.world;
        let route = &info.route;
        let next_pos = 2.min(route.len() - 1);
        let original = self.build_accusation(info, 0, 1, next_pos, Some(trigger_ev));
        let mut chain = AccusationChain::new(original);
        let policy = RetryPolicy::default();
        let mut expected_culprit_pos = culprit_pos;
        for (j, ev) in rev_evidence.iter().enumerate() {
            let accuser_pos = j + 1;
            let accused_pos = j + 2;
            let next_pos = (accused_pos + 1).min(route.len() - 1);
            let revision =
                self.build_accusation(info, accuser_pos, accused_pos, next_pos, ev.as_ref());
            let plan = &mut self.plan;
            let outcome = chain.amend_with_retry(
                &policy,
                |_, _| if plan.transport_delivers() { Some(revision.clone()) } else { None },
                &mut self.rng,
            );
            match outcome {
                Ok(HandoffOutcome::Amended { .. }) => {
                    self.emit(
                        now,
                        TraceEvent::AccusationRevised {
                            step: j as u64,
                            accuser_pos: accuser_pos as u64,
                            accused_pos: accused_pos as u64,
                            amended: true,
                        },
                    );
                }
                Ok(HandoffOutcome::Withheld { .. }) => {
                    // Every handoff attempt was lost: the chain stands
                    // short and — per §3.5 — silence keeps the blame on
                    // the hop that failed to answer.
                    self.emit(
                        now,
                        TraceEvent::AccusationRevised {
                            step: j as u64,
                            accuser_pos: accuser_pos as u64,
                            accused_pos: accused_pos as u64,
                            amended: false,
                        },
                    );
                    self.stats.handoffs_withheld += 1;
                    expected_culprit_pos = accuser_pos;
                    break;
                }
                Err(err) => {
                    self.violation = Some(Violation {
                        kind: InvariantKind::ChainIntegrity,
                        at: now,
                        entity: Some(EntityRef::message(info.msg.0 - 1)),
                        detail: format!("amendment rejected: {err:?}"),
                    });
                    return;
                }
            }
        }
        let expected_culprit = world.node(route[expected_culprit_pos]).id();
        if chain.culprit() != expected_culprit || chain.len() != expected_culprit_pos {
            self.violation = Some(Violation {
                kind: InvariantKind::ChainIntegrity,
                at: now,
                entity: Some(EntityRef::message(info.msg.0 - 1)),
                detail: format!(
                    "chain of {} links ends at {:?}, expected route position \
                     {expected_culprit_pos}",
                    chain.len(),
                    chain.culprit()
                ),
            });
            return;
        }
        for (k, link) in chain.links().iter().enumerate() {
            let pos = route.iter().position(|&h| world.node(h).id() == link.accused());
            if pos != Some(k + 1) {
                self.violation = Some(Violation {
                    kind: InvariantKind::ChainIntegrity,
                    at: now,
                    entity: Some(EntityRef::message(info.msg.0 - 1)),
                    detail: format!(
                        "link {k} accuses {:?} at route position {pos:?}, expected {}",
                        link.accused(),
                        k + 1
                    ),
                });
                return;
            }
        }
        let key_of = |id: Id| world.public_key_of(id);
        if let Err(err) = chain.verify(&key_of, &self.protocol) {
            self.violation = Some(Violation {
                kind: InvariantKind::ChainIntegrity,
                at: now,
                entity: Some(EntityRef::message(info.msg.0 - 1)),
                detail: format!("stored chain fails verification: {err:?}"),
            });
            return;
        }
        self.stats.chains_checked += 1;

        // File the terminal accusation under the culprit's key with
        // quorum retries over the same lossy transport.
        let final_acc = chain
            .links()
            .last()
            .expect("chains are never empty")
            .clone();
        let culprit_pk = world.node(route[expected_culprit_pos]).public_key();
        let plan = &mut self.plan;
        let result = self.dht.insert_with_retry(
            &culprit_pk,
            final_acc.clone(),
            &policy,
            |replica, _| match world.index_of(replica) {
                Some(h) => plan.host_up(h, now) && plan.transport_delivers(),
                None => false,
            },
            &mut self.rng,
        );
        match result {
            Ok(stored) => {
                self.emit(
                    now,
                    TraceEvent::AccusationStored {
                        culprit: route[expected_culprit_pos] as u64,
                        replicas: stored as u64,
                    },
                );
                if stored < self.dht.write_quorum() {
                    self.violation = Some(Violation {
                        kind: InvariantKind::DhtDurability,
                        at: now,
                        entity: Some(EntityRef::host(route[expected_culprit_pos] as u64)),
                        detail: format!(
                            "insert reported success with {stored} replicas, quorum is {}",
                            self.dht.write_quorum()
                        ),
                    });
                    return;
                }
                let fetched = self.dht.fetch(&culprit_pk);
                let ours = fetched.iter().find(|a| {
                    a.accuser() == final_acc.accuser()
                        && a.context().msg == final_acc.context().msg
                });
                match ours {
                    None => {
                        self.violation = Some(Violation {
                            kind: InvariantKind::DhtDurability,
                            at: now,
                            entity: Some(EntityRef::host(route[expected_culprit_pos] as u64)),
                            detail: "quorum-acknowledged accusation is not fetchable".into(),
                        });
                    }
                    Some(stored_acc) => {
                        if let Err(err) = stored_acc.verify(&key_of, &self.protocol) {
                            self.violation = Some(Violation {
                                kind: InvariantKind::DhtDurability,
                                at: now,
                                entity: Some(
                                    EntityRef::host(route[expected_culprit_pos] as u64),
                                ),
                                detail: format!(
                                    "fetched accusation fails verification: {err:?}"
                                ),
                            });
                        }
                    }
                }
            }
            Err(_) => {
                // A typed quorum failure under heavy loss is a legitimate
                // refusal, not a durability violation.
                self.emit(
                    now,
                    TraceEvent::DhtRefused { culprit: route[expected_culprit_pos] as u64 },
                );
                self.stats.dht_refused += 1;
            }
        }
    }

    /// Builds a self-verifying accusation by `route[accuser_pos]` against
    /// `route[accused_pos]`, re-signing the gathered observations as the
    /// snapshots the verifier would recompute blame from.
    fn build_accusation(
        &mut self,
        info: &MsgInfo,
        accuser_pos: usize,
        accused_pos: usize,
        next_pos: usize,
        ev: Option<&Gathered>,
    ) -> Accusation {
        let world = self.world;
        let route = &info.route;
        let accuser = world.node(route[accuser_pos]);
        let accused = world.node(route[accused_pos]);
        let dest_id = world.node(*route.last().expect("routes are non-empty")).id();
        let t0 = info.sent_at;
        let context = DropContext {
            msg: info.msg,
            accuser: accuser.id(),
            accused: accused.id(),
            next_hop: world.node(route[next_pos]).id(),
            dest: dest_id,
            at: t0,
        };
        let commitment = ForwardingCommitment::issue(
            info.msg,
            accuser.id(),
            accused.id(),
            dest_id,
            t0,
            accused.keys(),
            &mut self.rng,
        );
        let (path_links, snapshots) = match ev {
            Some(gathered) => {
                let links: Vec<LinkId> =
                    gathered.per_link.iter().map(|(link, _)| *link).collect();
                let mut snaps = Vec::new();
                for (link, obs) in &gathered.per_link {
                    for &(origin, up) in obs {
                        let o = world.node(origin);
                        let stamped = self.plan.snapshot_time(&self.adv, origin, t0);
                        snaps.push(TomographySnapshot::new_signed(
                            o.id(),
                            stamped,
                            vec![LinkObservation::binary(*link, up)],
                            o.keys(),
                            &mut self.rng,
                        ));
                    }
                }
                (links, snaps)
            }
            None => (Vec::new(), Vec::new()),
        };
        Accusation::build(
            context,
            commitment,
            path_links,
            snapshots,
            &self.protocol,
            accuser.keys(),
            &mut self.rng,
        )
    }

    /// End-of-episode tomography cross-check: simulate fresh stripes on a
    /// couple of hosts' trees against the world's ground-truth link state,
    /// then require tolerant inference to stay in range, agree with strict
    /// inference on the fully-known record, and match the closed-form
    /// oracle.
    fn tomography_check(&mut self) {
        let world = self.world;
        let mut trng = StdRng::seed_from_u64(self.seed ^ TOMO_SALT);
        let n = world.num_hosts();
        let t_mid = SimTime::from_micros(world.config().duration.as_micros() / 2);
        let mut hosts = vec![0];
        if n > 1 {
            hosts.push(n / 2);
        }
        hosts.dedup();
        let mut scratch = InferScratch::default();
        for h in hosts {
            let tree = world.tree(h);
            let logical = tree.logical();
            if logical.num_leaves() < 2 {
                continue;
            }
            // Identifiability bound: the ambiguity classes the probe/route
            // matrix admits must coincide with the logical-tree edges the
            // inference assigns rates to. A mismatch means the estimator
            // claims per-edge localization the matrix cannot support.
            let classes = AmbiguityClasses::from_probe_tree(tree);
            if !classes.matches_logical(&logical) {
                self.violation = Some(Violation {
                    kind: InvariantKind::IdentifiabilityBound,
                    at: t_mid,
                    entity: Some(EntityRef::host(h as u64)),
                    detail: format!(
                        "host {h}: inference units diverge from the probe matrix's \
                         {} ambiguity classes",
                        classes.num_classes()
                    ),
                });
                return;
            }
            let pass =
                |l: LinkId| if world.link_up_at(l, t_mid) { 0.95 } else { 0.05 };
            let record =
                simulate_stripes(&logical, &pass, self.opts.tomography_stripes, &mut trng);
            // Batched entry points (bit-identical to the per-record
            // `_with` calls) so the DST inner loop exercises the same
            // kernel the verdict-window experiments run.
            let full = infer_pass_rates_batch(&logical, std::slice::from_ref(&record), &mut scratch)
                .remove(0);
            let partial = PartialProbeRecord::from_complete(&record);
            let tolerant =
                infer_pass_rates_tolerant_batch(&logical, std::slice::from_ref(&partial), &mut scratch)
                    .remove(0);
            match (full, tolerant) {
                (Ok(strict), Ok(tol)) => {
                    for edge in 0..logical.num_edges() {
                        let rate = tol.edge_pass_rate(edge);
                        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                            self.violation = Some(Violation {
                                kind: InvariantKind::TomographyRange,
                                at: t_mid,
                                entity: Some(EntityRef::host(h as u64)),
                                detail: format!(
                                    "host {h}: tolerant pass rate {rate} on edge {edge}"
                                ),
                            });
                            return;
                        }
                        let diff = (rate - strict.edge_pass_rate(edge)).abs();
                        if diff > 1e-9 {
                            self.violation = Some(Violation {
                                kind: InvariantKind::TomographyDisagreement,
                                at: t_mid,
                                entity: Some(EntityRef::host(h as u64)),
                                detail: format!(
                                    "host {h}: tolerant and strict inference differ by \
                                     {diff} on edge {edge} of a fully-known record"
                                ),
                            });
                            return;
                        }
                    }
                    // Any edge inferred *down* is a localization claim;
                    // it is sound only at whole-ambiguity-class
                    // granularity — never a proper subset of links the
                    // matrix cannot tell apart.
                    for edge in 0..logical.num_edges() {
                        if tol.edge_pass_rate(edge) < 0.5
                            && !classes.is_whole_class(logical.edge_links(edge))
                        {
                            self.violation = Some(Violation {
                                kind: InvariantKind::IdentifiabilityBound,
                                at: t_mid,
                                entity: Some(EntityRef::host(h as u64)),
                                detail: format!(
                                    "host {h}: edge {edge} blamed down but its link set \
                                     is a proper subset of an ambiguity class"
                                ),
                            });
                            return;
                        }
                    }
                    match oracle_pass_rates(&logical, &record) {
                        Ok(oracle) => {
                            for node in 1..logical.num_nodes() {
                                let diff =
                                    (strict.cumulative(node) - oracle.cumulative[node]).abs();
                                if diff > 1e-6 {
                                    self.violation = Some(Violation {
                                        kind: InvariantKind::TomographyDisagreement,
                                        at: t_mid,
                                        entity: Some(EntityRef::host(h as u64)),
                                        detail: format!(
                                            "host {h}: MLE and closed-form oracle differ \
                                             by {diff} at node {node}"
                                        ),
                                    });
                                    return;
                                }
                            }
                        }
                        Err(err) => {
                            self.violation = Some(Violation {
                                kind: InvariantKind::TomographyDisagreement,
                                at: t_mid,
                                entity: Some(EntityRef::host(h as u64)),
                                detail: format!(
                                    "host {h}: oracle refused a record the MLE accepted: \
                                     {err:?}"
                                ),
                            });
                            return;
                        }
                    }
                }
                (Err(_), Err(_)) => continue,
                (Ok(_), Err(err)) => {
                    self.violation = Some(Violation {
                        kind: InvariantKind::TomographyDisagreement,
                        at: t_mid,
                        entity: Some(EntityRef::host(h as u64)),
                        detail: format!(
                            "host {h}: tolerant inference refused a fully-known record \
                             strict inference accepted: {err:?}"
                        ),
                    });
                    return;
                }
                (Err(err), Ok(_)) => {
                    self.violation = Some(Violation {
                        kind: InvariantKind::TomographyDisagreement,
                        at: t_mid,
                        entity: Some(EntityRef::host(h as u64)),
                        detail: format!(
                            "host {h}: strict inference refused a record tolerant \
                             inference accepted: {err:?}"
                        ),
                    });
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> SimWorld {
        dst_world(77)
    }

    #[test]
    fn episode_is_deterministic_and_clean_when_honest() {
        let w = world();
        let cfg = EpisodeConfig::lossy();
        let opts = EpisodeOptions::default();
        let a = run_episode(&w, &cfg, 11, &opts);
        let b = run_episode(&w, &cfg, 11, &opts);
        assert_eq!(a.trace_hash, b.trace_hash, "same seed must replay bit-identically");
        assert!(
            a.violation.is_none(),
            "honest lossy episode must satisfy every invariant: {:?}",
            a.violation
        );
        assert!(a.stats.sent > 0, "episode must drive traffic");
        assert!(a.stats.expired > 0, "a lossy plan must expire some messages");
        let c = run_episode(&w, &cfg, 12, &opts);
        assert_ne!(a.trace_hash, c.trace_hash, "different seeds must diverge");
    }

    #[test]
    fn oracle_catches_broken_blame_combinator() {
        fn mutant(_: &[LinkEvidence], _: f64) -> f64 {
            1.0
        }
        let w = world();
        let opts = EpisodeOptions { blame_fn: mutant, ..EpisodeOptions::default() };
        let grid = EpisodeConfig::standard_grid();
        let seeds: Vec<u64> = (0..8).collect();
        let out = explore(&w, &grid, &seeds, &opts);
        let failure = out.failure.expect("a broken combinator must trip an invariant");
        assert_eq!(failure.violation.kind, InvariantKind::BlameOracle);
    }

    #[test]
    fn literal_is_copy_pasteable() {
        let text = EpisodeConfig::byzantine().to_literal(42);
        assert!(text.contains("// seed: 42"));
        assert!(text.contains("drop_probability: 0.05"));
        assert!(text.contains("dropper_fraction: 0.2"));
        assert!(text.contains("ChurnConfig"));
    }

    #[test]
    fn active_dimensions_counts_nonzero_knobs() {
        assert_eq!(EpisodeConfig::transparent().active_dimensions(), 0);
        assert_eq!(EpisodeConfig::churning().active_dimensions(), 1);
        assert!(EpisodeConfig::byzantine().active_dimensions() >= 5);
    }
}
