//! The assembled simulation world.

use std::collections::HashMap;

use rand::Rng;

use concilium_crypto::{Certificate, CertificateAuthority, KeyPair};
use concilium_overlay::{build_overlay, NextHop, OverlayNode, RoutingMode};
use concilium_tomography::ProbeTree;
use concilium_topology::{
    generate, FailureModel, IpPath, LinkStatus, PathCache, Topology,
};
use concilium_types::{Id, LinkId, SimDuration, SimTime};

use crate::archive::ProbeArchive;
use crate::behavior::AdversarySets;
use crate::config::SimConfig;
use crate::engine::EventQueue;
use crate::failhist::IndexedHistory;

/// How close (in virtual time) a routing peer's probe round must be for an
/// adaptive adversary to consider itself "observed" and behave. Slightly
/// above the tiny-world max probe interval so honest-looking stretches are
/// rare but possible.
pub const ADAPTIVE_GUARD: SimDuration = SimDuration::from_secs(75);

/// The outcome of sending one application message across the overlay at a
/// given instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MessageOutcome {
    /// The message reached the node responsible for the destination key.
    Delivered {
        /// Host indices visited, source first.
        route: Vec<usize>,
    },
    /// A misbehaving overlay host silently dropped the message.
    DroppedByHost {
        /// Host indices visited, source first, up to and including the
        /// dropper.
        route: Vec<usize>,
        /// The dropper's host index.
        at: usize,
    },
    /// A failed IP link prevented a hop from completing.
    DroppedByNetwork {
        /// Host indices visited, source first, up to and including the
        /// last host that held the message.
        route: Vec<usize>,
        /// The host that could not transmit.
        from: usize,
        /// The unreachable next hop.
        to: usize,
        /// The first failed link on the hop's IP path.
        link: LinkId,
    },
}

impl MessageOutcome {
    /// Whether the message was delivered.
    pub fn delivered(&self) -> bool {
        matches!(self, MessageOutcome::Delivered { .. })
    }
}

/// The fate of one message on a route — [`MessageOutcome`] without the
/// visited-host vector.
///
/// The DST resolves every application send and retransmission through this
/// type; it is `Copy` and allocation-free so the hot path never touches the
/// heap. `hops` is always the length of the visited prefix of the queried
/// route (what [`MessageOutcome`] returns as `route.len()`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteFate {
    /// The message reached the node responsible for the destination key.
    Delivered {
        /// Number of hosts visited, source included.
        hops: usize,
    },
    /// A misbehaving overlay host silently dropped the message.
    DroppedByHost {
        /// Number of hosts visited, dropper included.
        hops: usize,
        /// The dropper's host index.
        at: usize,
    },
    /// A failed IP link prevented a hop from completing.
    DroppedByNetwork {
        /// Number of hosts visited, up to and including the last holder.
        hops: usize,
        /// The host that could not transmit.
        from: usize,
        /// The unreachable next hop.
        to: usize,
        /// The first failed link on the hop's IP path.
        link: LinkId,
    },
}

impl RouteFate {
    /// Whether the message was delivered.
    pub fn delivered(&self) -> bool {
        matches!(self, RouteFate::Delivered { .. })
    }

    /// Number of hosts that held the message, source included.
    pub fn hops(&self) -> usize {
        match *self {
            RouteFate::Delivered { hops }
            | RouteFate::DroppedByHost { hops, .. }
            | RouteFate::DroppedByNetwork { hops, .. } => hops,
        }
    }
}

/// One hop of an overlay route with its IP-level fate — used by recursive
/// stewardship demonstrations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopOutcome {
    /// Sending host index.
    pub from: usize,
    /// Receiving host index.
    pub to: usize,
    /// Whether the IP path between them was fully up.
    pub ip_path_up: bool,
}

/// The fully built world of one evaluation run: topology, overlay, trees,
/// failure history, and probe archives.
pub struct SimWorld {
    config: SimConfig,
    topology: Topology,
    nodes: Vec<OverlayNode>,
    host_index: HashMap<Id, usize>,
    /// Dense row-major `(host, host)` table of IP paths to routing peers;
    /// `None` where the column host is not a routing peer of the row host.
    /// Dense because the route walk resolves one entry per overlay hop per
    /// send — a slice index instead of a hash lookup.
    peer_paths: Vec<Option<IpPath>>,
    /// Per host: routing peers as host indices.
    peer_hosts: Vec<Vec<usize>>,
    trees: Vec<ProbeTree>,
    archives: Vec<ProbeArchive>,
    history: IndexedHistory,
    /// Pairwise IP hop distances between overlay hosts (row-major).
    host_dist: Vec<u16>,
    /// BFS-tree cache hit/miss counts observed while building the world.
    build_tree_stats: concilium_topology::CacheStats,
}

impl SimWorld {
    /// Builds the world and runs the failure and probing phases for the
    /// configured duration.
    ///
    /// Deterministic for a given `rng` state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SimConfig::validate`])
    /// or produces fewer than 2 overlay hosts.
    pub fn build<R: Rng + ?Sized>(config: SimConfig, rng: &mut R) -> Self {
        let _span = concilium_obs::span("world.build");
        config.validate();

        // 1. Topology and overlay membership.
        let topology = generate(&config.topology, rng);
        let overlay_routers = topology.sample_end_hosts(config.overlay_fraction, rng);
        assert!(overlay_routers.len() >= 2, "need at least 2 overlay hosts");

        let ca = CertificateAuthority::new(rng);
        let mut members: Vec<(Certificate, KeyPair)> =
            Vec::with_capacity(overlay_routers.len());
        for &r in &overlay_routers {
            let keys = KeyPair::generate(rng);
            let cert = ca.issue(r.into(), keys.public(), rng);
            members.push((cert, keys));
        }

        // 2a. Pairwise IP distances between overlay hosts (one BFS per
        //     host), used as the proximity oracle for *standard* routing
        //     tables ("proximity affinity", §2) and by the stretch
        //     analysis.
        let router_to_slot: HashMap<concilium_types::RouterId, usize> = overlay_routers
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i))
            .collect();
        let n_hosts = overlay_routers.len();
        // One BFS per host router, memoized: pass 2b below revisits the
        // same sources for peer paths, so the cache halves total BFS work
        // during construction with identical results.
        let mut path_cache = PathCache::new();
        let mut host_dist = vec![u16::MAX; n_hosts * n_hosts];
        for (i, &r) in overlay_routers.iter().enumerate() {
            let bfs = path_cache.tree(&topology.graph, r);
            for (j, &other) in overlay_routers.iter().enumerate() {
                let d = bfs.distance(other).expect("topology is connected");
                host_dist[i * n_hosts + j] = d.min(u16::MAX as u32) as u16;
            }
        }
        let proximity = |a: concilium_types::HostAddr, b: concilium_types::HostAddr| -> u64 {
            let i = router_to_slot[&a.router()];
            let j = router_to_slot[&b.router()];
            host_dist[i * n_hosts + j] as u64
        };

        let nodes = build_overlay(
            &members,
            config.leaf_capacity,
            SimTime::ZERO,
            Some(&proximity),
            rng,
        );
        let host_index: HashMap<Id, usize> =
            nodes.iter().enumerate().map(|(i, n)| (n.id(), i)).collect();

        // 2b. IP paths host → routing peers (secure peers define the probe
        //     tree T_H; standard-table peers get paths too so standard
        //     routes can be measured), and probe trees.
        let mut paths = Vec::with_capacity(nodes.len());
        let mut peer_hosts = Vec::with_capacity(nodes.len());
        let mut trees = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let bfs = path_cache.tree(&topology.graph, node.addr().router());
            let peers = node.routing_peers(RoutingMode::Secure);
            let mut pmap = HashMap::with_capacity(peers.len());
            let mut phosts = Vec::with_capacity(peers.len());
            let mut tree_leaves = Vec::with_capacity(peers.len());
            for peer in &peers {
                let path = bfs
                    .path_to(peer.addr().router())
                    .expect("generated topologies are connected");
                tree_leaves.push((peer.id(), path.clone()));
                pmap.insert(peer.id(), path);
                phosts.push(host_index[&peer.id()]);
            }
            for peer in node.routing_peers(RoutingMode::Standard) {
                pmap.entry(peer.id()).or_insert_with(|| {
                    bfs.path_to(peer.addr().router())
                        .expect("generated topologies are connected")
                });
            }
            trees.push(
                ProbeTree::from_paths(node.addr().router(), tree_leaves)
                    .expect("BFS path unions are trees"),
            );
            paths.push(pmap);
            peer_hosts.push(phosts);
        }

        // 3. Link-failure phase: keep `fraction_bad` of links down for the
        //    whole duration, event-driven.
        // Deterministic order: host order, then peer-id order (HashMap
        // iteration order would differ between runs and desynchronise the
        // rng stream).
        let candidate_paths: Vec<IpPath> = paths
            .iter()
            .flat_map(|m| {
                let mut ids: Vec<&Id> = m.keys().collect();
                ids.sort();
                ids.into_iter().map(|id| m[id].clone()).collect::<Vec<_>>()
            })
            .collect();

        // Densify the per-host peer-path maps into one row-major table so
        // the message-walk hot path indexes instead of hashing. Every peer
        // is an overlay host, so `(row host, column host)` covers them all.
        let mut peer_paths: Vec<Option<IpPath>> = vec![None; nodes.len() * nodes.len()];
        for (u, pmap) in paths.iter().enumerate() {
            for (id, path) in pmap {
                peer_paths[u * nodes.len() + host_index[id]] = Some(path.clone());
            }
        }
        let failure =
            FailureModel::new(config.failure, candidate_paths, topology.graph.num_links());
        let mut status = LinkStatus::new(topology.graph.num_links());
        let mut queue = EventQueue::new();
        for repair in failure.seed_initial(&mut status, SimTime::ZERO, rng) {
            queue.schedule(repair.at, repair.link);
        }
        let end = SimTime::ZERO + config.duration;
        while let Some((t, link)) = queue.pop_until(end) {
            let next = failure.on_repair(&mut status, link, t, rng);
            queue.schedule(next.at, next.link);
        }
        let history = IndexedHistory::from_status(&status, topology.graph.num_links(), end);

        // 4. Probing phase: every host heavyweight-probes its whole tree
        //    at uniform random intervals; each observation is correct with
        //    probability `probe_accuracy`.
        let mut archives = Vec::with_capacity(nodes.len());
        let max_probe = config.max_probe_time.as_micros();
        for tree in &trees {
            let links = tree.link_set();
            let mut archive = ProbeArchive::new(&links);
            let mut t = SimTime::from_micros(rng.gen_range(0..=max_probe));
            while t < end {
                archive.record_round(t, |link| {
                    let truth = history.was_up(link, t);
                    let correct = rng.gen_bool(config.probe_accuracy);
                    if correct {
                        truth
                    } else {
                        !truth
                    }
                });
                t += SimDuration::from_micros(rng.gen_range(1..=max_probe));
            }
            archives.push(archive);
        }

        SimWorld {
            config,
            topology,
            nodes,
            host_index,
            peer_hosts,
            trees,
            archives,
            history,
            host_dist,
            peer_paths,
            build_tree_stats: path_cache.tree_stats(),
        }
    }

    /// Hit/miss counts of the BFS-tree cache used during construction —
    /// a single-threaded, deterministic build phase, so these reproduce
    /// exactly; reported by the sweep drivers for cache-efficacy checks.
    pub fn build_tree_stats(&self) -> concilium_topology::CacheStats {
        self.build_tree_stats
    }

    /// The configuration used.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The generated topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of overlay hosts.
    pub fn num_hosts(&self) -> usize {
        self.nodes.len()
    }

    /// The overlay node at host index `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn node(&self, h: usize) -> &OverlayNode {
        &self.nodes[h]
    }

    /// Host index of an overlay identifier.
    pub fn index_of(&self, id: Id) -> Option<usize> {
        self.host_index.get(&id).copied()
    }

    /// The public key of the overlay member with identifier `id`, if it
    /// exists — the key-lookup closure that [`Accusation::verify`] and
    /// chain verification expect.
    ///
    /// [`Accusation::verify`]: https://docs.rs/concilium
    pub fn public_key_of(&self, id: Id) -> Option<concilium_crypto::PublicKey> {
        self.index_of(id).map(|h| self.nodes[h].public_key())
    }

    /// The probe tree T_H of host `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn tree(&self, h: usize) -> &ProbeTree {
        &self.trees[h]
    }

    /// The probe archive of host `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn archive(&self, h: usize) -> &ProbeArchive {
        &self.archives[h]
    }

    /// The routing peers of host `h`, as host indices.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn peers_of(&self, h: usize) -> &[usize] {
        &self.peer_hosts[h]
    }

    /// The IP path from host `h` to its routing peer with identifier
    /// `peer`, if that peer is in `h`'s routing state.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn path_to_peer(&self, h: usize, peer: Id) -> Option<&IpPath> {
        let v = *self.host_index.get(&peer)?;
        self.peer_path(h, v)
    }

    /// The IP path from host `u` to host `v` when `v` is one of `u`'s
    /// routing peers; a dense-table index, no hashing.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    fn peer_path(&self, u: usize, v: usize) -> Option<&IpPath> {
        self.peer_paths[u * self.nodes.len() + v].as_ref()
    }

    /// Ground truth: was `link` up at `t`?
    pub fn link_up_at(&self, link: LinkId, t: SimTime) -> bool {
        self.history.was_up(link, t)
    }

    /// Ground truth: were all of `path`'s links up at `t`?
    pub fn path_up_at(&self, path: &IpPath, t: SimTime) -> bool {
        self.history.path_up(path.links(), t)
    }

    /// The tomographic evidence available to `judge` about `link` around
    /// time `t`: observations from the judge's own archive and from the
    /// snapshots its routing peers sent it, restricted to probes initiated
    /// within `[t − Δ, t + Δ]`. Probes originated by `exclude` (the node
    /// being judged) are omitted, as Eq. 3 requires.
    ///
    /// Returns `(origin host, observed up)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `judge` is out of range.
    pub fn probe_evidence(
        &self,
        judge: usize,
        link: LinkId,
        t: SimTime,
        delta: SimDuration,
        exclude: Option<usize>,
    ) -> Vec<(usize, bool)> {
        let mut out = Vec::new();
        let push_from = |origin: usize, out: &mut Vec<(usize, bool)>| {
            if Some(origin) == exclude {
                return;
            }
            for up in self.archives[origin].observations_in_window(link, t, delta) {
                out.push((origin, up));
            }
        };
        push_from(judge, &mut out);
        for &p in &self.peer_hosts[judge] {
            push_from(p, &mut out);
        }
        out
    }

    /// Whether any routing peer of host `h` initiated a probe round within
    /// `[t − guard, t + guard]` — the adaptive adversary's notion of
    /// "someone might be watching". Peers are the vantages whose probe
    /// trees cover `h`'s neighbourhood, so a recent round from any of them
    /// could have captured `h`'s links.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn observed_near(&self, h: usize, t: SimTime, guard: SimDuration) -> bool {
        let lo = if t.as_micros() >= guard.as_micros() {
            SimTime::from_micros(t.as_micros() - guard.as_micros())
        } else {
            SimTime::ZERO
        };
        let hi = t + guard;
        self.peer_hosts[h].iter().any(|&p| {
            let archive = &self.archives[p];
            (0..archive.num_probes()).any(|round| {
                let rt = archive.round_time(round);
                rt >= lo && rt <= hi
            })
        })
    }

    /// Computes the overlay route from host `src` toward key `target`
    /// using secure routing, returning host indices (source first).
    ///
    /// Returns `None` on a routing loop (indicating inconsistent state —
    /// never expected for worlds built by [`SimWorld::build`]).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn route(&self, src: usize, target: Id) -> Option<Vec<usize>> {
        self.route_via(src, target, RoutingMode::Secure)
    }

    /// Like [`SimWorld::route`] but with an explicit routing mode —
    /// `Standard` consults the proximity-optimised tables.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn route_via(&self, src: usize, target: Id, mode: RoutingMode) -> Option<Vec<usize>> {
        let mut cur = src;
        let mut visited = vec![src];
        for _ in 0..4 * concilium_types::ID_DIGITS {
            match self.nodes[cur].next_hop(target, mode) {
                NextHop::Deliver => return Some(visited),
                NextHop::Forward(cert) => {
                    let next = self.host_index[&cert.id()];
                    if visited.contains(&next) {
                        return None;
                    }
                    visited.push(next);
                    cur = next;
                }
            }
        }
        None
    }

    /// IP hop distance between two overlay hosts.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn ip_distance(&self, a: usize, b: usize) -> u32 {
        self.host_dist[a * self.nodes.len() + b] as u32
    }

    /// Total IP hops crossed by an overlay route (host indices as
    /// returned by [`SimWorld::route_via`]).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn route_ip_hops(&self, route: &[usize]) -> u32 {
        route.windows(2).map(|w| self.ip_distance(w[0], w[1])).sum()
    }

    /// Sends an application message from `src` toward `target` at time
    /// `t`, modelling both IP-link failures and message-dropping hosts.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or routing state is inconsistent.
    pub fn message_outcome(
        &self,
        src: usize,
        target: Id,
        t: SimTime,
        adversaries: &AdversarySets,
    ) -> MessageOutcome {
        let route = self.route(src, target).expect("routing loops cannot occur");
        self.message_outcome_on_route(&route, t, adversaries)
    }

    /// Like [`SimWorld::message_outcome`] for a route that has already been
    /// computed. Overlay routes are time-independent (tables are static
    /// within an episode), so callers that send repeatedly along one flow
    /// can route once and replay the outcome per instant.
    ///
    /// # Panics
    ///
    /// Panics if `route` is empty or is not a valid overlay route.
    pub fn message_outcome_on_route(
        &self,
        route: &[usize],
        t: SimTime,
        adversaries: &AdversarySets,
    ) -> MessageOutcome {
        // The visited hosts are always a prefix of the queried route, so
        // the fate's hop count reconstructs the vector exactly.
        match self.route_fate_on_route(route, t, adversaries) {
            RouteFate::Delivered { hops } => {
                MessageOutcome::Delivered { route: route[..hops].to_vec() }
            }
            RouteFate::DroppedByHost { hops, at } => {
                MessageOutcome::DroppedByHost { route: route[..hops].to_vec(), at }
            }
            RouteFate::DroppedByNetwork { hops, from, to, link } => MessageOutcome::DroppedByNetwork {
                route: route[..hops].to_vec(),
                from,
                to,
                link,
            },
        }
    }

    /// Allocation-free form of [`SimWorld::message_outcome_on_route`]: the
    /// same walk, returning only the fate and visited-prefix length.
    ///
    /// # Panics
    ///
    /// Panics if `route` is empty or names an out-of-range host.
    pub fn route_fate_on_route(
        &self,
        route: &[usize],
        t: SimTime,
        adversaries: &AdversarySets,
    ) -> RouteFate {
        let last = *route.last().expect("routes are non-empty");
        let mut hops = 1;
        for w in route.windows(2) {
            let (u, v) = (w[0], w[1]);
            let path = self.peer_path(u, v).expect("next hops are routing peers");
            if let Some(&bad) = path.links().iter().find(|&&l| !self.history.was_up(l, t)) {
                return RouteFate::DroppedByNetwork { hops, from: u, to: v, link: bad };
            }
            hops += 1;
            // The destination itself delivering is not a "forwarding" act;
            // intermediate droppers discard silently. Adaptive droppers
            // only dare to when no vantage has probed their neighbourhood
            // recently.
            if v != last {
                let drops = adversaries.is_dropper(v)
                    || (adversaries.is_adaptive_dropper(v)
                        && !self.observed_near(v, t, ADAPTIVE_GUARD));
                if drops {
                    return RouteFate::DroppedByHost { hops, at: v };
                }
            }
        }
        RouteFate::Delivered { hops }
    }

    /// The per-hop IP fates of an overlay route at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn hop_outcomes(&self, src: usize, target: Id, t: SimTime) -> Vec<HopOutcome> {
        let route = self.route(src, target).expect("routing loops cannot occur");
        route
            .windows(2)
            .map(|w| {
                let (u, v) = (w[0], w[1]);
                let path = self.peer_path(u, v).expect("next hops are routing peers");
                HopOutcome { from: u, to: v, ip_path_up: self.path_up_at(path, t) }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_world(seed: u64) -> SimWorld {
        let mut rng = StdRng::seed_from_u64(seed);
        SimWorld::build(SimConfig::tiny(), &mut rng)
    }

    #[test]
    fn build_produces_consistent_state() {
        let w = tiny_world(1);
        assert!(w.num_hosts() >= 4);
        for h in 0..w.num_hosts() {
            // Every routing peer has a path and a host index.
            assert_eq!(w.peers_of(h).len(), w.tree(h).num_leaves());
            for &p in w.peers_of(h) {
                assert!(p < w.num_hosts());
                let pid = w.node(p).id();
                assert!(w.path_to_peer(h, pid).is_some());
            }
            // The archive has probes spread over the duration.
            assert!(w.archive(h).num_probes() >= 2);
        }
    }

    #[test]
    fn failures_keep_target_population() {
        let w = tiny_world(2);
        // At mid-simulation, roughly target_down links should be down.
        let t = SimTime::from_secs(300);
        let down = w
            .topology()
            .graph
            .links()
            .filter(|&l| !w.link_up_at(l, t))
            .count();
        let expect =
            (w.topology().graph.num_links() as f64 * w.config().failure.fraction_bad).round();
        assert!(
            (down as f64 - expect).abs() <= expect * 0.5 + 2.0,
            "down {down}, expected ≈ {expect}"
        );
    }

    #[test]
    fn routes_deliver_to_closest_host() {
        let w = tiny_world(3);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let target = Id::random(&mut rng);
            let route = w.route(0, target).unwrap();
            let last = w.node(*route.last().unwrap()).id();
            let best = (0..w.num_hosts())
                .map(|h| w.node(h).id())
                .min_by_key(|i| i.ring_distance(&target))
                .unwrap();
            assert_eq!(last, best);
        }
    }

    #[test]
    fn message_outcomes_reflect_adversaries() {
        // Use a gentler failure rate so up-paths are easy to find.
        let mut cfg = SimConfig::tiny();
        cfg.failure.fraction_bad = 0.01;
        let mut rng = StdRng::seed_from_u64(4);
        let w = SimWorld::build(cfg, &mut rng);
        // With every link forced up (probe at a time after all repairs?
        // cannot force, so instead test the dropper path on a direct
        // neighbour route) — pick a destination whose route is exactly
        // [src, dst].
        let src = 0usize;
        let mut dst = None;
        for &p in w.peers_of(src) {
            let id = w.node(p).id();
            if w.route(src, id) == Some(vec![src, p]) {
                dst = Some(p);
                break;
            }
        }
        let dst = dst.expect("some peer is reached directly");
        let id = w.node(dst).id();
        // Find a time when the direct IP path is up.
        let path = w.path_to_peer(src, id).unwrap().clone();
        let mut good_t = None;
        for s in 0..600 {
            let t = SimTime::from_secs(s);
            if w.path_up_at(&path, t) {
                good_t = Some(t);
                break;
            }
        }
        let t = good_t.expect("path is up at some point");
        // No adversaries → delivered.
        let out = w.message_outcome(src, id, t, &AdversarySets::none());
        assert!(out.delivered(), "{out:?}");
        // The final destination being a "dropper" does not matter — only
        // intermediate forwarders drop. A two-node route has none.
        let mut adv = AdversarySets::none();
        adv.droppers.insert(dst);
        assert!(w.message_outcome(src, id, t, &adv).delivered());
    }

    #[test]
    fn network_drops_are_attributed_to_links() {
        let w = tiny_world(5);
        let src = 0usize;
        let dst = w.peers_of(src)[0];
        let id = w.node(dst).id();
        let path = w.path_to_peer(src, id).unwrap().clone();
        // Find a time when the path is down (5% of links fail, paths are
        // long, failures are biased onto overlay paths — should exist).
        let mut bad_t = None;
        for s in 0..3600 {
            let t = SimTime::from_secs(s);
            if !w.path_up_at(&path, t) {
                bad_t = Some(t);
                break;
            }
        }
        if let Some(t) = bad_t {
            if w.route(src, id) == Some(vec![src, dst]) {
                match w.message_outcome(src, id, t, &AdversarySets::none()) {
                    MessageOutcome::DroppedByNetwork { link, from, to, .. } => {
                        assert_eq!((from, to), (src, dst));
                        assert!(!w.link_up_at(link, t));
                    }
                    other => panic!("expected network drop, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn probe_evidence_excludes_judged_host() {
        let w = tiny_world(6);
        let judge = 0usize;
        let excluded = w.peers_of(judge)[0];
        // Pick a link the excluded host's tree covers.
        let link = w.tree(excluded).link_set()[0];
        let t = SimTime::from_secs(300);
        let delta = SimDuration::from_secs(120);
        let with = w.probe_evidence(judge, link, t, delta, None);
        let without = w.probe_evidence(judge, link, t, delta, Some(excluded));
        assert!(without.iter().all(|&(o, _)| o != excluded));
        assert!(with.len() >= without.len());
    }

    #[test]
    fn probe_accuracy_matches_configuration() {
        // The fraction of observations agreeing with ground truth must be
        // the configured probe accuracy (0.9).
        let w = tiny_world(7);
        let mut agree = 0u64;
        let mut total = 0u64;
        for h in 0..w.num_hosts() {
            let a = w.archive(h);
            for round in 0..a.num_probes() {
                let t = a.round_time(round);
                for link in w.tree(h).link_set() {
                    if let Some(o) = a.observation(round, link) {
                        total += 1;
                        if o == w.link_up_at(link, t) {
                            agree += 1;
                        }
                    }
                }
            }
        }
        let frac = agree as f64 / total as f64;
        assert!(
            (frac - 0.9).abs() < 0.02,
            "agreement {frac}, expected ≈ 0.9 over {total} observations"
        );
    }

    #[test]
    fn standard_routing_reduces_ip_stretch() {
        // §2: standard tables use proximity affinity to minimise routing
        // latency. Over many routes, the IP hops of standard routes must
        // not exceed (and typically undercut) the secure ones.
        let mut rng = StdRng::seed_from_u64(21);
        let w = SimWorld::build(SimConfig::small(), &mut rng);
        let mut secure_total = 0u32;
        let mut standard_total = 0u32;
        let mut count = 0;
        for k in 0..60 {
            let src = k % w.num_hosts();
            let target = Id::random(&mut rng);
            let (Some(sec), Some(std)) = (
                w.route_via(src, target, RoutingMode::Secure),
                w.route_via(src, target, RoutingMode::Standard),
            ) else {
                continue;
            };
            // Both modes deliver to the same responsible node.
            assert_eq!(sec.last(), std.last(), "modes agree on the owner");
            secure_total += w.route_ip_hops(&sec);
            standard_total += w.route_ip_hops(&std);
            count += 1;
        }
        assert!(count >= 50);
        assert!(
            standard_total <= secure_total,
            "standard {standard_total} should not exceed secure {secure_total} IP hops"
        );
    }

    #[test]
    fn hop_outcomes_match_path_state() {
        let w = tiny_world(23);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let target = Id::random(&mut rng);
            let t = SimTime::from_secs(rng.gen_range(0..600));
            let hops = w.hop_outcomes(0, target, t);
            let route = w.route(0, target).unwrap();
            assert_eq!(hops.len(), route.len() - 1);
            for h in &hops {
                let peer_id = w.node(h.to).id();
                let path = w.path_to_peer(h.from, peer_id).unwrap();
                assert_eq!(h.ip_path_up, w.path_up_at(path, t));
            }
        }
    }

    #[test]
    fn ip_distances_are_symmetric_and_consistent() {
        let w = tiny_world(22);
        for a in 0..w.num_hosts() {
            assert_eq!(w.ip_distance(a, a), 0);
            for b in 0..w.num_hosts() {
                assert_eq!(w.ip_distance(a, b), w.ip_distance(b, a));
            }
        }
        // Distances match the stored peer paths.
        let a = 0usize;
        for &p in w.peers_of(a) {
            let pid = w.node(p).id();
            let path = w.path_to_peer(a, pid).unwrap();
            assert_eq!(w.ip_distance(a, p), path.hop_count() as u32);
        }
    }

    #[test]
    fn observed_near_tracks_peer_probe_rounds() {
        let w = tiny_world(31);
        let h = 0usize;
        // A peer's actual round time is observed; a window far past the
        // simulation end is not.
        let p = w.peers_of(h)[0];
        let rt = w.archive(p).round_time(0);
        assert!(w.observed_near(h, rt, SimDuration::from_secs(1)));
        let far = SimTime::from_secs(1_000_000);
        assert!(!w.observed_near(h, far, SimDuration::from_secs(1)));
    }

    #[test]
    fn adaptive_droppers_behave_while_observed() {
        // The tiny overlay is fully meshed (all routes direct); the small
        // one has multi-hop routes with intermediate forwarders. Gentle
        // failures so some multi-hop route is actually deliverable.
        let mut cfg = SimConfig::small();
        cfg.failure.fraction_bad = 0.005;
        let mut build_rng = StdRng::seed_from_u64(32);
        let w = SimWorld::build(cfg, &mut build_rng);
        // Find a 3-hop route so there is an intermediate forwarder.
        let mut rng = StdRng::seed_from_u64(50);
        let (route, t) = 'found: {
            for _ in 0..500 {
                let src = rng.gen_range(0..w.num_hosts());
                let target = Id::random(&mut rng);
                let route = w.route(src, target).unwrap();
                if route.len() < 3 {
                    continue;
                }
                for s in 0..600 {
                    let t = SimTime::from_secs(s);
                    if w.message_outcome_on_route(&route, t, &AdversarySets::none())
                        .delivered()
                    {
                        break 'found (route, t);
                    }
                }
            }
            panic!("no deliverable 3-hop route found");
        };
        let mid = route[1];
        // An unconditional dropper at the intermediate hop always drops.
        let mut plain = AdversarySets::none();
        plain.droppers.insert(mid);
        assert!(!w.message_outcome_on_route(&route, t, &plain).delivered());
        // An adaptive dropper drops only while unprobed: probe rounds are
        // dense within the episode (max interval 60s < 75s guard), so at a
        // deliverable in-episode instant it is observed and behaves.
        let mut adaptive = AdversarySets::none();
        adaptive.adaptive_droppers.insert(mid);
        let out = w.message_outcome_on_route(&route, t, &adaptive);
        assert_eq!(
            out.delivered(),
            w.observed_near(mid, t, ADAPTIVE_GUARD),
            "adaptive dropper must drop exactly while unprobed"
        );
        // Far outside the probing phase nothing observes it → it drops.
        let far = SimTime::from_secs(1_000_000);
        assert!(!w.observed_near(mid, far, ADAPTIVE_GUARD));
        match w.message_outcome_on_route(&route, far, &adaptive) {
            MessageOutcome::DroppedByHost { at, .. } => assert_eq!(at, mid),
            MessageOutcome::DroppedByNetwork { .. } => {} // a link died first
            MessageOutcome::Delivered { .. } => panic!("unobserved adaptive host must drop"),
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = tiny_world(8);
        let b = tiny_world(8);
        assert_eq!(a.num_hosts(), b.num_hosts());
        for h in 0..a.num_hosts() {
            assert_eq!(a.node(h).id(), b.node(h).id());
            assert_eq!(a.archive(h).num_probes(), b.archive(h).num_probes());
        }
    }
}

