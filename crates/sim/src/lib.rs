//! Discrete-event simulation of a secure overlay atop a failing Internet
//! (§4.2 of the paper).
//!
//! "The simulator modeled link failure, tomographic probing, the
//! collaborative dissemination of probe results, and three types of
//! message events (message sent, message acknowledged, message not
//! acknowledged). The simulator placed a Pastry overlay atop an IP
//! topology... 5% of links were bad at any moment... Simulations lasted
//! for two virtual hours."
//!
//! This crate provides:
//!
//! * [`EventQueue`] — a generic discrete-event queue with a virtual clock.
//! * [`SimConfig`] — all evaluation parameters, with presets matching the
//!   paper ([`SimConfig::paper_scale`]) and fast test sizes.
//! * [`SimWorld`] — the assembled world: topology, overlay, per-host probe
//!   trees, the full two-hour link-failure history, and every host's
//!   probe archive (per-link up/down observations at the paper's 90%
//!   accuracy).
//! * [`AdversarySets`] — which hosts drop messages, collude on probe
//!   results, withhold acks, delay snapshots, or replay stale ones.
//! * [`FaultPlan`] — seeded, deterministic fault injection: message drop,
//!   latency, duplication, reordering, and crash/restart churn.
//! * [`Histogram`] — the blame-PDF accumulator used by Figure 5.
//! * [`invariants`] — whole-system invariant checkers and direct-evaluation
//!   oracles (Eq. 2–3 blame, binomial verdict tail) for simulation testing.
//! * [`explorer`] — deterministic simulation testing: seeded fault-plan
//!   episodes running the full diagnose–accuse–revise pipeline, a seed ×
//!   configuration sweep ([`explore`]), and counterexample shrinking
//!   ([`shrink`]) down to a copy-pasteable reproducer.
//! * [`fuzz`] — coverage-guided scenario fuzzing: a seeded loop mutating
//!   episode configurations toward novel trace/metric coverage, with a
//!   replayable corpus, coverage-preserving shrinking, and the AS-like
//!   shared-bottleneck world ([`bottleneck_world`]).
//!
//! # Examples
//!
//! ```
//! use concilium_sim::{SimConfig, SimWorld};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let world = SimWorld::build(SimConfig::tiny(), &mut rng);
//! assert!(world.num_hosts() >= 4);
//! // Every host has a probe tree over its routing peers.
//! assert!(world.tree(0).num_leaves() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod archive;
mod behavior;
mod config;
mod engine;
pub mod explorer;
mod failhist;
pub mod faults;
pub mod fuzz;
pub mod invariants;
mod metrics;
mod world;

pub use archive::ProbeArchive;
pub use behavior::AdversarySets;
pub use config::SimConfig;
pub use engine::{EventQueue, HeapEventQueue, ScheduleError};
pub use explorer::{
    dst_world, explore, explore_jobs, run_episode, shrink, EpisodeConfig, EpisodeOptions,
    EpisodeReport, EpisodeStats, EpisodeTrace, ExploreOutcome, FailingCase,
};
pub use failhist::IndexedHistory;
pub use faults::{
    BurstConfig, ChurnConfig, FaultConfig, FaultError, FaultPlan, MessageFate, StormConfig,
};
pub use fuzz::{
    bottleneck_world, episode_coverage, fuzz, grid_coverage, CorpusEntry, FuzzConfig, FuzzOutcome,
    WorldKind,
};
pub use invariants::{
    check_metrics_conservation, check_serve_conservation, InvariantKind, TraceHasher, Violation,
};
pub use metrics::Histogram;
pub use world::{HopOutcome, MessageOutcome, RouteFate, SimWorld, ADAPTIVE_GUARD};
