//! Adversary assignments.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

/// Which hosts misbehave, and how.
///
/// * **Droppers** silently discard application messages they should
///   forward (the faulty forwarders Figure 5 judges).
/// * **Colluders** submit malicious probe results when judgments involve
///   their co-conspirators: claiming links *up* when an innocent node is
///   judged and *down* when a fellow colluder is judged (§4.3).
///
/// The two sets coincide in the paper's Figure 5(b) scenario ("20% of
/// peers colluded to maliciously flip their probe results") but are kept
/// separate so the ablation benches can vary them independently.
#[derive(Clone, Debug, Default)]
pub struct AdversarySets {
    /// Hosts (by index) that drop forwarded messages.
    pub droppers: HashSet<usize>,
    /// Hosts (by index) that flip probe results in collusion.
    pub colluders: HashSet<usize>,
}

impl AdversarySets {
    /// No adversaries at all.
    pub fn none() -> Self {
        AdversarySets::default()
    }

    /// Samples adversary sets: `dropper_fraction` of hosts drop messages
    /// and `colluder_fraction` flip probe results. When both fractions are
    /// equal the same hosts play both roles (the paper's model).
    ///
    /// # Panics
    ///
    /// Panics if either fraction is outside `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(
        num_hosts: usize,
        dropper_fraction: f64,
        colluder_fraction: f64,
        rng: &mut R,
    ) -> Self {
        for (name, f) in [("dropper", dropper_fraction), ("colluder", colluder_fraction)] {
            assert!(
                (0.0..=1.0).contains(&f),
                "{name} fraction must be in [0,1], got {f}"
            );
        }
        let mut order: Vec<usize> = (0..num_hosts).collect();
        order.shuffle(rng);
        let d = (num_hosts as f64 * dropper_fraction).round() as usize;
        let c = (num_hosts as f64 * colluder_fraction).round() as usize;
        // Overlap by construction: the first min(d, c) hosts are both.
        AdversarySets {
            droppers: order.iter().copied().take(d).collect(),
            colluders: order.iter().copied().take(c).collect(),
        }
    }

    /// Whether host `h` drops messages.
    pub fn is_dropper(&self, h: usize) -> bool {
        self.droppers.contains(&h)
    }

    /// Whether host `h` colludes on probe results.
    pub fn is_colluder(&self, h: usize) -> bool {
        self.colluders.contains(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_sizes_match_fractions() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = AdversarySets::sample(100, 0.2, 0.2, &mut rng);
        assert_eq!(a.droppers.len(), 20);
        assert_eq!(a.colluders.len(), 20);
        // Equal fractions → identical sets (the paper's model).
        assert_eq!(a.droppers, a.colluders);
    }

    #[test]
    fn unequal_fractions_nest() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = AdversarySets::sample(100, 0.1, 0.3, &mut rng);
        assert_eq!(a.droppers.len(), 10);
        assert_eq!(a.colluders.len(), 30);
        assert!(a.droppers.is_subset(&a.colluders));
    }

    #[test]
    fn none_has_no_adversaries() {
        let a = AdversarySets::none();
        assert!(!a.is_dropper(0));
        assert!(!a.is_colluder(0));
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn bad_fraction_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = AdversarySets::sample(10, 1.5, 0.0, &mut rng);
    }
}
