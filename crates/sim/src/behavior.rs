//! Adversary assignments.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

/// Which hosts misbehave, and how.
///
/// * **Droppers** silently discard application messages they should
///   forward (the faulty forwarders Figure 5 judges).
/// * **Colluders** submit malicious probe results when judgments involve
///   their co-conspirators: claiming links *up* when an innocent node is
///   judged and *down* when a fellow colluder is judged (§4.3).
/// * **Ack withholders** deliver messages but never acknowledge them,
///   manufacturing phantom drops that frame their upstream forwarders.
/// * **Probe delayers** sit on their snapshots until the observations
///   fall outside the judge's admissibility window `[t − Δ, t + Δ]`,
///   starving judgments of evidence without overtly lying.
/// * **Stale replayers** answer snapshot requests with old archives,
///   re-signing observations whose timestamps predate the freshness
///   horizon — detected by [`ConciliumNode::receive_snapshot`]'s
///   staleness check.
///
/// Droppers and colluders coincide in the paper's Figure 5(b) scenario
/// ("20% of peers colluded to maliciously flip their probe results") but
/// are kept separate so the ablation benches can vary them independently;
/// the remaining roles drive the fault-injection harness ([`crate::faults`]).
///
/// [`ConciliumNode::receive_snapshot`]: https://docs.rs/concilium
#[derive(Clone, Debug, Default)]
pub struct AdversarySets {
    /// Hosts (by index) that drop forwarded messages.
    pub droppers: HashSet<usize>,
    /// Hosts (by index) that flip probe results in collusion.
    pub colluders: HashSet<usize>,
    /// Hosts (by index) that deliver but never acknowledge.
    pub ack_withholders: HashSet<usize>,
    /// Hosts (by index) whose snapshots arrive too late to be admissible.
    pub probe_delayers: HashSet<usize>,
    /// Hosts (by index) that replay outdated snapshots.
    pub stale_replayers: HashSet<usize>,
    /// Hosts (by index) in a colluding accuser coalition: they withhold
    /// acknowledgments to manufacture phantom drops *and* flip their
    /// probe results in the resulting judgments — framing non-members
    /// and shielding members in one coordinated attack.
    pub coalition: HashSet<usize>,
    /// Hosts (by index) that drop forwarded messages only while no
    /// vantage has probed their neighbourhood recently — adaptive
    /// adversaries that behave whenever they might be observed.
    pub adaptive_droppers: HashSet<usize>,
}

impl AdversarySets {
    /// No adversaries at all.
    pub fn none() -> Self {
        AdversarySets::default()
    }

    /// Samples adversary sets: `dropper_fraction` of hosts drop messages
    /// and `colluder_fraction` flip probe results. When both fractions are
    /// equal the same hosts play both roles (the paper's model).
    ///
    /// # Panics
    ///
    /// Panics if either fraction is outside `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(
        num_hosts: usize,
        dropper_fraction: f64,
        colluder_fraction: f64,
        rng: &mut R,
    ) -> Self {
        for (name, f) in [("dropper", dropper_fraction), ("colluder", colluder_fraction)] {
            assert!(
                (0.0..=1.0).contains(&f),
                "{name} fraction must be in [0,1], got {f}"
            );
        }
        let mut order: Vec<usize> = (0..num_hosts).collect();
        order.shuffle(rng);
        let d = (num_hosts as f64 * dropper_fraction).round() as usize;
        let c = (num_hosts as f64 * colluder_fraction).round() as usize;
        // Overlap by construction: the first min(d, c) hosts are both.
        AdversarySets {
            droppers: order.iter().copied().take(d).collect(),
            colluders: order.iter().copied().take(c).collect(),
            ..AdversarySets::default()
        }
    }

    /// Samples the Byzantine roles of the fault-injection harness on top
    /// of existing assignments: `withholder_fraction` of hosts withhold
    /// acknowledgments, `delayer_fraction` delay their snapshots past the
    /// admissibility window, and `replayer_fraction` replay stale
    /// snapshots. The three draws are independent of each other and of the
    /// dropper/colluder sets.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]`.
    pub fn sample_byzantine<R: Rng + ?Sized>(
        mut self,
        num_hosts: usize,
        withholder_fraction: f64,
        delayer_fraction: f64,
        replayer_fraction: f64,
        rng: &mut R,
    ) -> Self {
        let draw = |name: &str, fraction: f64, rng: &mut R| -> HashSet<usize> {
            assert!(
                (0.0..=1.0).contains(&fraction),
                "{name} fraction must be in [0,1], got {fraction}"
            );
            let mut order: Vec<usize> = (0..num_hosts).collect();
            order.shuffle(rng);
            let k = (num_hosts as f64 * fraction).round() as usize;
            order.into_iter().take(k).collect()
        };
        self.ack_withholders = draw("ack withholder", withholder_fraction, rng);
        self.probe_delayers = draw("probe delayer", delayer_fraction, rng);
        self.stale_replayers = draw("stale replayer", replayer_fraction, rng);
        self
    }

    /// Samples the extended scenario-family roles the fuzzer opens:
    /// `coalition_fraction` of hosts form a colluding accuser coalition
    /// and `adaptive_fraction` drop messages only while unprobed. Both
    /// draws are independent of every other role set.
    ///
    /// # Panics
    ///
    /// Panics if either fraction is outside `[0, 1]`.
    pub fn sample_extended<R: Rng + ?Sized>(
        mut self,
        num_hosts: usize,
        coalition_fraction: f64,
        adaptive_fraction: f64,
        rng: &mut R,
    ) -> Self {
        let draw = |name: &str, fraction: f64, rng: &mut R| -> HashSet<usize> {
            assert!(
                (0.0..=1.0).contains(&fraction),
                "{name} fraction must be in [0,1], got {fraction}"
            );
            let mut order: Vec<usize> = (0..num_hosts).collect();
            order.shuffle(rng);
            let k = (num_hosts as f64 * fraction).round() as usize;
            order.into_iter().take(k).collect()
        };
        self.coalition = draw("coalition", coalition_fraction, rng);
        self.adaptive_droppers = draw("adaptive dropper", adaptive_fraction, rng);
        self
    }

    /// Whether host `h` drops messages.
    pub fn is_dropper(&self, h: usize) -> bool {
        self.droppers.contains(&h)
    }

    /// Whether host `h` colludes on probe results.
    pub fn is_colluder(&self, h: usize) -> bool {
        self.colluders.contains(&h)
    }

    /// Whether host `h` withholds acknowledgments for delivered messages.
    pub fn is_ack_withholder(&self, h: usize) -> bool {
        self.ack_withholders.contains(&h)
    }

    /// Whether host `h` delays its snapshots past admissibility.
    pub fn is_probe_delayer(&self, h: usize) -> bool {
        self.probe_delayers.contains(&h)
    }

    /// Whether host `h` replays stale snapshots.
    pub fn is_stale_replayer(&self, h: usize) -> bool {
        self.stale_replayers.contains(&h)
    }

    /// Whether host `h` belongs to the colluding accuser coalition.
    pub fn is_coalition(&self, h: usize) -> bool {
        self.coalition.contains(&h)
    }

    /// Whether host `h` drops messages adaptively (only while unprobed).
    pub fn is_adaptive_dropper(&self, h: usize) -> bool {
        self.adaptive_droppers.contains(&h)
    }

    /// Whether host `h` lies in probe snapshots — plain colluders and
    /// coalition members share the §4.3 flip rule.
    pub fn lies_in_snapshots(&self, h: usize) -> bool {
        self.is_colluder(h) || self.is_coalition(h)
    }

    /// Whether host `h` is protected by the lie: colluders shield fellow
    /// colluders, the coalition shields its members.
    pub fn is_shielded(&self, h: usize) -> bool {
        self.is_colluder(h) || self.is_coalition(h)
    }

    /// Whether host `h` plays any adversarial role at all — the complement
    /// of the explorer's "honest host" predicate.
    pub fn is_adversarial(&self, h: usize) -> bool {
        self.is_dropper(h)
            || self.is_colluder(h)
            || self.is_ack_withholder(h)
            || self.is_probe_delayer(h)
            || self.is_stale_replayer(h)
            || self.is_coalition(h)
            || self.is_adaptive_dropper(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_sizes_match_fractions() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = AdversarySets::sample(100, 0.2, 0.2, &mut rng);
        assert_eq!(a.droppers.len(), 20);
        assert_eq!(a.colluders.len(), 20);
        // Equal fractions → identical sets (the paper's model).
        assert_eq!(a.droppers, a.colluders);
    }

    #[test]
    fn unequal_fractions_nest() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = AdversarySets::sample(100, 0.1, 0.3, &mut rng);
        assert_eq!(a.droppers.len(), 10);
        assert_eq!(a.colluders.len(), 30);
        assert!(a.droppers.is_subset(&a.colluders));
    }

    #[test]
    fn none_has_no_adversaries() {
        let a = AdversarySets::none();
        assert!(!a.is_dropper(0));
        assert!(!a.is_colluder(0));
        assert!(!a.is_ack_withholder(0));
        assert!(!a.is_probe_delayer(0));
        assert!(!a.is_stale_replayer(0));
    }

    #[test]
    fn byzantine_roles_sample_independently() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = AdversarySets::sample(100, 0.2, 0.0, &mut rng)
            .sample_byzantine(100, 0.1, 0.3, 0.05, &mut rng);
        assert_eq!(a.droppers.len(), 20);
        assert_eq!(a.ack_withholders.len(), 10);
        assert_eq!(a.probe_delayers.len(), 30);
        assert_eq!(a.stale_replayers.len(), 5);
        let w: Vec<usize> = a.ack_withholders.iter().copied().collect();
        assert!(w.iter().all(|&h| h < 100));
    }

    #[test]
    fn extended_roles_sample_independently() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = AdversarySets::sample(100, 0.1, 0.0, &mut rng)
            .sample_extended(100, 0.15, 0.2, &mut rng);
        assert_eq!(a.coalition.len(), 15);
        assert_eq!(a.adaptive_droppers.len(), 20);
        let c = *a.coalition.iter().next().unwrap();
        assert!(a.is_coalition(c));
        assert!(a.lies_in_snapshots(c));
        assert!(a.is_shielded(c));
        assert!(a.is_adversarial(c));
        let honest = (0..100)
            .find(|&h| !a.is_adversarial(h))
            .expect("most hosts stay honest");
        assert!(!a.is_coalition(honest));
        assert!(!a.is_adaptive_dropper(honest));
    }

    #[test]
    #[should_panic(expected = "coalition fraction")]
    fn bad_coalition_fraction_rejected() {
        let mut rng = StdRng::seed_from_u64(12);
        let _ = AdversarySets::none().sample_extended(10, 1.5, 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "ack withholder fraction")]
    fn bad_byzantine_fraction_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = AdversarySets::none().sample_byzantine(10, -0.1, 0.0, 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn bad_fraction_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = AdversarySets::sample(10, 1.5, 0.0, &mut rng);
    }
}
