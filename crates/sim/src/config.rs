//! Simulation parameters.

use serde::{Deserialize, Serialize};

use concilium_topology::{FailureModelConfig, TransitStubConfig};
use concilium_types::SimDuration;

/// All parameters of an evaluation run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The synthetic Internet topology to generate.
    pub topology: TransitStubConfig,
    /// Fraction of end hosts that run overlay nodes (paper: 3%).
    pub overlay_fraction: f64,
    /// Leaf-set capacity (paper: 16 leaf nodes).
    pub leaf_capacity: usize,
    /// Virtual duration of the run (paper: two hours).
    pub duration: SimDuration,
    /// Upper bound of the uniform probe inter-arrival time
    /// (paper: "on the order of one or two minutes"; Figure 5 uses 120 s).
    pub max_probe_time: SimDuration,
    /// Probability that a probe correctly identifies a link's up/down
    /// state (paper §4.3: 90%).
    pub probe_accuracy: f64,
    /// The link-failure process parameters.
    pub failure: FailureModelConfig,
}

impl SimConfig {
    /// The paper's evaluation scale: the SCAN-sized topology, 3% of end
    /// hosts (≈1,131 overlay nodes), two virtual hours, 5% of links bad.
    pub fn paper_scale() -> Self {
        SimConfig {
            topology: TransitStubConfig::paper_scale(),
            overlay_fraction: 0.03,
            leaf_capacity: 16,
            duration: SimDuration::from_mins(120),
            max_probe_time: SimDuration::from_secs(120),
            probe_accuracy: 0.9,
            failure: FailureModelConfig::default(),
        }
    }

    /// A mid-size configuration (hundreds of overlay nodes) for quicker
    /// experiment iterations.
    pub fn medium() -> Self {
        SimConfig {
            topology: TransitStubConfig::medium(),
            overlay_fraction: 0.05,
            leaf_capacity: 16,
            duration: SimDuration::from_mins(120),
            max_probe_time: SimDuration::from_secs(120),
            probe_accuracy: 0.9,
            failure: FailureModelConfig::default(),
        }
    }

    /// A small configuration for integration tests (~20 overlay nodes,
    /// 30 virtual minutes).
    pub fn small() -> Self {
        SimConfig {
            topology: TransitStubConfig::small(),
            overlay_fraction: 0.12,
            leaf_capacity: 8,
            duration: SimDuration::from_mins(30),
            max_probe_time: SimDuration::from_secs(120),
            probe_accuracy: 0.9,
            failure: FailureModelConfig::default(),
        }
    }

    /// The smallest world that still exercises every code path, for unit
    /// tests and doctests.
    pub fn tiny() -> Self {
        SimConfig {
            topology: TransitStubConfig::tiny(),
            overlay_fraction: 0.25,
            leaf_capacity: 4,
            duration: SimDuration::from_mins(10),
            max_probe_time: SimDuration::from_secs(60),
            probe_accuracy: 0.9,
            failure: FailureModelConfig::default(),
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range.
    pub fn validate(&self) {
        assert!(
            self.overlay_fraction > 0.0 && self.overlay_fraction <= 1.0,
            "overlay fraction must be in (0,1], got {}",
            self.overlay_fraction
        );
        assert!(
            self.leaf_capacity >= 2 && self.leaf_capacity.is_multiple_of(2),
            "leaf capacity must be even and at least 2, got {}",
            self.leaf_capacity
        );
        assert!(
            self.probe_accuracy > 0.5 && self.probe_accuracy <= 1.0,
            "probe accuracy must be in (0.5, 1], got {}",
            self.probe_accuracy
        );
        assert!(self.duration > SimDuration::ZERO, "duration must be positive");
        assert!(
            self.max_probe_time > SimDuration::ZERO,
            "max probe time must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        SimConfig::paper_scale().validate();
        SimConfig::medium().validate();
        SimConfig::small().validate();
        SimConfig::tiny().validate();
    }

    #[test]
    fn paper_scale_matches_paper_numbers() {
        let c = SimConfig::paper_scale();
        assert_eq!(c.overlay_fraction, 0.03);
        assert_eq!(c.duration, SimDuration::from_mins(120));
        assert_eq!(c.probe_accuracy, 0.9);
        assert_eq!(c.failure.fraction_bad, 0.05);
        // ≈1,131 overlay nodes.
        let hosts = (c.topology.end_hosts as f64 * c.overlay_fraction).round();
        assert!((hosts - 1_131.0).abs() < 10.0, "expected ≈1131, got {hosts}");
    }

    #[test]
    #[should_panic(expected = "overlay fraction")]
    fn bad_fraction_rejected() {
        let mut c = SimConfig::tiny();
        c.overlay_fraction = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "probe accuracy")]
    fn bad_accuracy_rejected() {
        let mut c = SimConfig::tiny();
        c.probe_accuracy = 0.4;
        c.validate();
    }
}
