//! Deterministic fault injection for the simulator.
//!
//! A [`FaultPlan`] perturbs two layers of the simulation:
//!
//! * **Message delivery** — each injected message can be dropped,
//!   delayed, duplicated, or reordered ([`FaultPlan::fate`]), and the
//!   resulting delivery events are driven through the existing
//!   [`EventQueue`] ([`FaultPlan::inject`]) so perturbed runs stay fully
//!   deterministic: the queue's insertion-order tie-break plus the plan's
//!   private seeded RNG make every run with the same seed and
//!   [`FaultConfig`] bit-identical.
//! * **Node lifecycle** — a configurable fraction of hosts crash during
//!   the run and restart after a sampled outage ([`FaultPlan::host_up`]),
//!   giving churn windows the recovery layer must ride out.
//!
//! The plan also parameterises the Byzantine roles of
//! [`AdversarySets`](crate::AdversarySets) that go beyond droppers and
//! colluders: acknowledgment withholding ([`FaultPlan::ack_arrives`]) and
//! snapshot delaying/stale replay ([`FaultPlan::snapshot_time`]).
//!
//! The plan draws from its *own* seeded RNG rather than the world's, so
//! adding fault injection to an experiment does not desynchronise the
//! world-construction stream: the same world can be replayed under
//! different fault plans and vice versa.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use concilium_types::{SimDuration, SimTime};

use crate::behavior::AdversarySets;
use crate::engine::{EventQueue, ScheduleError};

/// Message-level and lifecycle fault knobs. The default is fully
/// transparent (no perturbation at all).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that an injected message is silently dropped.
    pub drop_probability: f64,
    /// Probability that an acknowledgment is lost in transit (consulted
    /// by [`FaultPlan::ack_arrives`], independently per attempt).
    pub ack_drop_probability: f64,
    /// Probability that a delivered message is duplicated (two delivery
    /// events are scheduled).
    pub duplicate_probability: f64,
    /// Probability that a delivered message is reordered: it is held for
    /// an extra [`FaultConfig::reorder_delay`], letting later sends
    /// overtake it.
    pub reorder_probability: f64,
    /// Upper bound of the uniform extra latency added to every delivery.
    pub extra_latency_max: SimDuration,
    /// How long a reordered message is held beyond its normal latency.
    pub reorder_delay: SimDuration,
    /// How far a probe-delayer's snapshot timestamps are shifted into the
    /// past (pick > the judge's Δ to defeat admissibility).
    pub delayer_shift: SimDuration,
    /// How old a stale replayer's snapshots are (pick > the freshness
    /// horizon so honest receivers reject them).
    pub replay_age: SimDuration,
    /// Node-lifecycle churn.
    pub churn: ChurnConfig,
    /// Gilbert–Elliott bursty transport loss layered on top of the
    /// independent drop probabilities.
    pub burst: BurstConfig,
    /// Eclipse-style churn storm: a coordinated crash wave.
    pub storm: StormConfig,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            ack_drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            extra_latency_max: SimDuration::ZERO,
            reorder_delay: SimDuration::from_secs(1),
            delayer_shift: SimDuration::from_secs(300),
            replay_age: SimDuration::from_secs(900),
            churn: ChurnConfig::default(),
            burst: BurstConfig::default(),
            storm: StormConfig::default(),
        }
    }
}

/// Gilbert–Elliott two-state channel: the transport alternates between a
/// *good* state (no extra loss) and a *bad* state that drops each message
/// with [`BurstConfig::bad_loss`]. State transitions are sampled once per
/// transport decision, so loss arrives in bursts whose expected length is
/// `1 / bad_to_good` decisions. Disabled (and consuming no RNG state at
/// all) while [`BurstConfig::good_to_bad`] is zero, so transparent plans
/// stay stream-compatible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstConfig {
    /// Per-decision probability of entering the bad state from good.
    pub good_to_bad: f64,
    /// Per-decision probability of leaving the bad state for good.
    pub bad_to_good: f64,
    /// Drop probability applied to each decision made in the bad state.
    pub bad_loss: f64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig { good_to_bad: 0.0, bad_to_good: 0.1, bad_loss: 0.5 }
    }
}

impl BurstConfig {
    /// Whether the channel ever leaves the good state.
    pub fn enabled(&self) -> bool {
        self.good_to_bad > 0.0
    }
}

/// Eclipse-style churn storm: a coordinated fraction of hosts crash
/// *together* inside one window, instead of the independent crashes of
/// [`ChurnConfig`]. Modeled on eclipse attacks, where an adversary times
/// simultaneous departures to partition a victim's routing neighbourhood.
/// Storm participants are drawn uniformly; their shared window starts at
/// [`StormConfig::start_frac`] of the run and lasts
/// [`StormConfig::duration`]. Disabled (no RNG consumed) while
/// [`StormConfig::fraction`] is zero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StormConfig {
    /// Fraction of hosts that crash in the coordinated wave.
    pub fraction: f64,
    /// Storm onset, as a fraction of the run duration.
    pub start_frac: f64,
    /// How long every storm participant stays down.
    pub duration: SimDuration,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            fraction: 0.0,
            start_frac: 0.4,
            duration: SimDuration::from_secs(120),
        }
    }
}

/// Crash/restart churn: which fraction of hosts crash once during the
/// run, and how long they stay down.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Fraction of hosts that crash at a uniform random time.
    pub crash_fraction: f64,
    /// Mean outage duration (outages are uniform in
    /// `[min_outage, 2 × mean − min_outage]`).
    pub mean_outage: SimDuration,
    /// Minimum outage duration.
    pub min_outage: SimDuration,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            crash_fraction: 0.0,
            mean_outage: SimDuration::from_secs(120),
            min_outage: SimDuration::from_secs(10),
        }
    }
}

/// An invalid [`FaultConfig`] knob.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultError {
    /// A probability knob is outside `[0, 1]`.
    BadProbability {
        /// Which knob.
        knob: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The churn outage bounds are inconsistent (`mean < min`).
    BadOutage,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadProbability { knob, value } => {
                write!(f, "{knob} must be in [0,1], got {value}")
            }
            FaultError::BadOutage => write!(f, "mean outage must be at least the minimum"),
        }
    }
}

impl std::error::Error for FaultError {}

/// What the plan decided for one injected message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MessageFate {
    /// The message never arrives.
    Dropped,
    /// The message arrives at each listed time (two entries when
    /// duplicated). Times include latency, reordering holds, and are
    /// never before the send time.
    Delivered {
        /// Scheduled delivery instants.
        at: Vec<SimTime>,
    },
}

impl MessageFate {
    /// Whether at least one copy arrives.
    pub fn delivered(&self) -> bool {
        matches!(self, MessageFate::Delivered { .. })
    }
}

/// A seeded, deterministic fault plan (see the module docs).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: StdRng,
    /// Per host: `Some((down_from, up_again))` if it crashes.
    outages: Vec<Option<(SimTime, SimTime)>>,
    /// Gilbert–Elliott channel state: currently in the bad state?
    burst_bad: bool,
}

impl FaultPlan {
    /// Builds a plan for `num_hosts` hosts over a run of `duration`,
    /// seeding its private RNG from `seed`. Churn windows are sampled up
    /// front so [`FaultPlan::host_up`] is a pure query.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError`] for out-of-range probabilities or
    /// inconsistent outage bounds.
    pub fn new(
        cfg: FaultConfig,
        seed: u64,
        num_hosts: usize,
        duration: SimDuration,
    ) -> Result<Self, FaultError> {
        for (knob, value) in [
            ("drop probability", cfg.drop_probability),
            ("ack drop probability", cfg.ack_drop_probability),
            ("duplicate probability", cfg.duplicate_probability),
            ("reorder probability", cfg.reorder_probability),
            ("crash fraction", cfg.churn.crash_fraction),
            ("burst good-to-bad", cfg.burst.good_to_bad),
            ("burst bad-to-good", cfg.burst.bad_to_good),
            ("burst bad loss", cfg.burst.bad_loss),
            ("storm fraction", cfg.storm.fraction),
            ("storm start fraction", cfg.storm.start_frac),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultError::BadProbability { knob, value });
            }
        }
        if cfg.churn.mean_outage < cfg.churn.min_outage {
            return Err(FaultError::BadOutage);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let span = duration.as_micros().max(1);
        let outage_span = 2 * cfg.churn.mean_outage.as_micros()
            - cfg.churn.min_outage.as_micros();
        let mut outages: Vec<Option<(SimTime, SimTime)>> = (0..num_hosts)
            .map(|_| {
                if !rng.gen_bool(cfg.churn.crash_fraction) {
                    return None;
                }
                let down = SimTime::from_micros(rng.gen_range(0..span));
                let outage = SimDuration::from_micros(
                    rng.gen_range(cfg.churn.min_outage.as_micros()..=outage_span),
                );
                Some((down, down + outage))
            })
            .collect();
        // Eclipse-style churn storm: a sampled fraction of hosts crash in
        // one *shared* window, overriding any independent churn window
        // they drew above (the storm is the adversary's timing, not the
        // host's own fate). Drawn only when configured so storm-free
        // plans consume no extra RNG state.
        if cfg.storm.fraction > 0.0 {
            let start = SimTime::from_micros(
                (duration.as_micros() as f64 * cfg.storm.start_frac) as u64,
            );
            let end = start + cfg.storm.duration;
            for slot in outages.iter_mut() {
                if rng.gen_bool(cfg.storm.fraction) {
                    *slot = Some((start, end));
                }
            }
        }
        Ok(FaultPlan { cfg, rng, outages, burst_bad: false })
    }

    /// A plan that perturbs nothing (useful as a baseline arm).
    pub fn transparent(num_hosts: usize, duration: SimDuration) -> Self {
        FaultPlan::new(FaultConfig::default(), 0, num_hosts, duration)
            .expect("the default config is valid")
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether host `h` is alive at `t` (false inside its churn window).
    /// Crash starts are inclusive, restarts exclusive, mirroring
    /// [`crate::IndexedHistory::was_up`].
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn host_up(&self, h: usize, t: SimTime) -> bool {
        match self.outages[h] {
            Some((down, up)) => t < down || t >= up,
            None => true,
        }
    }

    /// The churn window of host `h`, if it crashes.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn outage(&self, h: usize) -> Option<(SimTime, SimTime)> {
        self.outages[h]
    }

    /// Advances the Gilbert–Elliott channel one decision and reports
    /// whether the bad state eats this message. Consumes RNG only while
    /// the channel is enabled, so burst-free plans keep their streams.
    fn burst_drops(&mut self) -> bool {
        if !self.cfg.burst.enabled() {
            return false;
        }
        let flip = if self.burst_bad {
            self.cfg.burst.bad_to_good
        } else {
            self.cfg.burst.good_to_bad
        };
        if flip > 0.0 && self.rng.gen_bool(flip) {
            self.burst_bad = !self.burst_bad;
        }
        self.burst_bad
            && self.cfg.burst.bad_loss > 0.0
            && self.rng.gen_bool(self.cfg.burst.bad_loss)
    }

    /// Whether the Gilbert–Elliott channel is currently in its bad state.
    pub fn burst_state_bad(&self) -> bool {
        self.burst_bad
    }

    /// Decides the fate of a message sent at `send`. Consumes RNG state:
    /// call in a deterministic order for reproducible runs.
    pub fn fate(&mut self, send: SimTime) -> MessageFate {
        if self.burst_drops() {
            return MessageFate::Dropped;
        }
        if self.cfg.drop_probability > 0.0 && self.rng.gen_bool(self.cfg.drop_probability) {
            return MessageFate::Dropped;
        }
        let mut first = send + self.latency();
        if self.cfg.reorder_probability > 0.0
            && self.rng.gen_bool(self.cfg.reorder_probability)
        {
            first += self.cfg.reorder_delay;
        }
        let mut at = vec![first];
        if self.cfg.duplicate_probability > 0.0
            && self.rng.gen_bool(self.cfg.duplicate_probability)
        {
            at.push(send + self.latency());
        }
        MessageFate::Delivered { at }
    }

    /// Decides `event`'s fate and schedules every delivery on `queue`.
    /// Returns the fate so callers can record ground truth.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] if `send` precedes the queue's clock
    /// (the event is dropped in that case, like a message sent by a host
    /// whose clock lags the simulation).
    pub fn inject<E: Clone>(
        &mut self,
        queue: &mut EventQueue<E>,
        send: SimTime,
        event: E,
    ) -> Result<MessageFate, ScheduleError> {
        let fate = self.fate(send);
        if let MessageFate::Delivered { at } = &fate {
            for &t in at {
                queue.try_schedule(t, event.clone()).map_err(|(err, _)| err)?;
            }
        }
        Ok(fate)
    }

    /// Whether an acknowledgment from `dest` reaches its steward on this
    /// attempt: never for an ack withholder or a coalition member (the
    /// coalition withholds acks to manufacture phantom drops), and
    /// otherwise subject to the configured transport loss. Each call is an
    /// independent draw, so retransmissions re-roll the loss.
    pub fn ack_arrives(&mut self, adversaries: &AdversarySets, dest: usize) -> bool {
        if adversaries.is_ack_withholder(dest) || adversaries.is_coalition(dest) {
            return false;
        }
        if self.cfg.ack_drop_probability <= 0.0 {
            return true;
        }
        !self.rng.gen_bool(self.cfg.ack_drop_probability)
    }

    /// The timestamp a snapshot from `origin` carries when published at
    /// `t`: probe delayers shift it back by
    /// [`FaultConfig::delayer_shift`] (the observations describe a window
    /// that no longer overlaps the judged instant) and stale replayers by
    /// [`FaultConfig::replay_age`] (old enough to trip the freshness
    /// check). Honest hosts return `t` unchanged.
    pub fn snapshot_time(
        &self,
        adversaries: &AdversarySets,
        origin: usize,
        t: SimTime,
    ) -> SimTime {
        if adversaries.is_stale_replayer(origin) {
            t.saturating_sub(self.cfg.replay_age)
        } else if adversaries.is_probe_delayer(origin) {
            t.saturating_sub(self.cfg.delayer_shift)
        } else {
            t
        }
    }

    /// Whether a unicast protocol message — a DHT put, a revision-handoff
    /// request, a snapshot publication — survives the transport on this
    /// attempt, subject to the configured drop probability. Each call is
    /// an independent draw, mirroring [`FaultPlan::ack_arrives`]; when no
    /// loss is configured no RNG state is consumed, so transparent plans
    /// stay stream-compatible with plans that never ask.
    pub fn transport_delivers(&mut self) -> bool {
        if self.burst_drops() {
            return false;
        }
        if self.cfg.drop_probability <= 0.0 {
            return true;
        }
        !self.rng.gen_bool(self.cfg.drop_probability)
    }

    fn latency(&mut self) -> SimDuration {
        let max = self.cfg.extra_latency_max.as_micros();
        if max == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(self.rng.gen_range(0..=max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(cfg: FaultConfig, seed: u64) -> FaultPlan {
        FaultPlan::new(cfg, seed, 50, SimDuration::from_mins(30)).unwrap()
    }

    #[test]
    fn transparent_plan_changes_nothing() {
        let mut p = FaultPlan::transparent(10, SimDuration::from_mins(30));
        for s in 0..100 {
            let send = SimTime::from_secs(s);
            assert_eq!(p.fate(send), MessageFate::Delivered { at: vec![send] });
        }
        for h in 0..10 {
            assert!(p.host_up(h, SimTime::from_secs(17)));
            assert_eq!(p.outage(h), None);
        }
    }

    #[test]
    fn drop_probability_is_respected() {
        let cfg = FaultConfig { drop_probability: 0.3, ..Default::default() };
        let mut p = plan(cfg, 1);
        let drops = (0..10_000)
            .filter(|&k| !p.fate(SimTime::from_secs(k)).delivered())
            .count();
        let frac = drops as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn duplication_and_latency_show_up_in_deliveries() {
        let cfg = FaultConfig {
            duplicate_probability: 0.5,
            extra_latency_max: SimDuration::from_secs(2),
            ..Default::default()
        };
        let mut p = plan(cfg, 2);
        let mut dups = 0;
        for k in 0..2_000 {
            let send = SimTime::from_secs(10 + k);
            match p.fate(send) {
                MessageFate::Delivered { at } => {
                    assert!(!at.is_empty() && at.len() <= 2);
                    for &t in &at {
                        assert!(t >= send);
                        assert!(t.abs_diff(send) <= SimDuration::from_secs(2));
                    }
                    if at.len() == 2 {
                        dups += 1;
                    }
                }
                MessageFate::Dropped => panic!("no drops configured"),
            }
        }
        let frac = dups as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "duplicate fraction {frac}");
    }

    #[test]
    fn reordering_lets_later_sends_overtake() {
        let cfg = FaultConfig {
            reorder_probability: 1.0,
            reorder_delay: SimDuration::from_secs(5),
            ..Default::default()
        };
        let mut p = plan(cfg, 3);
        let mut q: EventQueue<u32> = EventQueue::new();
        // Message 0 is held 5 s; message 1 sent 1 s later is also held,
        // but a message injected by a transparent plan in between lands
        // first.
        p.inject(&mut q, SimTime::from_secs(10), 0).unwrap();
        let mut honest = FaultPlan::transparent(1, SimDuration::from_mins(30));
        honest.inject(&mut q, SimTime::from_secs(11), 1).unwrap();
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 0], "the held message is overtaken");
    }

    #[test]
    fn churn_windows_are_sampled_and_queryable() {
        let cfg = FaultConfig {
            churn: ChurnConfig {
                crash_fraction: 0.5,
                mean_outage: SimDuration::from_secs(60),
                min_outage: SimDuration::from_secs(10),
            },
            ..Default::default()
        };
        let p = plan(cfg, 4);
        let crashed: Vec<usize> = (0..50).filter(|&h| p.outage(h).is_some()).collect();
        assert!(
            (10..=40).contains(&crashed.len()),
            "about half crash, got {}",
            crashed.len()
        );
        for &h in &crashed {
            let (down, up) = p.outage(h).unwrap();
            assert!(up > down);
            let gap = up.abs_diff(down);
            assert!(gap >= SimDuration::from_secs(10));
            assert!(gap <= SimDuration::from_secs(110));
            assert!(p.host_up(h, down.saturating_sub(SimDuration::from_micros(1))));
            assert!(!p.host_up(h, down), "down at the crash instant");
            assert!(p.host_up(h, up), "up at the restart instant");
        }
    }

    #[test]
    fn same_seed_same_plan_is_bit_identical() {
        let cfg = FaultConfig {
            drop_probability: 0.1,
            duplicate_probability: 0.2,
            reorder_probability: 0.1,
            extra_latency_max: SimDuration::from_secs(3),
            churn: ChurnConfig { crash_fraction: 0.3, ..Default::default() },
            ..Default::default()
        };
        let mut a = plan(cfg, 99);
        let mut b = plan(cfg, 99);
        for h in 0..50 {
            assert_eq!(a.outage(h), b.outage(h));
        }
        for k in 0..5_000 {
            let send = SimTime::from_secs(k);
            assert_eq!(a.fate(send), b.fate(send), "message {k}");
        }
        // A different seed produces a different plan.
        let mut c = plan(cfg, 100);
        let differs = (0..5_000)
            .any(|k| c.fate(SimTime::from_secs(k)) != b.fate(SimTime::from_secs(k)));
        assert!(differs);
    }

    #[test]
    fn byzantine_roles_shape_acks_and_snapshots() {
        let cfg = FaultConfig {
            ack_drop_probability: 0.5,
            delayer_shift: SimDuration::from_secs(200),
            replay_age: SimDuration::from_secs(1_000),
            ..Default::default()
        };
        let mut p = plan(cfg, 5);
        let mut adv = AdversarySets::none();
        adv.ack_withholders.insert(3);
        adv.probe_delayers.insert(4);
        adv.stale_replayers.insert(5);

        // Withholders never ack; honest hosts ack at 1 − ack_drop.
        assert!((0..100).all(|_| !p.ack_arrives(&adv, 3)));
        let acked = (0..2_000).filter(|_| p.ack_arrives(&adv, 0)).count();
        let frac = acked as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.04, "ack fraction {frac}");

        let t = SimTime::from_secs(2_000);
        assert_eq!(p.snapshot_time(&adv, 0, t), t);
        assert_eq!(p.snapshot_time(&adv, 4, t), SimTime::from_secs(1_800));
        assert_eq!(p.snapshot_time(&adv, 5, t), SimTime::from_secs(1_000));
    }

    #[test]
    fn duplication_and_reordering_interact_on_one_message() {
        // Both knobs certain, no extra latency: the *first* copy is held
        // by the reorder delay while the duplicate ships immediately, so
        // the duplicate overtakes its own original.
        let cfg = FaultConfig {
            duplicate_probability: 1.0,
            reorder_probability: 1.0,
            reorder_delay: SimDuration::from_secs(5),
            ..Default::default()
        };
        let mut p = plan(cfg, 7);
        let send = SimTime::from_secs(100);
        match p.fate(send) {
            MessageFate::Delivered { at } => {
                assert_eq!(at, vec![SimTime::from_secs(105), send]);
            }
            MessageFate::Dropped => panic!("no drops configured"),
        }
        // Injected through the queue, the duplicate pops first.
        let mut q: EventQueue<&str> = EventQueue::new();
        p.inject(&mut q, send, "m").unwrap();
        assert_eq!(q.pop(), Some((send, "m")), "the duplicate arrives first");
        assert_eq!(q.pop(), Some((SimTime::from_secs(105), "m")));
    }

    #[test]
    fn churn_window_abutting_the_simulation_end() {
        // Outages longer than the run: every crashed host stays down
        // through the end of the simulation and "restarts" only after it.
        let duration = SimDuration::from_mins(30);
        let cfg = FaultConfig {
            churn: ChurnConfig {
                crash_fraction: 1.0,
                mean_outage: duration.mul(2),
                min_outage: duration.mul(2),
            },
            ..Default::default()
        };
        let p = FaultPlan::new(cfg, 8, 20, duration).unwrap();
        let end = SimTime::ZERO + duration;
        for h in 0..20 {
            let (down, up) = p.outage(h).expect("everyone crashes");
            assert!(down < end, "crashes land inside the run");
            assert!(up > end, "the window extends past the end");
            assert!(!p.host_up(h, end), "still down when the run ends");
            assert!(p.host_up(h, up), "restart instant is exclusive");
        }
    }

    #[test]
    fn ack_arrives_with_all_three_byzantine_roles_at_once() {
        let cfg = FaultConfig { ack_drop_probability: 0.3, ..Default::default() };
        let mut adv = AdversarySets::none();
        adv.ack_withholders.insert(1);
        adv.probe_delayers.insert(2);
        adv.stale_replayers.insert(3);
        // Host 4 plays every role simultaneously.
        adv.ack_withholders.insert(4);
        adv.probe_delayers.insert(4);
        adv.stale_replayers.insert(4);

        let mut p = plan(cfg, 9);
        // Withholding wins regardless of the other roles, and — because
        // withholders short-circuit before the loss draw — consumes no
        // RNG state: a twin plan that never queries the withholders stays
        // stream-identical.
        let mut twin = plan(cfg, 9);
        for _ in 0..100 {
            assert!(!p.ack_arrives(&adv, 1));
            assert!(!p.ack_arrives(&adv, 4));
        }
        for _ in 0..500 {
            assert_eq!(p.ack_arrives(&adv, 2), twin.ack_arrives(&adv, 2));
        }
        // Delayer and replayer roles do not withhold acks: their ack
        // behavior is plain transport loss.
        let acked = (0..2_000).filter(|_| p.ack_arrives(&adv, 3)).count();
        let frac = acked as f64 / 2_000.0;
        assert!((frac - 0.7).abs() < 0.04, "ack fraction {frac}");
        // For snapshots, the stale-replay role dominates the delay role.
        let t = SimTime::from_secs(2_000);
        assert_eq!(p.snapshot_time(&adv, 4, t), t.saturating_sub(p.config().replay_age));
    }

    #[test]
    fn transport_delivers_draws_at_the_drop_rate() {
        let cfg = FaultConfig { drop_probability: 0.25, ..Default::default() };
        let mut p = plan(cfg, 10);
        let through = (0..4_000).filter(|_| p.transport_delivers()).count();
        let frac = through as f64 / 4_000.0;
        assert!((frac - 0.75).abs() < 0.03, "delivery fraction {frac}");
        // Lossless plans answer without consuming RNG state.
        let mut a = FaultPlan::transparent(4, SimDuration::from_mins(1));
        let mut b = FaultPlan::transparent(4, SimDuration::from_mins(1));
        for _ in 0..10 {
            assert!(a.transport_delivers());
        }
        for k in 0..100 {
            let send = SimTime::from_secs(k);
            assert_eq!(a.fate(send), b.fate(send), "streams stayed aligned");
        }
    }

    #[test]
    fn burst_loss_arrives_in_bursts() {
        // A sticky bad state (rare exits) with certain loss: drops must
        // cluster into runs much longer than independent loss would give.
        let cfg = FaultConfig {
            burst: BurstConfig { good_to_bad: 0.05, bad_to_good: 0.2, bad_loss: 1.0 },
            ..Default::default()
        };
        let mut p = plan(cfg, 11);
        let fates: Vec<bool> = (0..20_000)
            .map(|k| p.fate(SimTime::from_secs(k)).delivered())
            .collect();
        let drops = fates.iter().filter(|&&d| !d).count();
        // Stationary bad-state occupancy is g/(g+b) = 0.05/0.25 = 20%.
        let frac = drops as f64 / fates.len() as f64;
        assert!((frac - 0.2).abs() < 0.05, "burst drop fraction {frac}");
        // Mean drop-run length ≈ 1/bad_to_good = 5, far above the ~1 of
        // independent 20% loss.
        let mut runs = 0usize;
        let mut dropped_prev = false;
        for &d in &fates {
            if !d && dropped_prev {
                // continuation of a run
            } else if !d {
                runs += 1;
            }
            dropped_prev = !d;
        }
        let mean_run = drops as f64 / runs as f64;
        assert!(mean_run > 2.5, "mean drop-run length {mean_run} is not bursty");
    }

    #[test]
    fn disabled_burst_consumes_no_rng() {
        // Identical plans except one carries a (disabled) burst config:
        // the fate streams must stay aligned.
        let base = FaultConfig { drop_probability: 0.2, ..Default::default() };
        let with_burst = FaultConfig {
            burst: BurstConfig { good_to_bad: 0.0, bad_to_good: 0.3, bad_loss: 0.9 },
            ..base
        };
        let mut a = plan(base, 12);
        let mut b = plan(with_burst, 12);
        for k in 0..2_000 {
            let send = SimTime::from_secs(k);
            assert_eq!(a.fate(send), b.fate(send), "message {k}");
            assert_eq!(a.transport_delivers(), b.transport_delivers());
        }
        assert!(!b.burst_state_bad());
    }

    #[test]
    fn storm_crashes_share_one_window() {
        let duration = SimDuration::from_mins(30);
        let cfg = FaultConfig {
            storm: StormConfig {
                fraction: 0.5,
                start_frac: 0.4,
                duration: SimDuration::from_secs(120),
            },
            ..Default::default()
        };
        let p = FaultPlan::new(cfg, 13, 60, duration).unwrap();
        let start =
            SimTime::from_micros((duration.as_micros() as f64 * 0.4) as u64);
        let end = start + SimDuration::from_secs(120);
        let stormed: Vec<usize> = (0..60).filter(|&h| p.outage(h).is_some()).collect();
        assert!(
            (18..=42).contains(&stormed.len()),
            "about half storm out, got {}",
            stormed.len()
        );
        for &h in &stormed {
            assert_eq!(p.outage(h), Some((start, end)), "shared storm window");
            assert!(!p.host_up(h, start));
            assert!(p.host_up(h, end));
        }
    }

    #[test]
    fn storm_overrides_independent_churn() {
        // Every host crashes independently AND the storm takes everyone:
        // the storm's shared window wins for every host it drafts.
        let duration = SimDuration::from_mins(30);
        let cfg = FaultConfig {
            churn: ChurnConfig { crash_fraction: 1.0, ..Default::default() },
            storm: StormConfig {
                fraction: 1.0,
                start_frac: 0.5,
                duration: SimDuration::from_secs(60),
            },
            ..Default::default()
        };
        let p = FaultPlan::new(cfg, 14, 20, duration).unwrap();
        let start =
            SimTime::from_micros((duration.as_micros() as f64 * 0.5) as u64);
        for h in 0..20 {
            assert_eq!(p.outage(h), Some((start, start + SimDuration::from_secs(60))));
        }
    }

    #[test]
    fn fate_stream_is_independent_of_interleaved_inject_calls() {
        // The fuzzer's determinism assumption: driving the plan through
        // `inject` (which schedules deliveries on an EventQueue) yields
        // the exact fate stream that bare `fate`/`transport_delivers`
        // calls produce — queue operations never touch the RNG.
        let cfg = FaultConfig {
            drop_probability: 0.2,
            duplicate_probability: 0.3,
            reorder_probability: 0.2,
            extra_latency_max: SimDuration::from_secs(2),
            burst: BurstConfig { good_to_bad: 0.1, bad_to_good: 0.3, bad_loss: 0.8 },
            ..Default::default()
        };
        let mut bare = plan(cfg, 15);
        let mut injected = plan(cfg, 15);
        let mut q: EventQueue<u64> = EventQueue::new();
        for k in 0..3_000u64 {
            let send = SimTime::from_secs(k);
            let expect = bare.fate(send);
            let got = injected.inject(&mut q, send, k).unwrap();
            assert_eq!(expect, got, "message {k}");
            // Interleave unicast decisions: both plans must keep agreeing.
            if k % 7 == 0 {
                assert_eq!(bare.transport_delivers(), injected.transport_delivers());
            }
        }
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let bad = FaultConfig { drop_probability: 1.5, ..Default::default() };
        match FaultPlan::new(bad, 0, 4, SimDuration::from_mins(1)) {
            Err(FaultError::BadProbability { knob, value }) => {
                assert_eq!(knob, "drop probability");
                assert_eq!(value, 1.5);
            }
            other => panic!("expected BadProbability, got {other:?}"),
        }
        let bad = FaultConfig {
            churn: ChurnConfig {
                crash_fraction: 0.1,
                mean_outage: SimDuration::from_secs(5),
                min_outage: SimDuration::from_secs(10),
            },
            ..Default::default()
        };
        assert_eq!(
            FaultPlan::new(bad, 0, 4, SimDuration::from_mins(1)).unwrap_err(),
            FaultError::BadOutage
        );
        assert!(FaultError::BadOutage.to_string().contains("outage"));
        let bad = FaultConfig {
            burst: BurstConfig { good_to_bad: 0.2, bad_to_good: -0.1, bad_loss: 0.5 },
            ..Default::default()
        };
        match FaultPlan::new(bad, 0, 4, SimDuration::from_mins(1)) {
            Err(FaultError::BadProbability { knob, .. }) => {
                assert_eq!(knob, "burst bad-to-good");
            }
            other => panic!("expected BadProbability, got {other:?}"),
        }
        let bad = FaultConfig {
            storm: StormConfig { fraction: 0.1, start_frac: 1.2, ..Default::default() },
            ..Default::default()
        };
        match FaultPlan::new(bad, 0, 4, SimDuration::from_mins(1)) {
            Err(FaultError::BadProbability { knob, .. }) => {
                assert_eq!(knob, "storm start fraction");
            }
            other => panic!("expected BadProbability, got {other:?}"),
        }
    }

    #[test]
    fn inject_schedules_every_delivery() {
        let cfg = FaultConfig {
            duplicate_probability: 1.0,
            extra_latency_max: SimDuration::from_secs(1),
            ..Default::default()
        };
        let mut p = plan(cfg, 6);
        let mut q: EventQueue<&str> = EventQueue::new();
        let fate = p.inject(&mut q, SimTime::from_secs(30), "m").unwrap();
        match fate {
            MessageFate::Delivered { at } => assert_eq!(at.len(), 2),
            MessageFate::Dropped => panic!("no drops configured"),
        }
        assert_eq!(q.len(), 2);
    }
}
