//! Per-host probe archives: what each host observed about its tree links.

use std::collections::HashMap;

use concilium_types::{LinkId, SimDuration, SimTime};

/// One host's archive of tomographic observations.
///
/// Rows are probe rounds (heavyweight probes of the host's whole tree);
/// columns are the distinct links of the host's tree. Each cell is the
/// host's *judgment* of the link's binary state at that time — correct
/// with the configured probe accuracy (the paper's §4.3 evaluation model).
/// Storage is bit-packed: at paper scale the archives of all 1,131 hosts
/// fit in a few tens of megabytes.
#[derive(Clone, Debug, Default)]
pub struct ProbeArchive {
    /// Sorted probe times.
    times: Vec<SimTime>,
    /// Link → column index.
    link_index: HashMap<LinkId, u32>,
    /// Bit-packed rows.
    bits: Vec<u64>,
    words_per_row: usize,
}

impl ProbeArchive {
    /// Creates an archive over the given tree links (column order fixed).
    pub fn new(links: &[LinkId]) -> Self {
        let link_index: HashMap<LinkId, u32> =
            links.iter().enumerate().map(|(i, &l)| (l, i as u32)).collect();
        let words_per_row = links.len().div_ceil(64).max(1);
        ProbeArchive { times: Vec::new(), link_index, bits: Vec::new(), words_per_row }
    }

    /// Whether this host's tree covers `link`.
    pub fn covers(&self, link: LinkId) -> bool {
        self.link_index.contains_key(&link)
    }

    /// Number of probe rounds recorded.
    pub fn num_probes(&self) -> usize {
        self.times.len()
    }

    /// Number of links per round.
    pub fn num_links(&self) -> usize {
        self.link_index.len()
    }

    /// Appends a probe round at `time` with per-link observations supplied
    /// by `observed(link) -> up?` evaluated in this archive's column order.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous round (rounds are appended
    /// in chronological order).
    pub fn record_round(&mut self, time: SimTime, mut observed: impl FnMut(LinkId) -> bool) {
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "probe rounds must be appended in time order");
        }
        let row_start = self.bits.len();
        self.bits.resize(row_start + self.words_per_row, 0);
        // Iterate links in column order for determinism.
        let mut cols: Vec<(u32, LinkId)> =
            self.link_index.iter().map(|(&l, &c)| (c, l)).collect();
        cols.sort();
        for (col, link) in cols {
            if observed(link) {
                self.bits[row_start + (col as usize) / 64] |= 1u64 << (col % 64);
            }
        }
        self.times.push(time);
    }

    /// The observation of `link` in probe round `round`, or `None` if the
    /// tree does not cover the link.
    ///
    /// # Panics
    ///
    /// Panics if `round` is out of range.
    pub fn observation(&self, round: usize, link: LinkId) -> Option<bool> {
        let &col = self.link_index.get(&link)?;
        assert!(round < self.times.len(), "round {round} out of range");
        let word = self.bits[round * self.words_per_row + (col as usize) / 64];
        Some(word >> (col % 64) & 1 == 1)
    }

    /// The probe rounds whose times fall within `[t − Δ, t + Δ]`,
    /// returned as an index range.
    pub fn rounds_in_window(&self, t: SimTime, delta: SimDuration) -> std::ops::Range<usize> {
        let lo = t.saturating_sub(delta);
        let hi = t + delta;
        let start = self.times.partition_point(|&pt| pt < lo);
        let end = self.times.partition_point(|&pt| pt <= hi);
        start..end
    }

    /// The time of probe round `round`.
    ///
    /// # Panics
    ///
    /// Panics if `round` is out of range.
    pub fn round_time(&self, round: usize) -> SimTime {
        self.times[round]
    }

    /// Convenience: all observations of `link` within the window, newest
    /// last. Empty when the link is not covered.
    pub fn observations_in_window(
        &self,
        link: LinkId,
        t: SimTime,
        delta: SimDuration,
    ) -> Vec<bool> {
        if !self.covers(link) {
            return Vec::new();
        }
        self.rounds_in_window(t, delta)
            .filter_map(|r| self.observation(r, link))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn links(n: u32) -> Vec<LinkId> {
        (0..n).map(LinkId).collect()
    }

    #[test]
    fn record_and_read_back() {
        let ls = links(70); // spans two u64 words
        let mut a = ProbeArchive::new(&ls);
        a.record_round(t(10), |l| l.0 % 2 == 0);
        a.record_round(t(20), |l| l.0 == 69);
        assert_eq!(a.num_probes(), 2);
        assert_eq!(a.num_links(), 70);
        assert_eq!(a.observation(0, LinkId(0)), Some(true));
        assert_eq!(a.observation(0, LinkId(1)), Some(false));
        assert_eq!(a.observation(0, LinkId(68)), Some(true));
        assert_eq!(a.observation(1, LinkId(69)), Some(true));
        assert_eq!(a.observation(1, LinkId(68)), Some(false));
        assert_eq!(a.observation(0, LinkId(99)), None);
        assert!(!a.covers(LinkId(99)));
    }

    #[test]
    fn window_queries() {
        let ls = links(4);
        let mut a = ProbeArchive::new(&ls);
        for s in [10u64, 70, 130, 190, 250] {
            a.record_round(t(s), |_| true);
        }
        // Window [130−60, 130+60] = [70, 190].
        let w = a.rounds_in_window(t(130), SimDuration::from_secs(60));
        assert_eq!(w, 1..4);
        assert_eq!(a.round_time(1), t(70));
        // A window before all probes is empty.
        assert_eq!(a.rounds_in_window(t(1), SimDuration::from_secs(5)).len(), 0);
        // observations_in_window collects per-round bits.
        assert_eq!(
            a.observations_in_window(LinkId(2), t(130), SimDuration::from_secs(60)),
            vec![true, true, true]
        );
        assert!(a
            .observations_in_window(LinkId(9), t(130), SimDuration::from_secs(60))
            .is_empty());
    }

    #[test]
    fn saturating_window_at_time_zero() {
        let ls = links(1);
        let mut a = ProbeArchive::new(&ls);
        a.record_round(t(5), |_| false);
        let w = a.rounds_in_window(t(10), SimDuration::from_secs(60));
        assert_eq!(w, 0..1);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_rounds_rejected() {
        let ls = links(1);
        let mut a = ProbeArchive::new(&ls);
        a.record_round(t(10), |_| true);
        a.record_round(t(5), |_| true);
    }

    #[test]
    fn empty_tree_archive_is_harmless() {
        let mut a = ProbeArchive::new(&[]);
        a.record_round(t(1), |_| true);
        assert_eq!(a.num_links(), 0);
        assert!(a.observations_in_window(LinkId(0), t(1), SimDuration::from_secs(1)).is_empty());
    }
}
