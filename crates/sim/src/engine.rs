//! A generic discrete-event queue with a virtual clock.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use concilium_types::SimTime;

/// Why an event could not be scheduled: the requested time precedes the
/// virtual clock. The event is handed back so callers can reschedule it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleError {
    /// The rejected schedule time.
    pub at: SimTime,
    /// The queue's clock when the attempt was made.
    pub now: SimTime,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot schedule at {} before now {}", self.at, self.now)
    }
}

impl std::error::Error for ScheduleError {}

/// An event scheduled at a time; ties break by insertion order, making the
/// simulation fully deterministic for a fixed seed.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event queue: schedule events at virtual times, pop them in
/// order, and watch the clock advance.
///
/// # Examples
///
/// ```
/// use concilium_sim::EventQueue;
/// use concilium_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    high_water: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO, high_water: 0 }
    }

    /// The current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        if let Err((err, _)) = self.try_schedule(at, event) {
            panic!("{err}");
        }
    }

    /// Schedules `event` at time `at`, returning the event together with a
    /// [`ScheduleError`] instead of panicking when `at` is in the past —
    /// the non-panicking entry point used by the fault-injection layer,
    /// whose perturbed delivery times are data, not programmer invariants.
    pub fn try_schedule(&mut self, at: SimTime, event: E) -> Result<(), (ScheduleError, E)> {
        if at < self.now {
            return Err((ScheduleError { at, now: self.now }, event));
        }
        self.heap.push(Scheduled { time: at, seq: self.seq, event });
        self.seq += 1;
        self.high_water = self.high_water.max(self.heap.len());
        Ok(())
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Pops the earliest event only if it is scheduled at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek().map(|s| s.time <= deadline).unwrap_or(false) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the earliest pending event, without popping it —
    /// `None` when the queue is empty. Lets drivers decide whether the
    /// simulation has quiesced before a deadline without consuming the
    /// event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The largest number of events ever pending at once — a virtual-time
    /// fact (scheduling order is deterministic), so it is safe to report
    /// in per-episode metrics.
    pub fn depth_high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        assert_eq!(q.pop_until(SimTime::from_secs(4)), None);
        assert_eq!(q.pop_until(SimTime::from_secs(5)), Some((SimTime::from_secs(5), 5)));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn try_schedule_rejects_the_past_and_returns_the_event() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "later");
        q.pop();
        let (err, event) = q.try_schedule(SimTime::from_secs(1), "stale").unwrap_err();
        assert_eq!(event, "stale");
        assert_eq!(err.at, SimTime::from_secs(1));
        assert_eq!(err.now, SimTime::from_secs(5));
        assert!(err.to_string().contains("cannot schedule"));
        assert!(q.is_empty(), "rejected events are not enqueued");
        // At or after `now` succeeds.
        assert!(q.try_schedule(SimTime::from_secs(5), "ok").is_ok());
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "ok")));
    }

    #[test]
    fn inspection_api_tracks_queue_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(7), "late");
        q.schedule(SimTime::from_secs(2), "early");
        assert!(!q.is_empty());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        // Peeking never pops or advances the clock.
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.depth_high_water(), 2, "high-water survives draining");
    }

    #[test]
    fn rescheduling_while_popping_works() {
        // A typical repair-then-refail loop.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 0u32);
        let mut popped = Vec::new();
        while let Some((t, gen)) = q.pop() {
            popped.push(gen);
            if gen < 4 {
                q.schedule(t + concilium_types::SimDuration::from_secs(1), gen + 1);
            }
        }
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
    }
}
