//! A generic discrete-event queue with a virtual clock.
//!
//! Two implementations share one contract:
//!
//! * [`EventQueue`] — the production queue, a **calendar queue** (Brown
//!   1988): an array of time-bucketed FIFO rings indexed by
//!   `(time / width) mod buckets`, plus a sorted overflow level for
//!   events beyond the wheel's horizon. Virtual-time keys in the
//!   simulator are near-monotonic (events schedule a short delay ahead
//!   of `now`), so almost every operation touches one small bucket
//!   instead of a `log n` heap path.
//! * [`HeapEventQueue`] — the original `BinaryHeap` implementation,
//!   retained verbatim as the *reference*: the property tests drive both
//!   queues through arbitrary schedules and require identical behaviour,
//!   and the `bench.queue.*` micro-bench reports the calendar-vs-heap
//!   win in `BENCH_profile.json`.
//!
//! Both pop events in exact `(time, seq)` order — time ascending,
//! insertion order breaking ties — so swapping the implementation cannot
//! move a single event in any schedule, and every committed trace hash
//! is preserved bit-for-bit (DESIGN.md §16).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use concilium_types::SimTime;

/// Why an event could not be scheduled: the requested time precedes the
/// virtual clock. The event is handed back so callers can reschedule it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleError {
    /// The rejected schedule time.
    pub at: SimTime,
    /// The queue's clock when the attempt was made.
    pub now: SimTime,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot schedule at {} before now {}", self.at, self.now)
    }
}

impl std::error::Error for ScheduleError {}

/// An event scheduled at a time; ties break by insertion order, making the
/// simulation fully deterministic for a fixed seed.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Smallest number of calendar buckets.
const MIN_BUCKETS: usize = 16;
/// Largest number of calendar buckets the wheel will grow to.
const MAX_BUCKETS: usize = 1 << 16;
/// Initial bucket width in microseconds of virtual time (~1 s).
const INITIAL_WIDTH: u64 = 1 << 20;
/// Bucket-width clamp (microseconds).
const MIN_WIDTH: u64 = 16;
const MAX_WIDTH: u64 = 1 << 40;
/// How many event timestamps the resize heuristic samples.
const WIDTH_SAMPLE: usize = 64;

/// A discrete-event queue: schedule events at virtual times, pop them in
/// order, and watch the clock advance.
///
/// Internally a calendar queue — see the module docs for the layout and
/// [`HeapEventQueue`] for the reference implementation it is
/// property-tested against.
///
/// # Examples
///
/// ```
/// use concilium_sim::EventQueue;
/// use concilium_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// The wheel: bucket `i` collects events with `(t / width) % n == i`.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Total events currently held in `buckets` (not counting overflow).
    bucket_events: usize,
    /// Sorted overflow level for events at or beyond `wheel_end`.
    /// Min-first by `(time, seq)` via the reversed `Ord` on `Scheduled`.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Index of the bucket whose day contains `day_start`.
    cursor: usize,
    /// Width-aligned lower bound of the cursor bucket's day.
    day_start: u64,
    /// Exclusive upper bound of the wheel's horizon
    /// (`day_start + width * buckets`, saturating).
    wheel_end: u64,
    /// Bucket width in microseconds of virtual time.
    width: u64,
    seq: u64,
    now: SimTime,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        let mut q = EventQueue {
            buckets: Vec::new(),
            bucket_events: 0,
            overflow: BinaryHeap::new(),
            cursor: 0,
            day_start: 0,
            wheel_end: 0,
            width: INITIAL_WIDTH,
            seq: 0,
            now: SimTime::ZERO,
            high_water: 0,
        };
        q.buckets.resize_with(MIN_BUCKETS, Vec::new);
        q.wheel_end = horizon(0, INITIAL_WIDTH, MIN_BUCKETS);
        q
    }

    /// The current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        if let Err((err, _)) = self.try_schedule(at, event) {
            panic!("{err}");
        }
    }

    /// Schedules `event` at time `at`, returning the event together with a
    /// [`ScheduleError`] instead of panicking when `at` is in the past —
    /// the non-panicking entry point used by the fault-injection layer,
    /// whose perturbed delivery times are data, not programmer invariants.
    pub fn try_schedule(&mut self, at: SimTime, event: E) -> Result<(), (ScheduleError, E)> {
        if at < self.now {
            return Err((ScheduleError { at, now: self.now }, event));
        }
        let entry = Scheduled { time: at, seq: self.seq, event };
        self.seq += 1;
        let t = at.as_micros();
        if t >= self.wheel_end {
            self.overflow.push(entry);
        } else {
            let idx = self.index_for(t);
            self.buckets[idx].push(entry);
            self.bucket_events += 1;
        }
        self.high_water = self.high_water.max(self.len());
        // Keep bucket occupancy near O(1): double the wheel when the
        // population outgrows it (amortized over the pushes in between).
        if self.len() > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            let target = self.buckets.len() * 2;
            self.rebuild(target);
        }
        Ok(())
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.bucket_events == 0 {
            // Either empty, or everything pending sits in the overflow
            // level: jump the wheel to the overflow head's day.
            self.overflow.peek()?;
            self.jump_to_overflow();
            if self.bucket_events == 0 {
                // Events at the saturated far end of the clock that no
                // wheel window can represent; the overflow level's exact
                // (time, seq) order serves them directly.
                let s = self.overflow.pop()?;
                self.now = s.time;
                return Some((s.time, s.event));
            }
        }
        loop {
            let day_end = self.day_start.saturating_add(self.width);
            if let Some(i) = min_position(&self.buckets[self.cursor]) {
                let t = self.buckets[self.cursor][i].time.as_micros();
                // Only events inside the current day may pop; a larger
                // time in this bucket belongs to a later wheel rotation
                // (aliased index) and must wait for its own day.
                if t < day_end {
                    let s = self.buckets[self.cursor].swap_remove(i);
                    self.bucket_events -= 1;
                    self.now = s.time;
                    self.maybe_shrink();
                    return Some((s.time, s.event));
                }
            }
            self.rotate();
        }
    }

    /// Pops the earliest event only if it is scheduled at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time().map(|t| t <= deadline).unwrap_or(false) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.bucket_events + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The time of the earliest pending event, without popping it —
    /// `None` when the queue is empty. Lets drivers decide whether the
    /// simulation has quiesced before a deadline without consuming the
    /// event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.bucket_events > 0 {
            // Every bucketed event precedes every overflow event (the
            // overflow holds only times at or beyond the wheel horizon),
            // so the earliest bucketed time is the global minimum.
            self.buckets
                .iter()
                .flat_map(|b| b.iter().map(|s| s.time))
                .min()
        } else {
            self.overflow.peek().map(|s| s.time)
        }
    }

    /// The largest number of events ever pending at once — a virtual-time
    /// fact (scheduling order is deterministic), so it is safe to report
    /// in per-episode metrics.
    pub fn depth_high_water(&self) -> usize {
        self.high_water
    }

    /// The bucket an in-horizon time maps to. Times before `day_start`
    /// (possible after a wheel jump) clamp to the cursor bucket, whose
    /// min-scan pops them first regardless.
    ///
    /// Width and bucket count are both powers of two, so the map is a
    /// shift and a mask — no division on the schedule hot path.
    fn index_for(&self, t: u64) -> usize {
        debug_assert!(self.width.is_power_of_two() && self.buckets.len().is_power_of_two());
        if t < self.day_start {
            self.cursor
        } else {
            ((t >> self.width.trailing_zeros()) as usize) & (self.buckets.len() - 1)
        }
    }

    /// Advances the wheel by one day: the vacated bucket becomes the new
    /// last day, and overflow events that now fall inside the horizon
    /// migrate into it.
    fn rotate(&mut self) {
        self.day_start = self.day_start.saturating_add(self.width);
        self.cursor = (self.cursor + 1) % self.buckets.len();
        self.wheel_end = self.wheel_end.saturating_add(self.width);
        self.migrate_overflow();
    }

    /// Re-anchors the wheel at the overflow head's day — used when all
    /// buckets drained and the next event is far in the future, so the
    /// wheel skips the empty days in O(1) instead of rotating through
    /// them.
    fn jump_to_overflow(&mut self) {
        let Some(head) = self.overflow.peek() else { return };
        let t = head.time.as_micros();
        self.day_start = t & !(self.width - 1);
        self.cursor = ((self.day_start >> self.width.trailing_zeros()) as usize)
            & (self.buckets.len() - 1);
        self.wheel_end = horizon(self.day_start, self.width, self.buckets.len());
        self.migrate_overflow();
    }

    /// Moves every overflow event inside the current horizon into its
    /// bucket, restoring the invariant `overflow ⇒ time ≥ wheel_end`.
    fn migrate_overflow(&mut self) {
        while let Some(head) = self.overflow.peek() {
            if head.time.as_micros() >= self.wheel_end {
                break;
            }
            // The pop is guarded by the peek above.
            if let Some(s) = self.overflow.pop() {
                let idx = self.index_for(s.time.as_micros());
                self.buckets[idx].push(s);
                self.bucket_events += 1;
            }
        }
    }

    fn maybe_shrink(&mut self) {
        if self.buckets.len() > MIN_BUCKETS && self.len() < self.buckets.len() / 4 {
            let target = (self.buckets.len() / 2).max(MIN_BUCKETS);
            self.rebuild(target);
        }
    }

    /// Rebuilds the wheel with `nbuckets` buckets and a width re-estimated
    /// from the pending events' spacing. O(len + nbuckets); triggered only
    /// when the population doubles or quarters, so amortized O(1).
    fn rebuild(&mut self, nbuckets: usize) {
        let mut pending: Vec<Scheduled<E>> = Vec::with_capacity(self.len());
        for bucket in &mut self.buckets {
            pending.append(bucket);
        }
        pending.extend(std::mem::take(&mut self.overflow));

        self.width = estimate_width(&pending, self.width);
        self.buckets.clear();
        self.buckets.resize_with(nbuckets, Vec::new);
        self.bucket_events = 0;
        self.day_start = self.now.as_micros() & !(self.width - 1);
        self.cursor = ((self.day_start >> self.width.trailing_zeros()) as usize) & (nbuckets - 1);
        self.wheel_end = horizon(self.day_start, self.width, nbuckets);
        for s in pending {
            let t = s.time.as_micros();
            if t >= self.wheel_end {
                self.overflow.push(s);
            } else {
                let idx = self.index_for(t);
                self.buckets[idx].push(s);
                self.bucket_events += 1;
            }
        }
    }
}

/// `start + width * nbuckets`, saturating at the end of time.
fn horizon(start: u64, width: u64, nbuckets: usize) -> u64 {
    start.saturating_add(width.saturating_mul(nbuckets as u64))
}

/// Position of the `(time, seq)`-minimal entry, or `None` when empty.
fn min_position<E>(bucket: &[Scheduled<E>]) -> Option<usize> {
    let mut best: Option<(usize, SimTime, u64)> = None;
    for (i, s) in bucket.iter().enumerate() {
        match best {
            Some((_, bt, bs)) if (bt, bs) <= (s.time, s.seq) => {}
            _ => best = Some((i, s.time, s.seq)),
        }
    }
    best.map(|(i, _, _)| i)
}

/// Bucket width from the spacing of a sample of pending events — Brown's
/// calendar-queue heuristic: a few events per bucket keeps both the
/// per-pop scan and the empty-day rotation count small. The result is
/// rounded to a power of two so bucket indexing is a shift and a mask.
/// Deterministic (pure function of the pending set) and integer-only.
fn estimate_width<E>(pending: &[Scheduled<E>], current: u64) -> u64 {
    let mut sample: Vec<u64> = pending
        .iter()
        .take(WIDTH_SAMPLE)
        .map(|s| s.time.as_micros())
        .collect();
    sample.sort_unstable();
    sample.dedup();
    if sample.len() < 2 {
        return current;
    }
    let span = sample[sample.len() - 1] - sample[0];
    let avg_gap = span / (sample.len() as u64 - 1);
    avg_gap
        .saturating_mul(4)
        .clamp(MIN_WIDTH, MAX_WIDTH)
        .next_power_of_two()
        .min(MAX_WIDTH)
}

/// The original `BinaryHeap`-backed event queue, kept as the reference
/// implementation: property tests drive it in lock-step with the calendar
/// [`EventQueue`] over arbitrary schedules and require identical pops,
/// clocks, rejections, and high-water marks; the `bench.queue.*`
/// micro-bench times both so the calendar-vs-heap win lands in
/// `BENCH_profile.json`.
///
/// Not used on any production path.
#[derive(Default)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    high_water: usize,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        HeapEventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO, high_water: 0 }
    }

    /// The current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at time `at`; see [`EventQueue::schedule`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        if let Err((err, _)) = self.try_schedule(at, event) {
            panic!("{err}");
        }
    }

    /// Non-panicking schedule; see [`EventQueue::try_schedule`].
    ///
    /// # Errors
    ///
    /// Returns the event and a [`ScheduleError`] when `at` precedes the
    /// queue's clock.
    pub fn try_schedule(&mut self, at: SimTime, event: E) -> Result<(), (ScheduleError, E)> {
        if at < self.now {
            return Err((ScheduleError { at, now: self.now }, event));
        }
        self.heap.push(Scheduled { time: at, seq: self.seq, event });
        self.seq += 1;
        self.high_water = self.high_water.max(self.heap.len());
        Ok(())
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Pops the earliest event only if it is scheduled at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek().map(|s| s.time <= deadline).unwrap_or(false) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the earliest pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The largest number of events ever pending at once.
    pub fn depth_high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_types::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        assert_eq!(q.pop_until(SimTime::from_secs(4)), None);
        assert_eq!(q.pop_until(SimTime::from_secs(5)), Some((SimTime::from_secs(5), 5)));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn try_schedule_rejects_the_past_and_returns_the_event() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "later");
        q.pop();
        let (err, event) = q.try_schedule(SimTime::from_secs(1), "stale").unwrap_err();
        assert_eq!(event, "stale");
        assert_eq!(err.at, SimTime::from_secs(1));
        assert_eq!(err.now, SimTime::from_secs(5));
        assert!(err.to_string().contains("cannot schedule"));
        assert!(q.is_empty(), "rejected events are not enqueued");
        // At or after `now` succeeds.
        assert!(q.try_schedule(SimTime::from_secs(5), "ok").is_ok());
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "ok")));
    }

    #[test]
    fn inspection_api_tracks_queue_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(7), "late");
        q.schedule(SimTime::from_secs(2), "early");
        assert!(!q.is_empty());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        // Peeking never pops or advances the clock.
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.depth_high_water(), 2, "high-water survives draining");
    }

    #[test]
    fn rescheduling_while_popping_works() {
        // A typical repair-then-refail loop.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 0u32);
        let mut popped = Vec::new();
        while let Some((t, gen)) = q.pop() {
            popped.push(gen);
            if gen < 4 {
                q.schedule(t + concilium_types::SimDuration::from_secs(1), gen + 1);
            }
        }
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn far_future_events_cross_the_overflow_level() {
        // An event past the initial horizon sits in the overflow level,
        // migrates when the wheel jumps, and pops in order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "near");
        q.schedule(SimTime::from_secs(1_000_000), "far");
        q.schedule(SimTime::from_secs(2), "near2");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "near2");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1_000_000)));
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn saturated_end_of_time_is_poppable() {
        // u64::MAX microseconds can never fall inside a wheel window
        // (the horizon saturates); the overflow level serves it directly.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(u64::MAX), "eot");
        q.schedule(SimTime::from_micros(u64::MAX - 1), "almost");
        q.schedule(SimTime::from_secs(1), "soon");
        assert_eq!(q.pop().unwrap().1, "soon");
        assert_eq!(q.pop().unwrap().1, "almost");
        assert_eq!(q.pop().unwrap().1, "eot");
        assert_eq!(q.now(), SimTime::from_micros(u64::MAX));
        assert!(q.is_empty());
    }

    #[test]
    fn growth_and_shrink_preserve_order() {
        // Push enough to force several rebuilds, interleaved with pops
        // that trigger shrinking; order must stay exact throughout.
        let mut q = EventQueue::new();
        let mut expect: Vec<u64> = Vec::new();
        for i in 0..500u64 {
            // Deterministic scatter of times, many ties.
            let t = (i * 7919) % 257;
            q.schedule(SimTime::from_micros(t * 1_000), i);
            expect.push(t);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            assert!(
                (last.0, last.1) <= (t, i),
                "order violated: {last:?} then ({t:?}, {i})"
            );
            last = (t, i);
            popped += 1;
        }
        assert_eq!(popped, 500);
        assert_eq!(q.depth_high_water(), 500);
    }

    /// One operation of the differential driver below.
    #[derive(Clone, Debug)]
    enum Op {
        /// Schedule at `now + dt` (µs). Always valid.
        Schedule(u64),
        /// `try_schedule` at an absolute time that may precede `now`.
        TryScheduleAbs(u64),
        Pop,
        /// `pop_until(now + dt)`.
        PopUntil(u64),
        Peek,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // DST-realistic deltas: sub-second RTTs, multi-second retries,
        // multi-minute outage repairs, plus exact ties (dt = 0).
        (0u8..6, 0u64..600_000_000).prop_map(|(kind, v)| match kind {
            0 | 1 => Op::Schedule(v % 400_000_000),
            2 => Op::TryScheduleAbs(v),
            3 => Op::Pop,
            4 => Op::PopUntil(v % 500_000_000),
            _ => Op::Peek,
        })
    }

    proptest! {
        /// The calendar queue is indistinguishable from the reference
        /// heap on arbitrary schedules: identical pops (time AND payload,
        /// so tie-breaks match), identical clocks, identical
        /// `try_schedule` rejections, identical `peek_time`, `len`, and
        /// high-water marks.
        #[test]
        fn calendar_matches_reference_heap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
            let mut cal: EventQueue<u32> = EventQueue::new();
            let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
            for (tag, op) in ops.into_iter().enumerate() {
                let tag = tag as u32;
                match op {
                    Op::Schedule(dt) => {
                        let at = cal.now() + SimDuration::from_micros(dt);
                        cal.schedule(at, tag);
                        heap.schedule(at, tag);
                    }
                    Op::TryScheduleAbs(t) => {
                        let at = SimTime::from_micros(t);
                        let c = cal.try_schedule(at, tag);
                        let h = heap.try_schedule(at, tag);
                        prop_assert_eq!(c.is_err(), h.is_err());
                        if let (Err((ce, cv)), Err((he, hv))) = (c, h) {
                            prop_assert_eq!(ce, he);
                            prop_assert_eq!(cv, hv);
                        }
                    }
                    Op::Pop => {
                        prop_assert_eq!(cal.pop(), heap.pop());
                    }
                    Op::PopUntil(dt) => {
                        let deadline = cal.now() + SimDuration::from_micros(dt);
                        prop_assert_eq!(cal.pop_until(deadline), heap.pop_until(deadline));
                    }
                    Op::Peek => {
                        prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    }
                }
                prop_assert_eq!(cal.now(), heap.now());
                prop_assert_eq!(cal.len(), heap.len());
                prop_assert_eq!(cal.is_empty(), heap.is_empty());
                prop_assert_eq!(cal.depth_high_water(), heap.depth_high_water());
            }
            // Drain both: the full remaining order must agree.
            loop {
                let (c, h) = (cal.pop(), heap.pop());
                prop_assert_eq!(&c, &h);
                if c.is_none() {
                    break;
                }
            }
        }
    }
}
