//! Shared primitives for the Concilium reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`Id`] — a 160-bit overlay identifier viewed as 40 hexadecimal digits,
//!   with the ring arithmetic (clockwise/counter-clockwise distance, common
//!   prefix length) that Pastry-style overlays need.
//! * [`IdSpace`] — the abstract (ℓ, v) identifier-space parameters used by
//!   the analytic models in the paper (ℓ digits, v values per digit).
//! * [`SimTime`] / [`SimDuration`] — the virtual clock used by the
//!   discrete-event simulator and by all protocol timestamps.
//! * [`RouterId`], [`LinkId`], [`HostAddr`] — identifiers for the underlying
//!   IP substrate.
//!
//! # Examples
//!
//! ```
//! use concilium_types::{Id, SimTime, SimDuration};
//!
//! let a = Id::from_hex("00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff").unwrap();
//! let b = Id::from_hex("00ff00ff00ff00ff00ff00ff00ff00ff00ff00fe").unwrap();
//! assert_eq!(a.common_prefix_len(&b), 39);
//!
//! let t = SimTime::ZERO + SimDuration::from_secs(60);
//! assert_eq!(t.as_micros(), 60_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod id;
mod net;
mod space;
mod time;

pub use id::{Id, ParseIdError, ID_BYTES, ID_DIGITS};
pub use net::{HostAddr, LinkId, MsgId, RouterId};
pub use space::IdSpace;
pub use time::{SimDuration, SimTime};
