//! Identifiers for the underlying IP substrate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a router in the IP topology.
///
/// Routers are dense indices into a [`Graph`]; end hosts are routers with
/// exactly one link ("degree-1 routers" in the paper's methodology).
///
/// [`Graph`]: https://docs.rs/concilium-topology
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Returns the index as a `usize` for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for RouterId {
    fn from(v: u32) -> Self {
        RouterId(v)
    }
}

/// Index of an undirected link in the IP topology.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Returns the index as a `usize` for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u32> for LinkId {
    fn from(v: u32) -> Self {
        LinkId(v)
    }
}

/// The network address of an overlay host: the end-host router it sits on.
///
/// In the paper a certificate binds an IP address to a public key and
/// overlay identifier; in the reproduction the "IP address" is the router
/// index of the degree-1 router hosting the node.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct HostAddr(pub RouterId);

impl HostAddr {
    /// The router this host is attached to.
    pub const fn router(self) -> RouterId {
        self.0
    }
}

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host@{}", self.0)
    }
}

impl From<RouterId> for HostAddr {
    fn from(r: RouterId) -> Self {
        HostAddr(r)
    }
}

/// A unique identifier for an application-level overlay message.
///
/// Message ids appear in forwarding commitments, acknowledgments, and
/// accusations so that evidence can be tied to a specific drop.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct MsgId(pub u64);

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u64> for MsgId {
    fn from(v: u64) -> Self {
        MsgId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(RouterId(3).to_string(), "r3");
        assert_eq!(LinkId(9).to_string(), "l9");
        assert_eq!(HostAddr(RouterId(3)).to_string(), "host@r3");
        assert_eq!(MsgId(7).to_string(), "m7");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(RouterId(42).index(), 42);
        assert_eq!(LinkId(42).index(), 42);
        assert_eq!(HostAddr::from(RouterId(5)).router(), RouterId(5));
    }

    #[test]
    fn conversions() {
        assert_eq!(RouterId::from(1u32), RouterId(1));
        assert_eq!(LinkId::from(1u32), LinkId(1));
        assert_eq!(MsgId::from(1u64), MsgId(1));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(RouterId(1) < RouterId(2));
        assert!(MsgId(1) < MsgId(10));
    }
}
