//! Virtual time for the simulator and protocol timestamps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, measured in microseconds since simulation start.
///
/// All Concilium timestamps (probe results, snapshots, forwarding
/// commitments, accusations) use this clock; the discrete-event simulator
/// advances it.
///
/// # Examples
///
/// ```
/// use concilium_types::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(250);
/// assert_eq!(t1 - t0, SimDuration::from_millis(250));
/// assert!(t1 > t0);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction of a duration (clamps at time zero).
    pub const fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// The absolute difference between two times.
    pub const fn abs_diff(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of virtual time, in microseconds.
///
/// # Examples
///
/// ```
/// use concilium_types::SimDuration;
///
/// let d = SimDuration::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(d.as_micros(), 2_500_000);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is longer than `self`.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        assert_eq!(t + SimDuration::from_secs(5), SimTime::from_secs(15));
        assert_eq!(SimTime::from_secs(15) - t, SimDuration::from_secs(5));
    }

    #[test]
    fn saturating_sub_clamps() {
        let t = SimTime::from_secs(1);
        assert_eq!(t.saturating_sub(SimDuration::from_secs(5)), SimTime::ZERO);
        assert_eq!(
            t.saturating_sub(SimDuration::from_millis(400)),
            SimTime::from_micros(600_000)
        );
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(8);
        assert_eq!(a.abs_diff(b), SimDuration::from_secs(5));
        assert_eq!(b.abs_diff(a), SimDuration::from_secs(5));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_millis_display(), "1.500s");
    }

    impl SimTime {
        fn from_millis_display() -> String {
            format!("{}", SimTime::from_micros(1_500_000))
        }
    }
}
