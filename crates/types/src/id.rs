//! 160-bit overlay identifiers with ring arithmetic.

use std::fmt;
use std::str::FromStr;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of bytes in an [`Id`].
pub const ID_BYTES: usize = 20;

/// Number of base-16 digits in an [`Id`] (ℓ in the paper; v = 16).
pub const ID_DIGITS: usize = ID_BYTES * 2;

/// A 160-bit overlay identifier.
///
/// Identifiers live on a circular space of size 2^160 and are viewed as
/// ℓ = 40 hexadecimal digits for prefix routing, matching the paper's
/// default parameters (ℓ is "typically 32 or 40, and v is usually 16").
///
/// The byte at index 0 is the most significant; digit 0 is the high nibble
/// of byte 0.
///
/// # Examples
///
/// ```
/// use concilium_types::Id;
///
/// let id = Id::from_hex("a0000000000000000000000000000000000000ff").unwrap();
/// assert_eq!(id.digit(0), 0xa);
/// assert_eq!(id.digit(39), 0xf);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Id([u8; ID_BYTES]);

impl Id {
    /// The all-zero identifier.
    pub const ZERO: Id = Id([0; ID_BYTES]);

    /// The all-ones identifier (largest point on the ring).
    pub const MAX: Id = Id([0xff; ID_BYTES]);

    /// Creates an identifier from raw big-endian bytes.
    pub const fn from_bytes(bytes: [u8; ID_BYTES]) -> Self {
        Id(bytes)
    }

    /// Returns the raw big-endian bytes.
    pub const fn as_bytes(&self) -> &[u8; ID_BYTES] {
        &self.0
    }

    /// Consumes the identifier, returning its bytes.
    pub const fn into_bytes(self) -> [u8; ID_BYTES] {
        self.0
    }

    /// Parses an identifier from exactly 40 hexadecimal characters.
    ///
    /// # Errors
    ///
    /// Returns [`ParseIdError`] if the string is not exactly
    /// [`ID_DIGITS`] hex characters.
    pub fn from_hex(s: &str) -> Result<Self, ParseIdError> {
        if s.len() != ID_DIGITS {
            return Err(ParseIdError::Length(s.len()));
        }
        let mut bytes = [0u8; ID_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            let chunk = &s[2 * i..2 * i + 2];
            *b = u8::from_str_radix(chunk, 16).map_err(|_| ParseIdError::Digit)?;
        }
        Ok(Id(bytes))
    }

    /// Formats the identifier as 40 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(ID_DIGITS);
        for b in &self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// Draws a uniformly random identifier.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; ID_BYTES];
        rng.fill(&mut bytes[..]);
        Id(bytes)
    }

    /// Builds an identifier from a `u64` placed in the low-order bits.
    ///
    /// Mostly useful for tests; real identifiers are assigned by the
    /// certificate authority.
    pub fn from_u64(v: u64) -> Self {
        let mut bytes = [0u8; ID_BYTES];
        bytes[ID_BYTES - 8..].copy_from_slice(&v.to_be_bytes());
        Id(bytes)
    }

    /// Returns the `i`-th base-16 digit (0 = most significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= ID_DIGITS`.
    pub fn digit(&self, i: usize) -> u8 {
        assert!(i < ID_DIGITS, "digit index {i} out of range");
        let byte = self.0[i / 2];
        if i.is_multiple_of(2) {
            byte >> 4
        } else {
            byte & 0x0f
        }
    }

    /// Returns a copy of this identifier with the `i`-th digit replaced by
    /// `value`.
    ///
    /// This is the "point p" operation from secure Pastry: the local
    /// identifier with the i-th character substituted with j.
    ///
    /// # Panics
    ///
    /// Panics if `i >= ID_DIGITS` or `value >= 16`.
    pub fn with_digit(&self, i: usize, value: u8) -> Self {
        assert!(i < ID_DIGITS, "digit index {i} out of range");
        assert!(value < 16, "digit value {value} out of range");
        let mut bytes = self.0;
        let b = &mut bytes[i / 2];
        if i.is_multiple_of(2) {
            *b = (*b & 0x0f) | (value << 4);
        } else {
            *b = (*b & 0xf0) | value;
        }
        Id(bytes)
    }

    /// Number of leading base-16 digits shared with `other`.
    pub fn common_prefix_len(&self, other: &Id) -> usize {
        for i in 0..ID_BYTES {
            let x = self.0[i] ^ other.0[i];
            if x != 0 {
                let whole = 2 * i;
                return if x & 0xf0 != 0 { whole } else { whole + 1 };
            }
        }
        ID_DIGITS
    }

    /// Clockwise distance from `self` to `other` on the 2^160 ring
    /// (i.e. `other - self mod 2^160`).
    pub fn clockwise_distance(&self, other: &Id) -> Distance {
        Distance(sub_mod(&other.0, &self.0))
    }

    /// Minimal ring distance between `self` and `other`
    /// (the smaller of the clockwise and counter-clockwise distances).
    pub fn ring_distance(&self, other: &Id) -> Distance {
        let cw = sub_mod(&other.0, &self.0);
        let ccw = sub_mod(&self.0, &other.0);
        if le(&cw, &ccw) {
            Distance(cw)
        } else {
            Distance(ccw)
        }
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({}..{})", &self.to_hex()[..6], &self.to_hex()[ID_DIGITS - 4..])
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl FromStr for Id {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Id::from_hex(s)
    }
}

impl AsRef<[u8]> for Id {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; ID_BYTES]> for Id {
    fn from(bytes: [u8; ID_BYTES]) -> Self {
        Id(bytes)
    }
}

/// An unsigned 160-bit distance on the identifier ring.
///
/// Distances compare numerically; they exist so leaf-set and secure-routing
/// code can pick "the numerically closest identifier" without converting to
/// a wider integer type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Distance([u8; ID_BYTES]);

impl Distance {
    /// Zero distance.
    pub const ZERO: Distance = Distance([0; ID_BYTES]);

    /// Returns the distance truncated to an `f64`.
    ///
    /// Accurate to 53 bits of mantissa; used only for statistics such as
    /// leaf-set spacing estimation, never for routing decisions.
    pub fn to_f64(self) -> f64 {
        let mut acc = 0.0f64;
        for b in self.0 {
            acc = acc * 256.0 + b as f64;
        }
        acc
    }

    /// Returns the raw big-endian bytes of the distance.
    pub const fn as_bytes(&self) -> &[u8; ID_BYTES] {
        &self.0
    }
}

/// `a - b mod 2^160` over big-endian byte arrays.
fn sub_mod(a: &[u8; ID_BYTES], b: &[u8; ID_BYTES]) -> [u8; ID_BYTES] {
    let mut out = [0u8; ID_BYTES];
    let mut borrow = 0i16;
    for i in (0..ID_BYTES).rev() {
        let mut v = a[i] as i16 - b[i] as i16 - borrow;
        if v < 0 {
            v += 256;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out[i] = v as u8;
    }
    out
}

/// Big-endian unsigned comparison `a <= b`.
fn le(a: &[u8; ID_BYTES], b: &[u8; ID_BYTES]) -> bool {
    for i in 0..ID_BYTES {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    true
}

/// Error returned when parsing an [`Id`] from text fails.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParseIdError {
    /// The input did not contain exactly [`ID_DIGITS`] characters.
    Length(usize),
    /// The input contained a non-hexadecimal character.
    Digit,
}

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseIdError::Length(n) => {
                write!(f, "expected {ID_DIGITS} hex characters, found {n}")
            }
            ParseIdError::Digit => f.write_str("invalid hexadecimal character"),
        }
    }
}

impl std::error::Error for ParseIdError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hex_round_trip() {
        let s = "0123456789abcdef0123456789abcdef01234567";
        let id = Id::from_hex(s).unwrap();
        assert_eq!(id.to_hex(), s);
    }

    #[test]
    fn hex_rejects_bad_length() {
        assert_eq!(Id::from_hex("abc"), Err(ParseIdError::Length(3)));
        assert_eq!(Id::from_hex(""), Err(ParseIdError::Length(0)));
    }

    #[test]
    fn hex_rejects_bad_digit() {
        let s = "g123456789abcdef0123456789abcdef01234567";
        assert_eq!(Id::from_hex(s), Err(ParseIdError::Digit));
    }

    #[test]
    fn from_str_parses() {
        let s = "0123456789abcdef0123456789abcdef01234567";
        let id: Id = s.parse().unwrap();
        assert_eq!(id.to_hex(), s);
    }

    #[test]
    fn digit_extraction() {
        let id = Id::from_hex("a5000000000000000000000000000000000000cb").unwrap();
        assert_eq!(id.digit(0), 0xa);
        assert_eq!(id.digit(1), 0x5);
        assert_eq!(id.digit(38), 0xc);
        assert_eq!(id.digit(39), 0xb);
    }

    #[test]
    fn with_digit_substitutes() {
        let id = Id::ZERO;
        let p = id.with_digit(0, 0xf).with_digit(39, 0x3);
        assert_eq!(p.digit(0), 0xf);
        assert_eq!(p.digit(39), 0x3);
        // Unsubstituted digits remain zero.
        for i in 1..39 {
            assert_eq!(p.digit(i), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_digit_panics_on_large_value() {
        let _ = Id::ZERO.with_digit(0, 16);
    }

    #[test]
    fn common_prefix() {
        let a = Id::from_hex("ffff000000000000000000000000000000000000").unwrap();
        let b = Id::from_hex("fff7000000000000000000000000000000000000").unwrap();
        assert_eq!(a.common_prefix_len(&b), 3);
        assert_eq!(a.common_prefix_len(&a), ID_DIGITS);
    }

    #[test]
    fn clockwise_distance_wraps() {
        let a = Id::MAX;
        let b = Id::from_u64(4); // 5 steps clockwise from MAX
        let d = a.clockwise_distance(&b);
        assert_eq!(d.to_f64(), 5.0);
    }

    #[test]
    fn ring_distance_is_symmetric_and_minimal() {
        let a = Id::from_u64(10);
        let b = Id::from_u64(2);
        assert_eq!(a.ring_distance(&b), b.ring_distance(&a));
        assert_eq!(a.ring_distance(&b).to_f64(), 8.0);

        // Wrap-around: distance between MAX and ZERO is 1, not 2^160 - 1.
        assert_eq!(Id::MAX.ring_distance(&Id::ZERO).to_f64(), 1.0);
    }

    #[test]
    fn distance_ordering() {
        let near = Id::from_u64(1).ring_distance(&Id::from_u64(3));
        let far = Id::from_u64(1).ring_distance(&Id::from_u64(1000));
        assert!(near < far);
        assert_eq!(Id::from_u64(7).ring_distance(&Id::from_u64(7)), Distance::ZERO);
    }

    #[test]
    fn random_ids_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Id::random(&mut rng);
        let b = Id::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_is_nonempty_and_short() {
        let d = format!("{:?}", Id::ZERO);
        assert!(d.starts_with("Id("));
        assert!(d.len() < 24);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_id() -> impl Strategy<Value = Id> {
            proptest::array::uniform20(any::<u8>()).prop_map(Id::from_bytes)
        }

        proptest! {
            #[test]
            fn hex_round_trips(id in arb_id()) {
                prop_assert_eq!(Id::from_hex(&id.to_hex()).unwrap(), id);
            }

            #[test]
            fn prefix_len_symmetric(a in arb_id(), b in arb_id()) {
                prop_assert_eq!(a.common_prefix_len(&b), b.common_prefix_len(&a));
            }

            #[test]
            fn with_digit_sets_digit(id in arb_id(), i in 0usize..ID_DIGITS, v in 0u8..16) {
                let out = id.with_digit(i, v);
                prop_assert_eq!(out.digit(i), v);
                // All other digits unchanged.
                for j in 0..ID_DIGITS {
                    if j != i {
                        prop_assert_eq!(out.digit(j), id.digit(j));
                    }
                }
            }

            #[test]
            fn cw_ccw_distances_sum_to_zero_mod(a in arb_id(), b in arb_id()) {
                // d(a->b) + d(b->a) == 0 mod 2^160 when a != b means the two
                // byte arrays are exact complements; check via round trip:
                let cw = a.clockwise_distance(&b);
                let ccw = b.clockwise_distance(&a);
                if a == b {
                    prop_assert_eq!(cw, Distance::ZERO);
                    prop_assert_eq!(ccw, Distance::ZERO);
                } else {
                    // min distance is <= 2^159, i.e. ring_distance is the
                    // smaller of the two.
                    let rd = a.ring_distance(&b);
                    prop_assert!(rd <= cw && rd <= ccw);
                    prop_assert!(rd == cw || rd == ccw);
                }
            }

            #[test]
            fn prefix_len_matches_digits(a in arb_id(), b in arb_id()) {
                let p = a.common_prefix_len(&b);
                for i in 0..p {
                    prop_assert_eq!(a.digit(i), b.digit(i));
                }
                if p < ID_DIGITS {
                    prop_assert_ne!(a.digit(p), b.digit(p));
                }
            }
        }
    }
}
