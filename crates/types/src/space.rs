//! Abstract identifier-space parameters (ℓ, v).

use serde::{Deserialize, Serialize};

use crate::id::ID_DIGITS;

/// The parameters of a prefix-routing identifier space.
///
/// The paper's analytic models (jump-table occupancy, density-test error
/// rates) are parameterised over ℓ (identifier length in digits) and v
/// (values per digit): "ℓ is typically 32 or 40, and v is usually 16".
/// The concrete [`Id`] type fixes ℓ = 40 and v = 16; the analytic code
/// accepts any `IdSpace` so that Figure 1–3 sweeps can vary them.
///
/// [`Id`]: crate::Id
///
/// # Examples
///
/// ```
/// use concilium_types::IdSpace;
///
/// let space = IdSpace::DEFAULT;
/// assert_eq!(space.digits(), 40);
/// assert_eq!(space.base(), 16);
/// assert_eq!(space.table_slots(), 640);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct IdSpace {
    digits: u32,
    base: u32,
}

impl IdSpace {
    /// The default space matching the concrete [`Id`](crate::Id) type:
    /// ℓ = 40 digits, v = 16.
    pub const DEFAULT: IdSpace = IdSpace { digits: ID_DIGITS as u32, base: 16 };

    /// Creates an identifier space with ℓ = `digits` and v = `base`.
    ///
    /// # Panics
    ///
    /// Panics if `digits` is 0 or `base` < 2.
    pub fn new(digits: u32, base: u32) -> Self {
        assert!(digits > 0, "identifier space needs at least one digit");
        assert!(base >= 2, "identifier space base must be at least 2");
        IdSpace { digits, base }
    }

    /// ℓ: the number of digits in an identifier.
    pub const fn digits(&self) -> u32 {
        self.digits
    }

    /// v: the number of values a digit can assume.
    pub const fn base(&self) -> u32 {
        self.base
    }

    /// ℓ·v: the number of slots in a full jump table.
    pub const fn table_slots(&self) -> u32 {
        self.digits * self.base
    }

    /// The number of *useful* jump-table slots per row: v − 1, because the
    /// slot matching the local host's own next digit is never used.
    ///
    /// The paper's occupancy model (Eq. 1) treats all v columns uniformly,
    /// so most analytic code uses [`table_slots`](Self::table_slots); this
    /// accessor exists for the concrete routing-table implementation.
    pub const fn useful_columns(&self) -> u32 {
        self.base - 1
    }
}

impl Default for IdSpace {
    fn default() -> Self {
        IdSpace::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_concrete_id() {
        assert_eq!(IdSpace::DEFAULT.digits(), 40);
        assert_eq!(IdSpace::DEFAULT.base(), 16);
        assert_eq!(IdSpace::default(), IdSpace::DEFAULT);
    }

    #[test]
    fn custom_space() {
        let s = IdSpace::new(32, 16);
        assert_eq!(s.table_slots(), 512);
        assert_eq!(s.useful_columns(), 15);
    }

    #[test]
    #[should_panic(expected = "at least one digit")]
    fn zero_digits_panics() {
        let _ = IdSpace::new(0, 16);
    }

    #[test]
    #[should_panic(expected = "base must be at least 2")]
    fn unary_base_panics() {
        let _ = IdSpace::new(40, 1);
    }
}
