//! Thread-local memoization of Schnorr signature verification.
//!
//! Concilium re-verifies the same signed artifacts many times: every link of
//! a commitment chain is checked by the judge *and* by each consulted peer,
//! snapshots refetched from the accusation DHT are re-verified on arrival,
//! and the DST explorer replays identical episodes across invariant checks.
//! Verification dominated by two modular exponentiations is the single
//! hottest crypto path in the workspace, and its outcome is a pure function
//! of `(public key, message, signature)`.
//!
//! [`verify_cached`] caches that function. The cache key uses the **full**
//! SHA-256 digest of the message (not a truncated hash), so a cache hit can
//! only ever be returned for a byte-identical message: the memo provably
//! never changes a verification outcome, it only skips recomputing one.
//!
//! The cache is thread-local and bounded (FIFO eviction at
//! [`MEMO_CAPACITY`] entries). Thread-locality keeps the fast path free of
//! locks and — together with the determinism contract of `concilium-par` —
//! means parallel workers each see their own cache, so caching cannot
//! introduce cross-thread nondeterminism.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};

use crate::schnorr::{PublicKey, Signature};
use crate::sha256::sha256;

/// Maximum number of memoized verification outcomes per thread.
pub const MEMO_CAPACITY: usize = 8192;

/// Cache key: the verify inputs, with the message collapsed to its full
/// SHA-256 digest so keys are fixed-size without losing injectivity (up to
/// SHA-256 collisions, which the rest of the workspace already assumes away).
type Key = (u64, [u8; 32], u64, u64);

struct Memo {
    map: HashMap<Key, bool>,
    order: VecDeque<Key>,
    stats: MemoStats,
}

impl Memo {
    fn new() -> Self {
        Memo {
            map: HashMap::new(),
            order: VecDeque::new(),
            stats: MemoStats::default(),
        }
    }
}

/// Counters for one thread's verification memo.
///
/// These are *thread*-local and therefore depend on how work was scheduled
/// across workers: report them for capacity tuning, but never fold them
/// into trace digests or deterministic metric registries (DESIGN.md §12).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the real verification.
    pub misses: u64,
    /// Entries discarded by FIFO eviction at [`MEMO_CAPACITY`].
    pub evictions: u64,
}

thread_local! {
    static MEMO: RefCell<Memo> = RefCell::new(Memo::new());
}

/// Verifies `sig` over `msg` under `key`, memoizing the outcome.
///
/// Semantically identical to [`PublicKey::verify`] — same result for every
/// input, including tampered messages, wrong keys, and malformed signatures —
/// but repeated verification of the same `(key, msg, sig)` triple on the same
/// thread costs one hash and one map lookup instead of two modular
/// exponentiations.
pub fn verify_cached(key: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
    let memo_key: Key = (
        key.element(),
        sha256(msg).0,
        sig.challenge_scalar(),
        sig.response_scalar(),
    );
    MEMO.with(|cell| {
        let mut memo = cell.borrow_mut();
        if let Some(&outcome) = memo.map.get(&memo_key) {
            memo.stats.hits += 1;
            return outcome;
        }
        memo.stats.misses += 1;
        let outcome = {
            let _span = concilium_obs::span("sig.verify");
            key.verify(msg, sig)
        };
        if memo.map.len() >= MEMO_CAPACITY {
            if let Some(oldest) = memo.order.pop_front() {
                memo.map.remove(&oldest);
                memo.stats.evictions += 1;
            }
        }
        memo.map.insert(memo_key, outcome);
        memo.order.push_back(memo_key);
        outcome
    })
}

/// Hit/miss counters for this thread's memo, as `(hits, misses)`.
pub fn memo_stats() -> (u64, u64) {
    let s = memo_stats_full();
    (s.hits, s.misses)
}

/// All counters for this thread's memo, including evictions.
pub fn memo_stats_full() -> MemoStats {
    MEMO.with(|cell| cell.borrow().stats)
}

/// Number of entries currently cached on this thread.
pub fn memo_len() -> usize {
    MEMO.with(|cell| cell.borrow().map.len())
}

/// Clears this thread's memo and resets its counters. Intended for tests.
pub fn memo_reset() {
    MEMO.with(|cell| *cell.borrow_mut() = Memo::new());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hit_and_miss_counts_track_lookups() {
        memo_reset();
        let mut rng = StdRng::seed_from_u64(100);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"counted", &mut rng);

        assert!(verify_cached(&kp.public(), b"counted", &sig));
        assert_eq!(memo_stats(), (0, 1));
        assert!(verify_cached(&kp.public(), b"counted", &sig));
        assert!(verify_cached(&kp.public(), b"counted", &sig));
        assert_eq!(memo_stats(), (2, 1));

        // A different message is a fresh miss, cached independently.
        assert!(!verify_cached(&kp.public(), b"other", &sig));
        assert_eq!(memo_stats(), (2, 2));
        assert!(!verify_cached(&kp.public(), b"other", &sig));
        assert_eq!(memo_stats(), (3, 2));
    }

    #[test]
    fn cache_never_changes_verify_outcome() {
        memo_reset();
        let mut rng = StdRng::seed_from_u64(101);
        let kp = KeyPair::generate(&mut rng);
        let other = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"payload", &mut rng);

        let cases: Vec<(PublicKey, &[u8], Signature)> = vec![
            (kp.public(), b"payload", sig),
            (kp.public(), b"tampered", sig),
            (other.public(), b"payload", sig),
            (kp.public(), b"payload", Signature::dummy()),
        ];
        for (pk, msg, s) in &cases {
            let plain = pk.verify(msg, s);
            // First call populates, second call answers from cache; both must
            // agree with the uncached path.
            assert_eq!(verify_cached(pk, msg, s), plain);
            assert_eq!(verify_cached(pk, msg, s), plain);
        }
    }

    #[test]
    fn eviction_bounds_cache_size_fifo() {
        memo_reset();
        let mut rng = StdRng::seed_from_u64(102);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"base", &mut rng);

        // Fill past capacity with distinct messages.
        let overflow = 64;
        for i in 0..MEMO_CAPACITY + overflow {
            let msg = format!("msg-{i}");
            verify_cached(&kp.public(), msg.as_bytes(), &sig);
        }
        assert_eq!(memo_len(), MEMO_CAPACITY);

        // The oldest `overflow` entries were evicted: re-querying msg-0 is a
        // miss again, while the newest entry is a hit.
        let (_, misses_before) = memo_stats();
        verify_cached(&kp.public(), b"msg-0", &sig);
        let (_, misses_after) = memo_stats();
        assert_eq!(misses_after, misses_before + 1, "oldest entry was evicted");

        let (hits_before, _) = memo_stats();
        let newest = format!("msg-{}", MEMO_CAPACITY + overflow - 1);
        verify_cached(&kp.public(), newest.as_bytes(), &sig);
        let (hits_after, _) = memo_stats();
        assert_eq!(hits_after, hits_before + 1, "newest entry is still cached");

        // `overflow` inserts past capacity plus the re-queried msg-0 each
        // displaced one FIFO-oldest entry.
        assert_eq!(memo_stats_full().evictions, overflow as u64 + 1);

        memo_reset();
        assert_eq!(memo_len(), 0);
        assert_eq!(memo_stats(), (0, 0));
        assert_eq!(memo_stats_full(), MemoStats::default());
    }
}
