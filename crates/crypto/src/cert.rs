//! The central certificate authority of the secure overlay.
//!
//! Before a host can join a secure overlay it must acquire a certificate
//! from a central authority. The certificate binds the host's network
//! address to a public key and an overlay identifier; identifiers are
//! static and *randomly assigned by the CA*, so adversaries cannot choose
//! advantageous regions of the identifier space (§2 of the paper).

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use concilium_types::{HostAddr, Id};

use crate::schnorr::{KeyPair, PublicKey, Signature};
use crate::Signable;

/// A certificate binding (host address, public key, overlay identifier).
///
/// # Examples
///
/// ```
/// use concilium_crypto::{CertificateAuthority, KeyPair};
/// use concilium_types::{HostAddr, RouterId};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let ca = CertificateAuthority::new(&mut rng);
/// let host_keys = KeyPair::generate(&mut rng);
/// let cert = ca.issue(HostAddr(RouterId(17)), host_keys.public(), &mut rng);
/// assert!(cert.verify(&ca.public_key()).is_ok());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Certificate {
    id: Id,
    addr: HostAddr,
    key: PublicKey,
    sig: Signature,
}

impl Certificate {
    /// The randomly assigned overlay identifier.
    pub const fn id(&self) -> Id {
        self.id
    }

    /// The certified network address.
    pub const fn addr(&self) -> HostAddr {
        self.addr
    }

    /// The certified public key.
    pub const fn public_key(&self) -> PublicKey {
        self.key
    }

    /// Checks the CA signature and binding.
    ///
    /// # Errors
    ///
    /// Returns [`CertificateError::BadSignature`] if the CA signature does
    /// not cover this certificate's contents.
    pub fn verify(&self, ca_key: &PublicKey) -> Result<(), CertificateError> {
        let body = self.body_bytes();
        if ca_key.verify(&body, &self.sig) {
            Ok(())
        } else {
            Err(CertificateError::BadSignature)
        }
    }

    fn body_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(self.id.as_bytes());
        out.extend_from_slice(&(self.addr.router().0).to_be_bytes());
        out.extend_from_slice(&self.key.to_bytes());
        out
    }
}

impl Signable for Certificate {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.body_bytes());
        out.extend_from_slice(&self.sig.challenge_scalar().to_be_bytes());
        out.extend_from_slice(&self.sig.response_scalar().to_be_bytes());
    }
}

/// Errors arising from certificate verification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CertificateError {
    /// The CA signature over the certificate body failed to verify.
    BadSignature,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::BadSignature => f.write_str("certificate signature is invalid"),
        }
    }
}

impl std::error::Error for CertificateError {}

/// The central authority that issues certificates.
///
/// In a deployment this is an offline entity; in the reproduction it is a
/// value owned by the simulation bootstrap code.
#[derive(Clone, Debug)]
pub struct CertificateAuthority {
    keys: KeyPair,
}

impl CertificateAuthority {
    /// Creates an authority with a fresh key pair.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        CertificateAuthority { keys: KeyPair::generate(rng) }
    }

    /// The CA's public key, distributed out of band to all hosts.
    pub fn public_key(&self) -> PublicKey {
        self.keys.public()
    }

    /// Issues a certificate for `addr`/`key`, assigning a uniformly random
    /// overlay identifier.
    pub fn issue<R: Rng + ?Sized>(
        &self,
        addr: HostAddr,
        key: PublicKey,
        rng: &mut R,
    ) -> Certificate {
        let id = Id::random(rng);
        self.issue_with_id(id, addr, key, rng)
    }

    /// Issues a certificate with a caller-chosen identifier.
    ///
    /// Real CAs never do this; the simulator uses it to construct
    /// adversarial scenarios (e.g. replaying identifiers of departed hosts
    /// in inflation attacks).
    pub fn issue_with_id<R: Rng + ?Sized>(
        &self,
        id: Id,
        addr: HostAddr,
        key: PublicKey,
        rng: &mut R,
    ) -> Certificate {
        let mut cert = Certificate { id, addr, key, sig: Signature::dummy() };
        let body = cert.body_bytes();
        cert.sig = self.keys.sign(&body, rng);
        cert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_types::RouterId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CertificateAuthority, KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        let ca = CertificateAuthority::new(&mut rng);
        let host = KeyPair::generate(&mut rng);
        (ca, host, rng)
    }

    #[test]
    fn issued_certificate_verifies() {
        let (ca, host, mut rng) = setup();
        let cert = ca.issue(HostAddr(RouterId(5)), host.public(), &mut rng);
        assert!(cert.verify(&ca.public_key()).is_ok());
        assert_eq!(cert.addr(), HostAddr(RouterId(5)));
        assert_eq!(cert.public_key(), host.public());
    }

    #[test]
    fn forged_certificate_rejected() {
        let (ca, host, mut rng) = setup();
        let rogue_ca = CertificateAuthority::new(&mut rng);
        let cert = rogue_ca.issue(HostAddr(RouterId(5)), host.public(), &mut rng);
        assert_eq!(cert.verify(&ca.public_key()), Err(CertificateError::BadSignature));
    }

    #[test]
    fn mutated_binding_rejected() {
        let (ca, host, mut rng) = setup();
        let cert = ca.issue(HostAddr(RouterId(5)), host.public(), &mut rng);
        // An attacker moving the certificate to a different address must fail.
        let moved = Certificate { addr: HostAddr(RouterId(6)), ..cert };
        assert_eq!(moved.verify(&ca.public_key()), Err(CertificateError::BadSignature));
        // ...or claiming a different identifier.
        let mut rng2 = StdRng::seed_from_u64(1);
        let reid = Certificate { id: Id::random(&mut rng2), ..cert };
        assert_eq!(reid.verify(&ca.public_key()), Err(CertificateError::BadSignature));
    }

    #[test]
    fn identifiers_are_random_per_issue() {
        let (ca, host, mut rng) = setup();
        let c1 = ca.issue(HostAddr(RouterId(1)), host.public(), &mut rng);
        let c2 = ca.issue(HostAddr(RouterId(1)), host.public(), &mut rng);
        assert_ne!(c1.id(), c2.id());
    }

    #[test]
    fn issue_with_id_pins_identifier() {
        let (ca, host, mut rng) = setup();
        let id = Id::from_u64(99);
        let cert = ca.issue_with_id(id, HostAddr(RouterId(2)), host.public(), &mut rng);
        assert_eq!(cert.id(), id);
        assert!(cert.verify(&ca.public_key()).is_ok());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            CertificateError::BadSignature.to_string(),
            "certificate signature is invalid"
        );
    }
}
