//! Simulation-grade cryptography for the Concilium reproduction.
//!
//! The paper signs tomographic snapshots, forwarding commitments, and fault
//! accusations with PSS-R over 1024-bit RSA keys issued by a central
//! certificate authority. This crate reproduces the *structure* of that
//! machinery from scratch:
//!
//! * [`sha256`](mod@sha256) — a complete, test-vectored SHA-256
//!   implementation used for all message digests and challenge derivation.
//! * [`schnorr`] — a Schnorr signature scheme over a 62-bit safe-prime
//!   group. Structurally a real signature scheme (keygen / sign / verify,
//!   hash-based challenge); parameterised far too small to be secure.
//! * [`cert`] — the central certificate authority that binds a host address
//!   to a public key and a randomly assigned overlay identifier, exactly as
//!   secure routing requires.
//! * [`nonce`] — probe nonces used to detect spurious acknowledgments.
//!
//! # Security
//!
//! **This crate is a simulation substrate, not a security library.** The
//! group is 62 bits; discrete logs in it are trivially computable. The point
//! is to exercise the same code paths a deployment would have (third parties
//! verifying signed evidence, tamper detection, certificate checks), while
//! keeping the reproduction free of external crypto dependencies. Bandwidth
//! accounting elsewhere in the workspace uses the paper's wire sizes
//! (128-byte PSS-R signatures), not this scheme's.
//!
//! # Examples
//!
//! ```
//! use concilium_crypto::{KeyPair, sha256};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let keys = KeyPair::generate(&mut rng);
//! let sig = keys.sign(b"snapshot bytes", &mut rng);
//! assert!(keys.public().verify(b"snapshot bytes", &sig));
//! assert!(!keys.public().verify(b"tampered bytes", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod memo;
pub mod nonce;
pub mod schnorr;
pub mod sha256;

pub use cert::{Certificate, CertificateAuthority, CertificateError};
pub use memo::{memo_reset, memo_stats, memo_stats_full, verify_cached, MemoStats};
pub use nonce::Nonce;
pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature};
pub use sha256::{sha256, Digest, Sha256};

/// Types that can be deterministically rendered to bytes for signing.
///
/// Concilium signs snapshots, commitments, verdicts, and accusations. Rather
/// than depend on a serialisation format, each signable type appends a
/// canonical byte rendering of itself to a buffer; signatures are computed
/// over the SHA-256 digest of those bytes.
///
/// Implementations must be *injective enough* for the protocol: two
/// semantically different values must render to different byte strings.
/// The convention used across the workspace is to length-prefix variable
/// length fields and write fixed-width integers big-endian.
pub trait Signable {
    /// Appends the canonical byte rendering of `self` to `out`.
    fn signable_bytes(&self, out: &mut Vec<u8>);

    /// Convenience: renders to a fresh buffer.
    fn to_signable_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.signable_bytes(&mut out);
        out
    }

    /// Convenience: the SHA-256 digest of the canonical rendering.
    fn signable_digest(&self) -> Digest {
        sha256(&self.to_signable_vec())
    }
}

impl Signable for [u8] {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_be_bytes());
        out.extend_from_slice(self);
    }
}

impl Signable for Vec<u8> {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        self.as_slice().signable_bytes(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signable_slice_is_length_prefixed() {
        let v: Vec<u8> = vec![1, 2, 3];
        let rendered = v.to_signable_vec();
        assert_eq!(rendered.len(), 8 + 3);
        assert_eq!(&rendered[..8], &3u64.to_be_bytes());
        assert_eq!(&rendered[8..], &[1, 2, 3]);
    }

    #[test]
    fn signable_digest_distinguishes_values() {
        let a: Vec<u8> = vec![1, 2, 3];
        let b: Vec<u8> = vec![1, 2, 4];
        assert_ne!(a.signable_digest(), b.signable_digest());
    }
}
