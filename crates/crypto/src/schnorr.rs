//! Toy Schnorr signatures over a 62-bit safe-prime group.
//!
//! The scheme is the textbook Schnorr construction:
//!
//! * Public parameters: safe prime `p = 2q + 1`, generator `g` of the
//!   order-`q` subgroup of Z*_p.
//! * Key generation: secret `x ∈ [1, q)`, public `y = g^x mod p`.
//! * Signing message `m`: pick `k ∈ [1, q)`, compute `r = g^k mod p`,
//!   challenge `e = H(r ‖ m) mod q`, response `s = k + x·e mod q`.
//!   Signature is `(e, s)`.
//! * Verification: `r' = g^s · y^{-e} mod p`, accept iff
//!   `H(r' ‖ m) mod q == e`.
//!
//! **Not secure** — the group is 62 bits so discrete logs are trivial. The
//! reproduction uses it to exercise Concilium's evidence-verification paths
//! (third parties checking signed snapshots, detecting tampering).

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::sha256::Sha256;

/// Safe prime modulus `p = 2q + 1` (62 bits).
pub const P: u64 = 0x3fff_ffff_ffff_d6bb;

/// Prime order of the subgroup, `q = (p − 1) / 2`.
pub const Q: u64 = 0x1fff_ffff_ffff_eb5d;

/// Generator of the order-`q` subgroup (a quadratic residue).
pub const G: u64 = 4;

/// Modular multiplication in Z_p via 128-bit intermediates.
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by squaring.
fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// A Schnorr secret key: a scalar in `[1, q)`.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey(u64);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.write_str("SecretKey(..)")
    }
}

/// A Schnorr public key: the group element `y = g^x`.
///
/// Public keys double as node identities in accusation storage: the paper
/// keys the accusation DHT by the accused host's public key.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PublicKey(u64);

impl PublicKey {
    /// The group element.
    pub const fn element(&self) -> u64 {
        self.0
    }

    /// Big-endian byte rendering, for hashing into DHT keys.
    pub fn to_bytes(&self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Verifies `sig` over `msg`.
    ///
    /// Returns `false` for any tampered message, wrong key, or malformed
    /// signature; never panics.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if sig.s >= Q || sig.e >= Q {
            return false;
        }
        // r' = g^s * y^{-e} = g^s * y^{q-e}   (y has order q)
        let gs = pow_mod(G, sig.s, P);
        let y_neg_e = pow_mod(self.0, Q - (sig.e % Q), P);
        let r = mul_mod(gs, y_neg_e, P);
        challenge(r, msg) == sig.e
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:016x})", self.0)
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Signature {
    e: u64,
    s: u64,
}

impl Signature {
    /// The challenge scalar.
    pub const fn challenge_scalar(&self) -> u64 {
        self.e
    }

    /// The response scalar.
    pub const fn response_scalar(&self) -> u64 {
        self.s
    }

    /// A syntactically valid but cryptographically useless signature, for
    /// tests that need a placeholder.
    pub const fn dummy() -> Signature {
        Signature { e: 1, s: 1 }
    }
}

/// A Schnorr key pair.
///
/// # Examples
///
/// ```
/// use concilium_crypto::KeyPair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kp = KeyPair::generate(&mut rng);
/// let sig = kp.sign(b"hello", &mut rng);
/// assert!(kp.public().verify(b"hello", &sig));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Generates a fresh key pair from `rng`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let x = rng.gen_range(1..Q);
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(pow_mod(G, x, P)),
        }
    }

    /// The public half.
    pub const fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `msg`.
    pub fn sign<R: Rng + ?Sized>(&self, msg: &[u8], rng: &mut R) -> Signature {
        loop {
            let k = rng.gen_range(1..Q);
            let r = pow_mod(G, k, P);
            let e = challenge(r, msg);
            if e == 0 {
                continue; // astronomically unlikely; retry for a clean proof
            }
            let s = (k as u128 + mul_mod(self.secret.0, e, Q) as u128) % Q as u128;
            return Signature { e, s: s as u64 };
        }
    }
}

/// `H(r ‖ m) mod q` — the Fiat–Shamir challenge.
fn challenge(r: u64, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(msg);
    h.finalize().to_u64() % Q
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn group_parameters_are_consistent() {
        assert_eq!(P, 2 * Q + 1);
        // g generates the order-q subgroup: g^q == 1, g != 1.
        assert_eq!(pow_mod(G, Q, P), 1);
        assert_ne!(G, 1);
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = StdRng::seed_from_u64(42);
        let kp = KeyPair::generate(&mut rng);
        for msg in [&b""[..], b"x", b"a longer message with content"] {
            let sig = kp.sign(msg, &mut rng);
            assert!(kp.public().verify(msg, &sig));
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let mut rng = StdRng::seed_from_u64(43);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"original", &mut rng);
        assert!(!kp.public().verify(b"tampered", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(44);
        let kp1 = KeyPair::generate(&mut rng);
        let kp2 = KeyPair::generate(&mut rng);
        let sig = kp1.sign(b"msg", &mut rng);
        assert!(!kp2.public().verify(b"msg", &sig));
    }

    #[test]
    fn malformed_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(45);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"msg", &mut rng);
        let bad = Signature { e: sig.e, s: Q }; // out-of-range scalar
        assert!(!kp.public().verify(b"msg", &bad));
        assert!(!kp.public().verify(b"msg", &Signature::dummy()));
    }

    #[test]
    fn signature_component_flip_rejected() {
        let mut rng = StdRng::seed_from_u64(46);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"msg", &mut rng);
        let flip_e = Signature { e: sig.e ^ 1, s: sig.s };
        let flip_s = Signature { e: sig.e, s: sig.s ^ 1 };
        assert!(!kp.public().verify(b"msg", &flip_e));
        assert!(!kp.public().verify(b"msg", &flip_s));
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let mut rng = StdRng::seed_from_u64(47);
        let kp = KeyPair::generate(&mut rng);
        assert_eq!(format!("{:?}", kp.secret), "SecretKey(..)");
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_000_007), 1024);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(0, 5, 7), 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

            #[test]
            fn round_trip_random_messages(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..128)) {
                let mut rng = StdRng::seed_from_u64(seed);
                let kp = KeyPair::generate(&mut rng);
                let sig = kp.sign(&msg, &mut rng);
                prop_assert!(kp.public().verify(&msg, &sig));
            }

            #[test]
            fn appended_byte_rejected(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..64), extra in any::<u8>()) {
                let mut rng = StdRng::seed_from_u64(seed);
                let kp = KeyPair::generate(&mut rng);
                let sig = kp.sign(&msg, &mut rng);
                let mut tampered = msg.clone();
                tampered.push(extra);
                prop_assert!(!kp.public().verify(&tampered, &sig));
            }
        }
    }
}
