//! Toy Schnorr signatures over a 62-bit safe-prime group.
//!
//! The scheme is the textbook Schnorr construction:
//!
//! * Public parameters: safe prime `p = 2q + 1`, generator `g` of the
//!   order-`q` subgroup of Z*_p.
//! * Key generation: secret `x ∈ [1, q)`, public `y = g^x mod p`.
//! * Signing message `m`: pick `k ∈ [1, q)`, compute `r = g^k mod p`,
//!   challenge `e = H(r ‖ m) mod q`, response `s = k + x·e mod q`.
//!   Signature is `(e, s)`.
//! * Verification: `r' = g^s · y^{-e} mod p`, accept iff
//!   `H(r' ‖ m) mod q == e`.
//!
//! **Not secure** — the group is 62 bits so discrete logs are trivial. The
//! reproduction uses it to exercise Concilium's evidence-verification paths
//! (third parties checking signed snapshots, detecting tampering).

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::sha256::Sha256;

/// Safe prime modulus `p = 2q + 1` (62 bits).
pub const P: u64 = 0x3fff_ffff_ffff_d6bb;

/// Prime order of the subgroup, `q = (p − 1) / 2`.
pub const Q: u64 = 0x1fff_ffff_ffff_eb5d;

/// Generator of the order-`q` subgroup (a quadratic residue).
pub const G: u64 = 4;

/// Modular multiplication in Z_p via 128-bit intermediates.
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Montgomery arithmetic over an odd modulus `m < 2^63`, radix `R = 2^64`.
///
/// Signing and verifying both reduce to `pow_mod`, which the DST calls on
/// every acknowledgment and accusation — tens of thousands of times per
/// sweep. Naive square-and-multiply pays a 128-bit division (`__umodti3`)
/// per step; Montgomery replaces each with two 64×64 multiplies and a
/// shift while computing *exactly* the same residues, so signatures and
/// digests are unchanged.
struct Mont {
    m: u64,
    /// `-m^{-1} mod 2^64`.
    neg_inv: u64,
    /// `R^2 mod m`, for converting into Montgomery form.
    r2: u64,
}

impl Mont {
    fn new(m: u64) -> Self {
        debug_assert!(m & 1 == 1 && m > 1);
        // Newton–Hensel lifting: `inv = 1` is `m^{-1} mod 2` for any odd
        // `m`, and each iteration doubles the number of valid low bits,
        // so six iterations reach `mod 2^64`.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(inv)));
        }
        debug_assert_eq!(m.wrapping_mul(inv), 1);
        let r1 = ((1u128 << 64) % m as u128) as u64;
        Mont { m, neg_inv: inv.wrapping_neg(), r2: mul_mod(r1, r1, m) }
    }

    /// Montgomery reduction: `t·R^{-1} mod m` for `t < m·R`.
    fn redc(&self, t: u128) -> u64 {
        let k = (t as u64).wrapping_mul(self.neg_inv);
        // Low 64 bits of `t + k·m` cancel by construction of `k`; the sum
        // stays below `2·m·R < 2^128` because `m < 2^63`.
        let u = ((t + k as u128 * self.m as u128) >> 64) as u64;
        if u >= self.m {
            u - self.m
        } else {
            u
        }
    }

    /// Product of two Montgomery-form values, in Montgomery form.
    fn mul(&self, a: u64, b: u64) -> u64 {
        self.redc(a as u128 * b as u128)
    }

    /// Converts `x < m` into Montgomery form (`x·R mod m`).
    fn to_mont(&self, x: u64) -> u64 {
        self.redc(x as u128 * self.r2 as u128)
    }
}

/// Modular exponentiation by squaring.
///
/// Odd moduli (every group operation: `p` and `q` are prime) run in
/// Montgomery form; the generic path is kept for even moduli so the
/// function's domain is unchanged.
fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m & 1 == 1 && m > 1 {
        let mont = Mont::new(m);
        let mut base_m = mont.to_mont(base % m);
        let mut acc_m = mont.to_mont(1);
        while exp > 0 {
            if exp & 1 == 1 {
                acc_m = mont.mul(acc_m, base_m);
            }
            base_m = mont.mul(base_m, base_m);
            exp >>= 1;
        }
        return mont.redc(acc_m as u128);
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// A Schnorr secret key: a scalar in `[1, q)`.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey(u64);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.write_str("SecretKey(..)")
    }
}

/// A Schnorr public key: the group element `y = g^x`.
///
/// Public keys double as node identities in accusation storage: the paper
/// keys the accusation DHT by the accused host's public key.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PublicKey(u64);

impl PublicKey {
    /// The group element.
    pub const fn element(&self) -> u64 {
        self.0
    }

    /// Big-endian byte rendering, for hashing into DHT keys.
    pub fn to_bytes(&self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Verifies `sig` over `msg`.
    ///
    /// Returns `false` for any tampered message, wrong key, or malformed
    /// signature; never panics.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if sig.s >= Q || sig.e >= Q {
            return false;
        }
        // r' = g^s * y^{-e} = g^s * y^{q-e}   (y has order q)
        let gs = pow_mod(G, sig.s, P);
        let y_neg_e = pow_mod(self.0, Q - (sig.e % Q), P);
        let r = mul_mod(gs, y_neg_e, P);
        challenge(r, msg) == sig.e
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:016x})", self.0)
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Signature {
    e: u64,
    s: u64,
}

impl Signature {
    /// The challenge scalar.
    pub const fn challenge_scalar(&self) -> u64 {
        self.e
    }

    /// The response scalar.
    pub const fn response_scalar(&self) -> u64 {
        self.s
    }

    /// A syntactically valid but cryptographically useless signature, for
    /// tests that need a placeholder.
    pub const fn dummy() -> Signature {
        Signature { e: 1, s: 1 }
    }
}

/// A Schnorr key pair.
///
/// # Examples
///
/// ```
/// use concilium_crypto::KeyPair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kp = KeyPair::generate(&mut rng);
/// let sig = kp.sign(b"hello", &mut rng);
/// assert!(kp.public().verify(b"hello", &sig));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Generates a fresh key pair from `rng`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let x = rng.gen_range(1..Q);
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(pow_mod(G, x, P)),
        }
    }

    /// The public half.
    pub const fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `msg`.
    pub fn sign<R: Rng + ?Sized>(&self, msg: &[u8], rng: &mut R) -> Signature {
        loop {
            let k = rng.gen_range(1..Q);
            let r = pow_mod(G, k, P);
            let e = challenge(r, msg);
            if e == 0 {
                continue; // astronomically unlikely; retry for a clean proof
            }
            let s = (k as u128 + mul_mod(self.secret.0, e, Q) as u128) % Q as u128;
            return Signature { e, s: s as u64 };
        }
    }
}

/// `H(r ‖ m) mod q` — the Fiat–Shamir challenge.
fn challenge(r: u64, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(msg);
    h.finalize().to_u64() % Q
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn group_parameters_are_consistent() {
        assert_eq!(P, 2 * Q + 1);
        // g generates the order-q subgroup: g^q == 1, g != 1.
        assert_eq!(pow_mod(G, Q, P), 1);
        assert_ne!(G, 1);
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = StdRng::seed_from_u64(42);
        let kp = KeyPair::generate(&mut rng);
        for msg in [&b""[..], b"x", b"a longer message with content"] {
            let sig = kp.sign(msg, &mut rng);
            assert!(kp.public().verify(msg, &sig));
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let mut rng = StdRng::seed_from_u64(43);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"original", &mut rng);
        assert!(!kp.public().verify(b"tampered", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(44);
        let kp1 = KeyPair::generate(&mut rng);
        let kp2 = KeyPair::generate(&mut rng);
        let sig = kp1.sign(b"msg", &mut rng);
        assert!(!kp2.public().verify(b"msg", &sig));
    }

    #[test]
    fn malformed_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(45);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"msg", &mut rng);
        let bad = Signature { e: sig.e, s: Q }; // out-of-range scalar
        assert!(!kp.public().verify(b"msg", &bad));
        assert!(!kp.public().verify(b"msg", &Signature::dummy()));
    }

    #[test]
    fn signature_component_flip_rejected() {
        let mut rng = StdRng::seed_from_u64(46);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"msg", &mut rng);
        let flip_e = Signature { e: sig.e ^ 1, s: sig.s };
        let flip_s = Signature { e: sig.e, s: sig.s ^ 1 };
        assert!(!kp.public().verify(b"msg", &flip_e));
        assert!(!kp.public().verify(b"msg", &flip_s));
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let mut rng = StdRng::seed_from_u64(47);
        let kp = KeyPair::generate(&mut rng);
        assert_eq!(format!("{:?}", kp.secret), "SecretKey(..)");
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_000_007), 1024);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(0, 5, 7), 0);
        // Even modulus exercises the non-Montgomery path.
        assert_eq!(pow_mod(3, 4, 10), 1);
    }

    /// Square-and-multiply with plain 128-bit division — the reference the
    /// Montgomery path must match bit-for-bit.
    fn pow_mod_reference(mut base: u64, mut exp: u64, m: u64) -> u64 {
        let mut acc: u64 = 1;
        base %= m;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = mul_mod(acc, base, m);
            }
            base = mul_mod(base, base, m);
            exp >>= 1;
        }
        acc
    }

    #[test]
    fn montgomery_matches_reference_on_group_parameters() {
        let mut rng = StdRng::seed_from_u64(48);
        for _ in 0..200 {
            let base = rng.gen_range(0..P);
            let exp = rng.gen_range(0..u64::MAX);
            assert_eq!(pow_mod(base, exp, P), pow_mod_reference(base, exp, P));
            assert_eq!(pow_mod(base, exp, Q), pow_mod_reference(base, exp, Q));
        }
    }

    mod pow_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

            #[test]
            fn montgomery_matches_reference_on_odd_moduli(
                base in any::<u64>(),
                exp in any::<u64>(),
                m in any::<u64>(),
            ) {
                // Clamp to an odd modulus in (1, 2^63): the Montgomery
                // domain. The reference is modulus-agnostic.
                let m = (m % (1u64 << 62)).max(1) * 2 + 1;
                prop_assert_eq!(pow_mod(base % m, exp, m), pow_mod_reference(base % m, exp, m));
            }
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

            #[test]
            fn round_trip_random_messages(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..128)) {
                let mut rng = StdRng::seed_from_u64(seed);
                let kp = KeyPair::generate(&mut rng);
                let sig = kp.sign(&msg, &mut rng);
                prop_assert!(kp.public().verify(&msg, &sig));
            }

            #[test]
            fn appended_byte_rejected(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..64), extra in any::<u8>()) {
                let mut rng = StdRng::seed_from_u64(seed);
                let kp = KeyPair::generate(&mut rng);
                let sig = kp.sign(&msg, &mut rng);
                let mut tampered = msg.clone();
                tampered.push(extra);
                prop_assert!(!kp.public().verify(&tampered, &sig));
            }
        }
    }
}
