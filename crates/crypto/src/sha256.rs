//! A from-scratch SHA-256 implementation (FIPS 180-4).
//!
//! Used for all digests in the workspace: snapshot hashes, Schnorr
//! challenges, probe-nonce derivation, and DHT keys. Verified against the
//! official NIST test vectors in the unit tests.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 256-bit SHA-256 digest.
///
/// # Examples
///
/// ```
/// use concilium_crypto::sha256;
///
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Returns the digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Formats the digest as 64 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            use fmt::Write;
            // lint:allow(no-panic, reason = "fmt::Write to String is infallible")
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// Interprets the first 8 bytes as a big-endian `u64`.
    ///
    /// Used to derive group scalars and nonce material from digests.
    pub fn to_u64(&self) -> u64 {
        // lint:allow(no-panic, reason = "slice length is the fixed 32-byte digest")
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
    0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use concilium_crypto::sha256::{Sha256, Digest};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), concilium_crypto::sha256(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buf: [0; 64], buf_len: 0, total_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            // lint:allow(no-panic, reason = "loop condition guarantees 64 bytes remain")
            let block: [u8; 64] = data[..64].try_into().expect("64-byte chunk");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        const PAD: [u8; 64] = {
            let mut p = [0u8; 64];
            p[0] = 0x80;
            p
        };
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length — absorbed in
        // one update (the shortest run that lands `buf_len` on 56 mod 64)
        // rather than a byte at a time.
        let pad_len = 1 + (119 - self.buf_len) % 64;
        self.update(&PAD[..pad_len]);
        debug_assert_eq!(self.buf_len, 56);
        // Manually absorb the length without touching total_len bookkeeping.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// One compression round over the 64-byte `block`.
    ///
    /// This is the hottest function in the workspace: the DST's chained
    /// trace hash runs it two or three times per simulated event. It uses
    /// the textbook optimizations — a 16-word ring for the message
    /// schedule instead of the expanded 64-word array, and fully unrolled
    /// rounds with register *renaming* in place of the 8-way shuffle — and
    /// produces bit-identical digests to the straightforward form (the
    /// NIST vectors below and the chained-trace goldens both pin it).
    fn compress(&mut self, block: &[u8; 64]) {
        #[inline(always)]
        fn sig0(x: u32) -> u32 {
            x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
        }
        #[inline(always)]
        fn sig1(x: u32) -> u32 {
            x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
        }

        let mut w = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            // lint:allow(no-panic, reason = "chunks_exact(4) yields exactly 4 bytes")
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        // One round with the working variables in the positions they hold
        // for that round; callers rotate the *names*, not the values.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $kw:expr) => {{
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ (!$e & $g);
                let t1 = $h.wrapping_add(s1).wrapping_add(ch).wrapping_add($kw);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(s0.wrapping_add(maj));
            }};
        }

        macro_rules! sixteen_rounds {
            ($t:expr) => {{
                round!(a, b, c, d, e, f, g, h, K[$t].wrapping_add(w[0]));
                round!(h, a, b, c, d, e, f, g, K[$t + 1].wrapping_add(w[1]));
                round!(g, h, a, b, c, d, e, f, K[$t + 2].wrapping_add(w[2]));
                round!(f, g, h, a, b, c, d, e, K[$t + 3].wrapping_add(w[3]));
                round!(e, f, g, h, a, b, c, d, K[$t + 4].wrapping_add(w[4]));
                round!(d, e, f, g, h, a, b, c, K[$t + 5].wrapping_add(w[5]));
                round!(c, d, e, f, g, h, a, b, K[$t + 6].wrapping_add(w[6]));
                round!(b, c, d, e, f, g, h, a, K[$t + 7].wrapping_add(w[7]));
                round!(a, b, c, d, e, f, g, h, K[$t + 8].wrapping_add(w[8]));
                round!(h, a, b, c, d, e, f, g, K[$t + 9].wrapping_add(w[9]));
                round!(g, h, a, b, c, d, e, f, K[$t + 10].wrapping_add(w[10]));
                round!(f, g, h, a, b, c, d, e, K[$t + 11].wrapping_add(w[11]));
                round!(e, f, g, h, a, b, c, d, K[$t + 12].wrapping_add(w[12]));
                round!(d, e, f, g, h, a, b, c, K[$t + 13].wrapping_add(w[13]));
                round!(c, d, e, f, g, h, a, b, K[$t + 14].wrapping_add(w[14]));
                round!(b, c, d, e, f, g, h, a, K[$t + 15].wrapping_add(w[15]));
            }};
        }

        // Advances the 16-word ring by sixteen schedule positions. In
        // ascending `j`, slots `(j + 9) & 15` and `(j + 14) & 15` that have
        // wrapped were already overwritten this pass — which is exactly
        // W[t+j+9] and W[t+j+14] of the expanded schedule.
        macro_rules! advance_schedule {
            () => {{
                for j in 0..16 {
                    w[j] = w[j]
                        .wrapping_add(sig0(w[(j + 1) & 15]))
                        .wrapping_add(w[(j + 9) & 15])
                        .wrapping_add(sig1(w[(j + 14) & 15]));
                }
            }};
        }

        sixteen_rounds!(0);
        advance_schedule!();
        sixteen_rounds!(16);
        advance_schedule!();
        sixteen_rounds!(32);
        advance_schedule!();
        sixteen_rounds!(48);

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

/// Hashes `data` in one shot.
///
/// # Examples
///
/// ```
/// let d = concilium_crypto::sha256(b"");
/// assert_eq!(
///     d.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST FIPS 180-4 / NESSIE test vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
            (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(sha256(input).to_hex(), *expected, "input {input:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0, 1, 63, 64, 65, 127, 5000, 9999, 10_000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_helpers() {
        let d = sha256(b"abc");
        assert_eq!(d.to_u64(), u64::from_be_bytes([0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea]));
        assert_eq!(d.as_bytes().len(), 32);
        assert!(format!("{d:?}").starts_with("Digest("));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_split_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
                let split = split.min(data.len());
                let mut h = Sha256::new();
                h.update(&data[..split]);
                h.update(&data[split..]);
                prop_assert_eq!(h.finalize(), sha256(&data));
            }

            #[test]
            fn distinct_inputs_distinct_digests(a in proptest::collection::vec(any::<u8>(), 0..64), b in proptest::collection::vec(any::<u8>(), 0..64)) {
                if a != b {
                    prop_assert_ne!(sha256(&a), sha256(&b));
                }
            }
        }
    }
}
