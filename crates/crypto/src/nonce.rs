//! Probe nonces.
//!
//! Striped-unicast tomography assumes leaves acknowledge received probes. A
//! faulty or malicious leaf might acknowledge probes that were lost in the
//! network; to detect such spurious responses, the probing node includes a
//! nonce in each probe (§3.3). An acknowledgment is only accepted if it
//! echoes the nonce, which a leaf that never received the probe cannot know.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A 64-bit probe nonce.
///
/// # Examples
///
/// ```
/// use concilium_crypto::Nonce;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let n = Nonce::random(&mut rng);
/// assert!(n.matches(n));
/// assert!(!n.matches(Nonce::random(&mut rng)));
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nonce(u64);

impl Nonce {
    /// Draws a fresh random nonce.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Nonce(rng.gen())
    }

    /// Builds a nonce from a raw value (tests and replay scenarios).
    pub const fn from_raw(v: u64) -> Self {
        Nonce(v)
    }

    /// The raw value.
    pub const fn raw(&self) -> u64 {
        self.0
    }

    /// Whether an echoed nonce matches this one.
    pub fn matches(&self, echoed: Nonce) -> bool {
        self.0 == echoed.0
    }
}

impl fmt::Debug for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nonce({:016x})", self.0)
    }
}

impl fmt::Display for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_nonces_differ() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Nonce::random(&mut rng);
        let b = Nonce::random(&mut rng);
        assert_ne!(a, b);
        assert!(!a.matches(b));
    }

    #[test]
    fn raw_round_trip() {
        let n = Nonce::from_raw(0xdead_beef);
        assert_eq!(n.raw(), 0xdead_beef);
        assert!(n.matches(Nonce::from_raw(0xdead_beef)));
    }

    #[test]
    fn debug_formats_hex() {
        assert_eq!(format!("{:?}", Nonce::from_raw(1)), "Nonce(0000000000000001)");
    }
}
