//! Deterministic parallel execution for the Concilium reproduction.
//!
//! Every compute-heavy driver in this workspace — the DST explorer sweep,
//! the figure/table experiment suite, Monte-Carlo overlay statistics — is an
//! embarrassingly parallel loop over independent tasks.  This crate provides
//! a small scoped-thread work-stealing map with one hard guarantee:
//!
//! > **The output is bit-identical to the serial run at any worker count.**
//!
//! The guarantee is achieved by three rules:
//!
//! 1. **Submission-order results.**  Workers claim task indices from a shared
//!    atomic counter, but every result is keyed by its submission index and
//!    the final vector is assembled in submission order.  Wall-clock
//!    interleaving never leaks into the output.
//! 2. **Pure tasks.**  The task closure must be a pure function of
//!    `(index, item)`.  Tasks that need randomness derive a per-task seed
//!    with [`derive_seed`] instead of sharing a sequential RNG stream.
//! 3. **Minimum-index cancellation.**  Early exit (e.g. "stop at the first
//!    invariant violation") is expressed as a *minimum stopping index*, not a
//!    boolean flag.  A worker that wants to stop publishes its index via an
//!    atomic `fetch_min`; workers skip only tasks *beyond* the current
//!    minimum.  Because the claim counter is monotonic, every index at or
//!    before the final minimum is guaranteed to have run, so truncating the
//!    results at the final minimum reproduces exactly the prefix the serial
//!    loop would have produced.
//!
//! No dependencies beyond `std`; threads are spawned with
//! [`std::thread::scope`] so tasks may freely borrow from the caller's stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Environment variable consulted by [`Jobs::resolve`] when no explicit
/// worker count is given.
pub const JOBS_ENV: &str = "CONCILIUM_JOBS";

/// A resolved worker count (always ≥ 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Jobs(usize);

impl Jobs {
    /// Resolve the effective worker count.
    ///
    /// Priority: an explicit request (e.g. from `--jobs N`), then the
    /// `CONCILIUM_JOBS` environment variable, then the machine's available
    /// parallelism.  Zero or unparsable values are ignored at each level.
    pub fn resolve(explicit: Option<usize>) -> Jobs {
        let n = explicit
            .filter(|&n| n >= 1)
            .or_else(|| {
                std::env::var(JOBS_ENV)
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&n| n >= 1)
            })
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()));
        Jobs(n)
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0
    }
}

/// Derive an independent per-task seed from a master seed and a task index.
///
/// This is a SplitMix64 finalizer over `master ⊕ f(index)`; it is the
/// mechanism that lets randomized tasks run in any order while staying
/// deterministic: the stream a task sees depends only on `(master, index)`,
/// never on which worker ran it or what ran before it.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ (index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shared cancellation horizon: the smallest task index that requested a stop.
struct Horizon {
    earliest: AtomicUsize,
}

impl Horizon {
    fn new() -> Self {
        Horizon {
            earliest: AtomicUsize::new(usize::MAX),
        }
    }

    fn stop_at(&self, idx: usize) {
        self.earliest.fetch_min(idx, Ordering::SeqCst);
    }

    fn get(&self) -> usize {
        self.earliest.load(Ordering::SeqCst)
    }
}

/// Map `f` over `items` on up to `jobs` workers, returning results in
/// submission order.
///
/// `f` must be a pure function of `(index, item)`; under that contract the
/// output is bit-identical at any `jobs` value.  With `jobs <= 1` (or a
/// single item) no threads are spawned at all.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let (results, stopped) = par_map_while(jobs, items, |idx, item| (f(idx, item), false));
    debug_assert!(stopped.is_none());
    results
}

/// Map `f` over `items` on up to `jobs` workers with first-failure
/// cancellation.
///
/// `f` returns `(result, stop)`.  The call returns the results for exactly
/// the submission-order prefix a serial loop would have produced: if any
/// task requests a stop, the results cover indices `0..=s` where `s` is the
/// *smallest* stopping index, and `Some(s)` is returned alongside.  If no
/// task stops, all results are returned with `None`.
///
/// Tasks strictly beyond the current minimum stopping index are skipped
/// (their `f` is never invoked), which is what makes cancellation an actual
/// saving rather than bookkeeping — but tasks at or before the final minimum
/// always run, so the returned prefix is complete.
pub fn par_map_while<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, Option<usize>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> (R, bool) + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return serial_map_while(items, f);
    }

    let workers = jobs.min(n);
    let counter = AtomicUsize::new(0);
    let horizon = Horizon::new();

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let counter = &counter;
                let horizon = &horizon;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        // AcqRel: the claim counter is the one point of
                        // cross-worker coordination on the hot path; pairing
                        // the claim with the horizon's SeqCst fetch_min keeps
                        // "every index at or before the final minimum ran"
                        // independent of compiler/CPU reordering.
                        let idx = counter.fetch_add(1, Ordering::AcqRel);
                        if idx >= n {
                            break;
                        }
                        // The claim counter is monotonic, so once the horizon
                        // falls below the next claim every later claim is
                        // beyond it too: safe to stop claiming entirely.
                        if idx > horizon.get() {
                            break;
                        }
                        let (result, stop) = {
                            let _span = concilium_obs::span("par.task");
                            f(idx, &items[idx])
                        };
                        if stop {
                            horizon.stop_at(idx);
                        }
                        local.push((idx, result));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (idx, result) in handle.join().expect("parallel worker panicked") {
                slots[idx] = Some(result);
            }
        }
    });

    let cut = horizon.get();
    if cut == usize::MAX {
        let results: Vec<R> = slots
            .into_iter()
            .map(|slot| slot.expect("task skipped without a stop request"))
            .collect();
        (results, None)
    } else {
        let results: Vec<R> = slots
            .into_iter()
            .take(cut + 1)
            .map(|slot| slot.expect("task at or before the stop index must have run"))
            .collect();
        (results, Some(cut))
    }
}

fn serial_map_while<T, R, F>(items: &[T], f: F) -> (Vec<R>, Option<usize>)
where
    F: Fn(usize, &T) -> (R, bool),
{
    let mut results = Vec::with_capacity(items.len());
    for (idx, item) in items.iter().enumerate() {
        let (result, stop) = f(idx, item);
        results.push(result);
        if stop {
            return (results, Some(idx));
        }
    }
    (results, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_submission_order() {
        let items: Vec<u64> = (0..257).collect();
        for jobs in [1, 2, 3, 4, 8] {
            let out = par_map(jobs, &items, |idx, &x| {
                // Vary per-task work so wall-clock completion order scrambles.
                let spin = (x * 31) % 97;
                let mut acc = x;
                for _ in 0..spin * 50 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(idx as u64);
                }
                std::hint::black_box(acc);
                x * 3 + idx as u64
            });
            let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 3 + i as u64).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn stop_yields_exact_serial_prefix_at_any_worker_count() {
        let items: Vec<u64> = (0..300).collect();
        let stop_at = 41usize;
        let serial = {
            let (results, stopped) = par_map_while(1, &items, |idx, &x| (x + 1, idx == stop_at));
            assert_eq!(stopped, Some(stop_at));
            results
        };
        assert_eq!(serial.len(), stop_at + 1);
        for jobs in [2, 3, 4, 7, 16] {
            let (results, stopped) = par_map_while(jobs, &items, |idx, &x| (x + 1, idx == stop_at));
            assert_eq!(stopped, Some(stop_at), "jobs={jobs}");
            assert_eq!(results, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn earliest_of_many_stop_requests_wins() {
        let items: Vec<u64> = (0..200).collect();
        // Several indices request a stop (17, 30, 43, ...); the smallest wins.
        let stopper = |idx: usize| idx >= 17 && idx % 13 == 4;
        let (serial, s_stop) = par_map_while(1, &items, |idx, &x| (x, stopper(idx)));
        for jobs in [2, 4, 8] {
            let (results, stopped) = par_map_while(jobs, &items, |idx, &x| (x, stopper(idx)));
            assert_eq!(stopped, s_stop, "jobs={jobs}");
            assert_eq!(results, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn no_stop_returns_every_item() {
        let items: Vec<u32> = (0..64).collect();
        let (results, stopped) = par_map_while(4, &items, |_, &x| (x, false));
        assert_eq!(stopped, None);
        assert_eq!(results, items);
    }

    #[test]
    fn cancellation_actually_skips_far_tail_work() {
        // With a stop at index 2 and many workers, the far tail should be
        // mostly skipped.  We can't assert an exact count (racy), but the
        // number of executed tasks must be well below the total.
        let items: Vec<u64> = (0..10_000).collect();
        let executed = AtomicU64::new(0);
        let (results, stopped) = par_map_while(4, &items, |idx, &x| {
            // lint:allow(relaxed-atomic, reason = "test-only tally read after scope join; no coordination")
            executed.fetch_add(1, Ordering::Relaxed);
            (x, idx == 2)
        });
        assert_eq!(stopped, Some(2));
        assert_eq!(results, vec![0, 1, 2]);
        assert!(
            // lint:allow(relaxed-atomic, reason = "test-only tally read after scope join; no coordination")
            executed.load(Ordering::Relaxed) < 9_000,
            "cancellation should prune most of the tail"
        );
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u8> = Vec::new();
        let (results, stopped) = par_map_while(4, &empty, |_, &x| (x, false));
        assert!(results.is_empty());
        assert_eq!(stopped, None);

        let one = [7u8];
        let out = par_map(4, &one, |_, &x| x * 2);
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
        // Crude avalanche check: consecutive indices differ in many bits.
        let a = derive_seed(7, 100);
        let b = derive_seed(7, 101);
        assert!((a ^ b).count_ones() >= 16);
    }

    #[test]
    fn jobs_resolution_prefers_explicit() {
        assert_eq!(Jobs::resolve(Some(3)).get(), 3);
        assert_eq!(Jobs::resolve(Some(1)).get(), 1);
        // Zero is ignored; falls through to env/auto, which is always >= 1.
        assert!(Jobs::resolve(Some(0)).get() >= 1);
        assert!(Jobs::resolve(None).get() >= 1);
    }
}
