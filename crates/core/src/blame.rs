//! The fuzzy-logic blame calculation (§3.4, Equations 2–3).
//!
//! When A's message through B toward Z is never acknowledged, A consults
//! the probe results covering the links of B→C (the path to the hop B
//! should have used) within the window `[t − Δ, t + Δ]`:
//!
//! ```text
//! Pr(B faulty) = Pr(B→C good) = 1 − Pr(B→C has ≥ 1 bad link)        (Eq. 2)
//!
//! Pr(B→C has ≥ 1 bad link) =
//!     max_{l ∈ B→C}  (Σ_{p ∈ probes(l)} [p.l_up·(1−a) + (1−p.l_up)·a])
//!                    ──────────────────────────────────────────────
//!                                 |probes(l)|                        (Eq. 3)
//! ```
//!
//! `max` is the fuzzy-logic OR: it selects the link the judge is most
//! confident was bad, weighing each probe equally. Crucially, B's own
//! probe results are excluded when judging B, so B cannot talk its way
//! out of blame — the caller is responsible for that exclusion (see
//! [`SimWorld::probe_evidence`]).
//!
//! [`SimWorld::probe_evidence`]: https://docs.rs/concilium-sim

use concilium_types::LinkId;

/// The probe observations available for one link of the B→C path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkEvidence {
    /// The link these observations cover.
    pub link: LinkId,
    /// Each probe's judgment: `true` = probed up, `false` = probed down.
    pub observations: Vec<bool>,
}

/// The inner sum of Eq. 3: the judge's confidence that a link was *bad*,
/// given its probe observations and the probe accuracy `a`.
///
/// Returns `None` when there are no observations for the link (links
/// without probes contribute nothing to the max).
///
/// # Panics
///
/// Panics if `accuracy` is not in `(0.5, 1]`.
///
/// # Examples
///
/// ```
/// use concilium::blame::link_bad_confidence;
///
/// // The paper's worked example: Q and R probe a link as down, S as up,
/// // a = 0.8 → confidence (0.8·2 + (1−0.8)) / 3 = 0.6. Note the "up"
/// // probe contributes 1 − a = 0.2, not a.
/// let c = link_bad_confidence(&[false, false, true], 0.8).unwrap();
/// assert!((c - 0.6).abs() < 1e-12);
///
/// // An unprobed link yields no confidence at all — `None`, not 0.0 —
/// // so it contributes nothing to the fuzzy max of Eq. 3.
/// assert_eq!(link_bad_confidence(&[], 0.8), None);
///
/// // Unanimous "down" at accuracy 0.8 converges on 0.8, never 1.0:
/// // probe noise caps the confidence at the accuracy itself.
/// let c = link_bad_confidence(&[false, false, false, false], 0.8).unwrap();
/// assert!((c - 0.8).abs() < 1e-12);
/// ```
pub fn link_bad_confidence(observations: &[bool], accuracy: f64) -> Option<f64> {
    assert!(
        accuracy > 0.5 && accuracy <= 1.0,
        "probe accuracy must be in (0.5, 1], got {accuracy}"
    );
    if observations.is_empty() {
        return None;
    }
    let sum: f64 = observations
        .iter()
        .map(|&up| if up { 1.0 - accuracy } else { accuracy })
        .sum();
    Some(sum / observations.len() as f64)
}

/// Eq. 2 over a whole path: the blame assigned to the forwarder given the
/// per-link evidence.
///
/// Links with no observations are skipped. If *no* link has any
/// observations, the path cannot be shown bad, and the forwarder receives
/// full blame (1.0) — this is what pins the accusation chain on the true
/// culprit in §3.5: the culprit's peers "will not have probed any links as
/// down", and the culprit cannot fabricate such probes because its own
/// probes are ignored.
///
/// # Panics
///
/// Panics if `accuracy` is not in `(0.5, 1]`.
pub fn blame_from_path_evidence(evidence: &[LinkEvidence], accuracy: f64) -> f64 {
    let path_bad = evidence
        .iter()
        .filter_map(|e| link_bad_confidence(&e.observations, accuracy))
        .fold(0.0f64, f64::max); // fuzzy OR
    1.0 - path_bad
}

/// Ablation variant: probabilistic (noisy-OR) combination instead of the
/// fuzzy max, for the `blame_or_ablation` bench. Not part of the paper's
/// protocol.
///
/// # Panics
///
/// Panics if `accuracy` is not in `(0.5, 1]`.
pub fn blame_with_noisy_or(evidence: &[LinkEvidence], accuracy: f64) -> f64 {
    let path_good: f64 = evidence
        .iter()
        .filter_map(|e| link_bad_confidence(&e.observations, accuracy))
        .map(|bad| 1.0 - bad)
        .product();
    path_good
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(link: u32, obs: &[bool]) -> LinkEvidence {
        LinkEvidence { link: LinkId(link), observations: obs.to_vec() }
    }

    #[test]
    fn paper_worked_example() {
        // Q, R probe down; S probes up; a = 0.8 → badness 0.6.
        assert!((link_bad_confidence(&[false, false, true], 0.8).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn all_up_observations_give_low_badness() {
        // Unanimous "up" at accuracy 0.9 → badness 0.1 → blame 0.9.
        let blame = blame_from_path_evidence(&[ev(0, &[true, true, true])], 0.9);
        assert!((blame - 0.9).abs() < 1e-12);
    }

    #[test]
    fn all_down_observations_exonerate() {
        let blame = blame_from_path_evidence(&[ev(0, &[false, false])], 0.9);
        assert!((blame - 0.1).abs() < 1e-12);
    }

    #[test]
    fn max_selects_worst_link() {
        let blame = blame_from_path_evidence(
            &[
                ev(0, &[true, true]),          // badness 0.1
                ev(1, &[false, true]),         // badness 0.5
                ev(2, &[false, false, false]), // badness 0.9
            ],
            0.9,
        );
        assert!((blame - (1.0 - 0.9)).abs() < 1e-12);
    }

    #[test]
    fn unprobed_links_are_skipped() {
        let blame = blame_from_path_evidence(&[ev(0, &[]), ev(1, &[true])], 0.9);
        assert!((blame - 0.9).abs() < 1e-12);
    }

    #[test]
    fn no_evidence_at_all_means_full_blame() {
        assert_eq!(blame_from_path_evidence(&[ev(0, &[]), ev(1, &[])], 0.9), 1.0);
        assert_eq!(blame_from_path_evidence(&[], 0.9), 1.0);
    }

    #[test]
    fn noisy_or_is_at_most_fuzzy_blame() {
        // Product of goods ≤ min of goods = 1 − max of bads.
        let evidence = vec![ev(0, &[false, true]), ev(1, &[true]), ev(2, &[false])];
        let fuzzy = blame_from_path_evidence(&evidence, 0.85);
        let noisy = blame_with_noisy_or(&evidence, 0.85);
        assert!(noisy <= fuzzy + 1e-12, "noisy {noisy} > fuzzy {fuzzy}");
    }

    #[test]
    #[should_panic(expected = "probe accuracy")]
    fn bad_accuracy_rejected() {
        let _ = link_bad_confidence(&[true], 0.5);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn blame_is_a_probability(
                obs in proptest::collection::vec(
                    proptest::collection::vec(any::<bool>(), 0..10), 0..6),
                acc in 0.51f64..1.0,
            ) {
                let evidence: Vec<LinkEvidence> = obs
                    .into_iter()
                    .enumerate()
                    .map(|(i, o)| LinkEvidence { link: LinkId(i as u32), observations: o })
                    .collect();
                let b = blame_from_path_evidence(&evidence, acc);
                prop_assert!((0.0..=1.0).contains(&b));
            }

            #[test]
            fn more_down_probes_reduce_blame(
                ups in 0usize..6,
                downs in 1usize..6,
                acc in 0.51f64..1.0,
            ) {
                // Adding a down observation to a link can only increase its
                // badness, hence weakly decrease blame.
                let mut obs: Vec<bool> = vec![true; ups];
                obs.extend(std::iter::repeat_n(false, downs));
                let less_down = {
                    let mut o = obs.clone();
                    o.pop(); // remove one down
                    blame_from_path_evidence(
                        &[LinkEvidence { link: LinkId(0), observations: o }], acc)
                };
                let more_down = blame_from_path_evidence(
                    &[LinkEvidence { link: LinkId(0), observations: obs }], acc);
                prop_assert!(more_down <= less_down + 1e-12);
            }
        }
    }
}
