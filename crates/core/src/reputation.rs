//! A minimal decentralized reputation ledger (§3.6).
//!
//! When a malicious forwarder refuses to issue forwarding commitments,
//! Concilium cannot adjudicate — there is no signed evidence either way.
//! The paper's answer is an external reputation system (it cites
//! Credence): the sender casts a vote of no confidence, and honest hosts
//! eventually learn to avoid the peer. This module is the smallest ledger
//! that exercises that code path; it is *not* a reproduction of Credence.

use std::fmt;

use serde::{Deserialize, Serialize};

use concilium_crypto::{KeyPair, PublicKey, Signable, Signature};
use concilium_types::{Id, SimTime};

/// A signed confidence vote about a peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Vote {
    voter: Id,
    subject: Id,
    confident: bool,
    time: SimTime,
    sig: Signature,
}

impl Vote {
    /// Casts a signed vote.
    pub fn cast<R: rand::Rng + ?Sized>(
        voter: Id,
        subject: Id,
        confident: bool,
        time: SimTime,
        voter_keys: &KeyPair,
        rng: &mut R,
    ) -> Self {
        let mut v = Vote { voter, subject, confident, time, sig: Signature::dummy() };
        v.sig = voter_keys.sign(&v.to_signable_vec(), rng);
        v
    }

    /// The voting host.
    pub fn voter(&self) -> Id {
        self.voter
    }

    /// The host being voted on.
    pub fn subject(&self) -> Id {
        self.subject
    }

    /// Whether the vote expresses confidence.
    pub fn confident(&self) -> bool {
        self.confident
    }

    /// Verifies the voter's signature.
    pub fn verify(&self, voter_key: &PublicKey) -> bool {
        voter_key.verify(&self.to_signable_vec(), &self.sig)
    }
}

impl Signable for Vote {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"vote");
        out.extend_from_slice(self.voter.as_bytes());
        out.extend_from_slice(self.subject.as_bytes());
        out.push(self.confident as u8);
        out.extend_from_slice(&self.time.as_micros().to_be_bytes());
    }
}

/// A tally of verified votes about one subject.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Tally {
    /// Confidence votes.
    pub confident: usize,
    /// No-confidence votes.
    pub no_confidence: usize,
}

impl Tally {
    /// Total verified votes.
    pub fn total(&self) -> usize {
        self.confident + self.no_confidence
    }
}

/// A host's local ledger of received votes.
///
/// One vote per (voter, subject) is retained — a newer vote replaces an
/// older one, so hosts can change their minds.
#[derive(Clone, Debug, Default)]
pub struct ReputationLedger {
    votes: Vec<Vote>,
}

impl ReputationLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ReputationLedger::default()
    }

    /// Records a vote after verifying its signature.
    ///
    /// # Errors
    ///
    /// Returns [`VoteError::BadSignature`] on signature failure.
    pub fn record(&mut self, vote: Vote, voter_key: &PublicKey) -> Result<(), VoteError> {
        if !vote.verify(voter_key) {
            return Err(VoteError::BadSignature);
        }
        if let Some(existing) = self
            .votes
            .iter_mut()
            .find(|v| v.voter == vote.voter && v.subject == vote.subject)
        {
            if vote.time >= existing.time {
                *existing = vote;
            }
        } else {
            self.votes.push(vote);
        }
        Ok(())
    }

    /// Tallies votes about `subject`.
    pub fn tally(&self, subject: Id) -> Tally {
        let mut t = Tally::default();
        for v in self.votes.iter().filter(|v| v.subject == subject) {
            if v.confident {
                t.confident += 1;
            } else {
                t.no_confidence += 1;
            }
        }
        t
    }

    /// Policy: a subject is distrusted once at least `min_votes` exist and
    /// the no-confidence fraction reaches `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1]`.
    pub fn distrusted(&self, subject: Id, min_votes: usize, threshold: f64) -> bool {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0,1], got {threshold}"
        );
        let t = self.tally(subject);
        t.total() >= min_votes
            && (t.no_confidence as f64) >= threshold * t.total() as f64
    }

    /// Number of stored votes.
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }
}

/// Vote processing errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VoteError {
    /// The vote's signature does not verify.
    BadSignature,
}

impl fmt::Display for VoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoteError::BadSignature => f.write_str("vote signature is invalid"),
        }
    }
}

impl std::error::Error for VoteError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Vec<KeyPair>, StdRng) {
        let mut rng = StdRng::seed_from_u64(121);
        let keys = (0..5).map(|_| KeyPair::generate(&mut rng)).collect();
        (keys, rng)
    }

    #[test]
    fn votes_accumulate_and_tally() {
        let (keys, mut rng) = setup();
        let subject = Id::from_u64(9);
        let mut ledger = ReputationLedger::new();
        for (i, k) in keys.iter().enumerate() {
            let v = Vote::cast(
                Id::from_u64(i as u64),
                subject,
                i % 2 == 0,
                SimTime::from_secs(1),
                k,
                &mut rng,
            );
            ledger.record(v, &k.public()).unwrap();
        }
        let t = ledger.tally(subject);
        assert_eq!(t.confident, 3);
        assert_eq!(t.no_confidence, 2);
        assert!(!ledger.distrusted(subject, 3, 0.5));
    }

    #[test]
    fn distrust_threshold() {
        let (keys, mut rng) = setup();
        let subject = Id::from_u64(9);
        let mut ledger = ReputationLedger::new();
        for (i, k) in keys.iter().enumerate().take(4) {
            let v = Vote::cast(
                Id::from_u64(i as u64),
                subject,
                false,
                SimTime::from_secs(1),
                k,
                &mut rng,
            );
            ledger.record(v, &k.public()).unwrap();
        }
        assert!(ledger.distrusted(subject, 3, 0.75));
        assert!(!ledger.distrusted(subject, 5, 0.75), "too few votes");
    }

    #[test]
    fn newer_vote_replaces_older() {
        let (keys, mut rng) = setup();
        let subject = Id::from_u64(9);
        let voter = Id::from_u64(0);
        let mut ledger = ReputationLedger::new();
        let v1 = Vote::cast(voter, subject, false, SimTime::from_secs(1), &keys[0], &mut rng);
        let v2 = Vote::cast(voter, subject, true, SimTime::from_secs(2), &keys[0], &mut rng);
        ledger.record(v1, &keys[0].public()).unwrap();
        ledger.record(v2, &keys[0].public()).unwrap();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.tally(subject).confident, 1);
        // Stale votes do not roll back newer ones.
        let v0 = Vote::cast(voter, subject, false, SimTime::from_secs(0), &keys[0], &mut rng);
        ledger.record(v0, &keys[0].public()).unwrap();
        assert_eq!(ledger.tally(subject).confident, 1);
    }

    #[test]
    fn forged_vote_rejected() {
        let (keys, mut rng) = setup();
        let mut ledger = ReputationLedger::new();
        // Vote claims voter 0 but is signed by key 1.
        let forged =
            Vote::cast(Id::from_u64(0), Id::from_u64(9), false, SimTime::from_secs(1), &keys[1], &mut rng);
        assert_eq!(
            ledger.record(forged, &keys[0].public()),
            Err(VoteError::BadSignature)
        );
        assert!(ledger.is_empty());
    }
}
