//! Sanctioning policies (§3.7).
//!
//! Concilium "is agnostic about the response to its fault
//! identifications": each deployment sets policy. The paper sketches the
//! design space this module implements:
//!
//! * broken IP links are routed around until the ISP fixes them;
//! * accused hosts may simply not be trusted with sensitive messages
//!   ([`Sanction::ExtraSuspicion`]);
//! * a network can mandate *universal* blacklisting once accusations
//!   arrive above a rate ([`Sanction::Blacklist`]);
//! * crucially, when the overlay underlies a higher-level service such as
//!   a DHT, honest nodes must **not** make local decisions to evict
//!   accused nodes from leaf sets — that causes inconsistent routing and
//!   breaks the service. [`PolicyEngine`] therefore never recommends
//!   leaf-set eviction.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use concilium_types::{Id, SimDuration, SimTime};

/// What to do about a peer, in increasing order of severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Sanction {
    /// No verified accusations: treat normally.
    None,
    /// Verified accusations exist: do not route sensitive traffic through
    /// the peer, treat its advertisements with extra suspicion.
    ExtraSuspicion,
    /// The accusation rate crossed the universal-blacklist threshold: do
    /// not add the peer to routing tables. (Existing leaf-set entries are
    /// *not* evicted — see the module docs on inconsistent routing.)
    Blacklist,
}

/// Policy knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Accusations per `rate_window` that trigger universal blacklisting
    /// ("a network can mandate that a node be universally blacklisted if
    /// it receives accusations at a certain rate").
    pub blacklist_rate: usize,
    /// The window over which the rate is measured.
    pub rate_window: SimDuration,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig { blacklist_rate: 3, rate_window: SimDuration::from_mins(60) }
    }
}

/// Tracks verified accusations per peer and derives sanctions.
#[derive(Clone, Debug, Default)]
pub struct PolicyEngine {
    config: PolicyConfig,
    /// Verified-accusation timestamps per accused peer, sorted.
    accusations: HashMap<Id, Vec<SimTime>>,
}

impl PolicyEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: PolicyConfig) -> Self {
        PolicyEngine { config, accusations: HashMap::new() }
    }

    /// Records a *verified* accusation against `peer` observed at `at`.
    /// Callers must have run [`Accusation::verify`] first — the engine
    /// trusts its input.
    ///
    /// [`Accusation::verify`]: crate::Accusation::verify
    pub fn record_accusation(&mut self, peer: Id, at: SimTime) {
        let v = self.accusations.entry(peer).or_default();
        let pos = v.partition_point(|&t| t <= at);
        v.insert(pos, at);
    }

    /// Number of accusations against `peer` within the rate window ending
    /// at `now`.
    pub fn recent_accusations(&self, peer: Id, now: SimTime) -> usize {
        let Some(v) = self.accusations.get(&peer) else {
            return 0;
        };
        let lo = now.saturating_sub(self.config.rate_window);
        let start = v.partition_point(|&t| t < lo);
        let end = v.partition_point(|&t| t <= now);
        end - start
    }

    /// The sanction for `peer` at time `now`.
    pub fn sanction(&self, peer: Id, now: SimTime) -> Sanction {
        let recent = self.recent_accusations(peer, now);
        let total = self.accusations.get(&peer).map(Vec::len).unwrap_or(0);
        if recent >= self.config.blacklist_rate {
            Sanction::Blacklist
        } else if total > 0 {
            Sanction::ExtraSuspicion
        } else {
            Sanction::None
        }
    }

    /// Whether `peer` may be added to a *new* routing table at `now`
    /// ("nodes would check the accusation repository before agreeing to
    /// peer with a new host").
    pub fn may_peer_with(&self, peer: Id, now: SimTime) -> bool {
        self.sanction(peer, now) != Sanction::Blacklist
    }

    /// Leaf-set eviction is never allowed, regardless of sanctions —
    /// local eviction causes inconsistent routing in services layered on
    /// the overlay (§3.7, citing Castro's DSN'04 analysis).
    pub fn may_evict_from_leaf_set(&self, _peer: Id, _now: SimTime) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::from_secs(mins * 60)
    }

    #[test]
    fn unaccused_peers_are_clean() {
        let engine = PolicyEngine::new(PolicyConfig::default());
        assert_eq!(engine.sanction(Id::from_u64(1), t(10)), Sanction::None);
        assert!(engine.may_peer_with(Id::from_u64(1), t(10)));
    }

    #[test]
    fn accusations_escalate_to_suspicion_then_blacklist() {
        let mut engine = PolicyEngine::new(PolicyConfig::default());
        let peer = Id::from_u64(2);
        engine.record_accusation(peer, t(10));
        assert_eq!(engine.sanction(peer, t(11)), Sanction::ExtraSuspicion);
        assert!(engine.may_peer_with(peer, t(11)));

        engine.record_accusation(peer, t(20));
        engine.record_accusation(peer, t(30));
        assert_eq!(engine.sanction(peer, t(31)), Sanction::Blacklist);
        assert!(!engine.may_peer_with(peer, t(31)));
    }

    #[test]
    fn blacklist_decays_with_the_rate_window() {
        let mut engine = PolicyEngine::new(PolicyConfig::default());
        let peer = Id::from_u64(3);
        for m in [10, 20, 30] {
            engine.record_accusation(peer, t(m));
        }
        assert_eq!(engine.sanction(peer, t(31)), Sanction::Blacklist);
        // 90 minutes later only stale accusations remain: suspicion, not
        // blacklist.
        assert_eq!(engine.sanction(peer, t(120)), Sanction::ExtraSuspicion);
        assert!(engine.may_peer_with(peer, t(120)));
    }

    #[test]
    fn out_of_order_recording_is_handled() {
        let mut engine = PolicyEngine::new(PolicyConfig::default());
        let peer = Id::from_u64(4);
        engine.record_accusation(peer, t(30));
        engine.record_accusation(peer, t(10));
        engine.record_accusation(peer, t(20));
        assert_eq!(engine.recent_accusations(peer, t(35)), 3);
        assert_eq!(engine.recent_accusations(peer, t(15)), 1);
    }

    #[test]
    fn leaf_set_eviction_is_never_recommended() {
        let mut engine = PolicyEngine::new(PolicyConfig::default());
        let peer = Id::from_u64(5);
        for m in 0..10 {
            engine.record_accusation(peer, t(m));
        }
        assert_eq!(engine.sanction(peer, t(10)), Sanction::Blacklist);
        assert!(!engine.may_evict_from_leaf_set(peer, t(10)));
    }

    #[test]
    fn sanction_ordering() {
        assert!(Sanction::None < Sanction::ExtraSuspicion);
        assert!(Sanction::ExtraSuspicion < Sanction::Blacklist);
    }
}
