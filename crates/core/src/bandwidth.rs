//! The §4.4 bandwidth model.
//!
//! Concilium's two overheads are (1) exchanging signed, timestamped
//! routing state and (2) tomographic probing. The paper's accounting:
//!
//! * local routing state references μ_φ + 16 peers;
//! * each entry is a 16-byte identifier plus a 4-byte freshness timestamp,
//!   which together with a PSS-R (1024-bit) signature consume 144 bytes;
//! * each entry's path probe summary takes 1 byte;
//! * heavyweight probing of a tree costs
//!   `C(|leaves|, 2) · stripes_per_pair · stripe_size · pkt_size` outgoing
//!   bytes, with 100 stripes per ordered pair, 2 UDP probes per stripe,
//!   and 30-byte probes (28 bytes IP+UDP headers + 16-bit nonce).
//!
//! At 100,000 nodes this yields ≈77 routing entries, ≈11.5 kB advertised
//! tables, and ≈16.7 MiB per heavyweight tree probe — the numbers this
//! module's tests pin down.

use serde::{Deserialize, Serialize};

use concilium_overlay::occupancy::OccupancyModel;
use concilium_types::IdSpace;

/// Wire-size constants of the paper's §4.4 analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Node identifier bytes (paper: 16).
    pub id_bytes: u64,
    /// Freshness timestamp bytes (paper: 4).
    pub timestamp_bytes: u64,
    /// Identifier + timestamp + PSS-R signature, total (paper: 144).
    pub signed_entry_bytes: u64,
    /// Per-path probe summary (paper: 1 byte, "a few bits").
    pub path_summary_bytes: u64,
    /// Leaf-set size added to μ_φ (paper: 16).
    pub leaf_entries: u64,
    /// Stripes sent per ordered pair of peers (paper: 100).
    pub stripes_per_pair: u64,
    /// Probe packets per stripe (paper: 2).
    pub packets_per_stripe: u64,
    /// Bytes per probe packet (paper: 30 = 28 IP+UDP + 16-bit nonce).
    pub probe_packet_bytes: u64,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        BandwidthModel {
            id_bytes: 16,
            timestamp_bytes: 4,
            signed_entry_bytes: 144,
            path_summary_bytes: 1,
            leaf_entries: 16,
            stripes_per_pair: 100,
            packets_per_stripe: 2,
            probe_packet_bytes: 30,
        }
    }
}

impl BandwidthModel {
    /// Expected routing-state entries in an overlay of `n` nodes:
    /// μ_φ + the leaf-set size.
    pub fn expected_entries(&self, n: usize) -> f64 {
        OccupancyModel::new(IdSpace::DEFAULT, n).mean_occupied() + self.leaf_entries as f64
    }

    /// Bytes to advertise a routing table with `entries` entries
    /// (signed entries plus per-path probe summaries).
    pub fn routing_state_bytes(&self, entries: u64) -> u64 {
        entries * (self.signed_entry_bytes + self.path_summary_bytes)
    }

    /// Bytes to advertise the expected routing table in an `n`-node
    /// overlay.
    pub fn expected_routing_state_bytes(&self, n: usize) -> f64 {
        self.expected_entries(n)
            * (self.signed_entry_bytes + self.path_summary_bytes) as f64
    }

    /// Outgoing bytes for one heavyweight striped probe of a tree with
    /// `leaves` leaves: `C(leaves, 2) · stripes · packets · packet bytes`.
    pub fn heavyweight_probe_bytes(&self, leaves: u64) -> u64 {
        let pairs = leaves * leaves.saturating_sub(1) / 2;
        pairs * self.stripes_per_pair * self.packets_per_stripe * self.probe_packet_bytes
    }

    /// Lightweight probing is free: it reuses the availability probes
    /// hosts already send (§4.4 "no additional bandwidth"). Returned for
    /// uniformity of reporting.
    pub fn lightweight_probe_bytes(&self) -> u64 {
        0
    }

    /// §3.7 consolidated probing: `group_size` co-located hosts take turns
    /// probing their collective forest, so each host's *amortised* cost of
    /// one heavyweight probe round is the full cost divided by the group
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn consolidated_probe_bytes_per_host(&self, leaves: u64, group_size: u64) -> u64 {
        assert!(group_size > 0, "group size must be positive");
        self.heavyweight_probe_bytes(leaves) / group_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = 1024.0 * 1024.0;

    #[test]
    fn hundred_k_overlay_has_77_entries() {
        let m = BandwidthModel::default();
        let entries = m.expected_entries(100_000);
        assert!(
            (entries - 77.0).abs() < 2.0,
            "expected ≈77 entries, got {entries}"
        );
    }

    #[test]
    fn advertised_table_is_about_11_5_kb() {
        // "an entire advertised routing table is about 11.5 kilobytes"
        let m = BandwidthModel::default();
        let bytes = m.expected_routing_state_bytes(100_000);
        assert!(
            (10_500.0..12_500.0).contains(&bytes),
            "table size {bytes} B"
        );
    }

    #[test]
    fn heavyweight_probe_is_about_16_7_mib() {
        // "Probing an entire tree will require 16.7 MB of outgoing network
        // traffic" (77 peers, 100 stripes/pair, 2 packets, 30 bytes).
        let m = BandwidthModel::default();
        let bytes = m.heavyweight_probe_bytes(77) as f64;
        assert!(
            (bytes / MIB - 16.7).abs() < 0.2,
            "heavyweight probing {} MiB",
            bytes / MIB
        );
    }

    #[test]
    fn costs_scale_with_tree_size() {
        let m = BandwidthModel::default();
        assert!(m.heavyweight_probe_bytes(20) < m.heavyweight_probe_bytes(77));
        assert_eq!(m.heavyweight_probe_bytes(0), 0);
        assert_eq!(m.heavyweight_probe_bytes(1), 0);
        assert_eq!(m.lightweight_probe_bytes(), 0);
    }

    #[test]
    fn consolidation_amortises_cost() {
        let m = BandwidthModel::default();
        let solo = m.heavyweight_probe_bytes(77);
        assert_eq!(m.consolidated_probe_bytes_per_host(77, 1), solo);
        assert_eq!(m.consolidated_probe_bytes_per_host(77, 4), solo / 4);
    }

    #[test]
    fn entry_arithmetic() {
        let m = BandwidthModel::default();
        assert_eq!(m.routing_state_bytes(77), 77 * 145);
        // id + timestamp fit inside the signed entry.
        assert!(m.id_bytes + m.timestamp_bytes <= m.signed_entry_bytes);
    }
}
