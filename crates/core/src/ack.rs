//! Acknowledgment schemes (§3.4, §3.7).
//!
//! A fault judgment is based on acknowledgment of an individual message.
//! When two peers exchange many packets, "it may be useful for a single
//! acknowledgment to cover multiple messages. The acknowledgment could
//! indicate loss rates in several ways, e.g., through simple counters
//! indicating how many packets arrived, or packet hashes identifying the
//! specific packets which were received."
//!
//! Three signed schemes are provided:
//!
//! * [`AckBody::Single`] — the baseline per-message acknowledgment;
//! * [`AckBody::Counter`] — "k of your last n messages arrived";
//! * [`AckBody::Hashes`] — digests of the specific messages received,
//!   letting the sender identify exactly which messages were dropped.
//!
//! [`RetransmitQueue`] adds the recovery discipline on top: a steward
//! retransmits an unacknowledged message on the backoff schedule of a
//! [`RetryPolicy`] and only treats it as *dropped* — eligible for
//! judgment — once every attempt has gone unanswered. Without it, a
//! single lost acknowledgment is indistinguishable from a dropped
//! message and honest forwarders collect guilty verdicts.

use serde::{Deserialize, Serialize};

use concilium_crypto::{sha256, Digest, KeyPair, PublicKey, Signable, Signature};
use concilium_types::{Id, MsgId, SimDuration, SimTime};

use crate::retry::RetryPolicy;

/// The payload of an acknowledgment.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AckBody {
    /// One message acknowledged.
    Single(MsgId),
    /// `received` of the `window` most recent messages arrived.
    Counter {
        /// Messages received.
        received: u64,
        /// Messages the window covers.
        window: u64,
    },
    /// Digests of the specific messages received.
    Hashes(Vec<Digest>),
}

impl AckBody {
    /// Builds a hash acknowledgment from message payloads.
    pub fn hashes_of(payloads: &[&[u8]]) -> AckBody {
        AckBody::Hashes(payloads.iter().map(|p| sha256(p)).collect())
    }
}

/// A signed acknowledgment from a destination back to a sender.
///
/// # Examples
///
/// ```
/// use concilium::ack::{Ack, AckBody};
/// use concilium_crypto::KeyPair;
/// use concilium_types::{Id, MsgId, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = KeyPair::generate(&mut rng);
/// let ack = Ack::issue(
///     Id::from_u64(9),
///     Id::from_u64(1),
///     AckBody::Single(MsgId(4)),
///     SimTime::from_secs(10),
///     &z,
///     &mut rng,
/// );
/// assert!(ack.verify(&z.public()));
/// assert!(ack.covers(MsgId(4), None));
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Ack {
    from: Id,
    to: Id,
    body: AckBody,
    time: SimTime,
    sig: Signature,
}

impl Ack {
    /// The destination signs an acknowledgment to the sender.
    pub fn issue<R: rand::Rng + ?Sized>(
        from: Id,
        to: Id,
        body: AckBody,
        time: SimTime,
        from_keys: &KeyPair,
        rng: &mut R,
    ) -> Self {
        let mut a = Ack { from, to, body, time, sig: Signature::dummy() };
        a.sig = from_keys.sign(&a.to_signable_vec(), rng);
        a
    }

    /// The acknowledging host (the message destination).
    pub fn from(&self) -> Id {
        self.from
    }

    /// The host being acknowledged (the message sender / steward).
    pub fn to(&self) -> Id {
        self.to
    }

    /// The acknowledgment payload.
    pub fn body(&self) -> &AckBody {
        &self.body
    }

    /// Verifies the destination's signature.
    pub fn verify(&self, from_key: &PublicKey) -> bool {
        from_key.verify(&self.to_signable_vec(), &self.sig)
    }

    /// Whether this acknowledgment attests that a specific message
    /// arrived. For hash acks, pass the message payload; counter acks can
    /// never attest a specific message (they only carry a rate).
    pub fn covers(&self, msg: MsgId, payload: Option<&[u8]>) -> bool {
        match &self.body {
            AckBody::Single(m) => *m == msg,
            AckBody::Counter { .. } => false,
            AckBody::Hashes(digests) => match payload {
                Some(p) => digests.contains(&sha256(p)),
                None => false,
            },
        }
    }

    /// The loss rate implied by the acknowledgment, if it carries one.
    pub fn implied_loss_rate(&self) -> Option<f64> {
        match &self.body {
            AckBody::Counter { received, window } if *window > 0 => {
                Some(1.0 - *received as f64 / *window as f64)
            }
            _ => None,
        }
    }
}

/// A message the steward is still waiting on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingMessage {
    /// The unacknowledged message.
    pub msg: MsgId,
    /// Its destination (the host that should acknowledge).
    pub dest: Id,
    /// One-based number of the send attempt due (or made) at
    /// [`PendingMessage::next_send`].
    pub attempt: u32,
    /// When the next retransmission is due — or, once attempts are
    /// exhausted, when the final timeout expires.
    pub next_send: SimTime,
}

/// Tracks in-flight messages and drives retransmit-before-judging.
///
/// The steward registers each send ([`RetransmitQueue::on_send`]),
/// removes entries as acknowledgments arrive
/// ([`RetransmitQueue::on_ack`]), retransmits whatever
/// [`RetransmitQueue::due`] hands back, and judges only the messages
/// [`RetransmitQueue::expired`] declares dropped: every attempt was made
/// and the last one's timeout has passed. With ack-transport loss `p`
/// and `k` attempts, the residual false-drop probability is `p^k`.
///
/// # Examples
///
/// ```
/// use concilium::ack::RetransmitQueue;
/// use concilium::retry::RetryPolicy;
/// use concilium_types::{Id, MsgId, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let policy = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
/// let mut q = RetransmitQueue::new(policy);
/// q.on_send(MsgId(1), Id::from_u64(9), SimTime::from_secs(10), &mut rng);
/// // No ack within the 500 ms timeout: the second attempt is due.
/// let due = q.due(SimTime::from_secs(11));
/// assert_eq!(due.len(), 1);
/// assert_eq!(due[0].attempt, 2);
/// ```
#[derive(Clone, Debug)]
pub struct RetransmitQueue {
    policy: RetryPolicy,
    pending: Vec<PendingMessage>,
    /// Remaining scheduled attempt times per pending entry (parallel to
    /// `pending`, earliest first, the entry's `next_send` already popped).
    schedules: Vec<Vec<SimTime>>,
    /// Exact minimum of `next_send` over `pending` (`None` when empty),
    /// maintained on every mutation. Event-driven simulations call
    /// [`RetransmitQueue::due`], [`RetransmitQueue::expired`], and
    /// [`RetransmitQueue::next_event_time`] after *every* popped event;
    /// the cache turns those three full scans into O(1) comparisons
    /// whenever nothing is due yet, which is almost always.
    earliest: Option<SimTime>,
    attempts_fired: u64,
    backoff_total: SimDuration,
}

impl RetransmitQueue {
    /// An empty queue driven by `policy`.
    pub fn new(policy: RetryPolicy) -> Self {
        RetransmitQueue {
            policy,
            pending: Vec::new(),
            schedules: Vec::new(),
            earliest: None,
            attempts_fired: 0,
            backoff_total: SimDuration::ZERO,
        }
    }

    /// Recomputes the cached minimum after a mutation that may have
    /// removed or advanced the earliest entry.
    fn refresh_earliest(&mut self) {
        self.earliest = self.pending.iter().map(|p| p.next_send).min();
    }

    /// Registers a freshly sent message. The whole attempt schedule is
    /// drawn from `rng` up front, so event-driven and poll-driven callers
    /// consume identical RNG state.
    pub fn on_send<R: rand::Rng + ?Sized>(
        &mut self,
        msg: MsgId,
        dest: Id,
        sent_at: SimTime,
        rng: &mut R,
    ) {
        let mut times = self.policy.attempt_times(sent_at, rng);
        // The first attempt is the send that just happened; what remains
        // is the retransmission schedule plus the final timeout.
        times.remove(0);
        let timeout = self.policy.backoff_delay(self.policy.max_attempts.saturating_sub(1), rng);
        let last = *times.last().unwrap_or(&sent_at);
        times.push(last + timeout);
        let next_send = times.remove(0);
        self.earliest = Some(self.earliest.map_or(next_send, |e| e.min(next_send)));
        self.pending.push(PendingMessage { msg, dest, attempt: 2, next_send });
        self.schedules.push(times);
    }

    /// Processes an acknowledgment: every pending message from `ack`'s
    /// issuer that the ack covers is settled and removed. Pass the
    /// message payload when hash acknowledgments are in use. Returns how
    /// many messages the ack settled.
    pub fn on_ack(&mut self, ack: &Ack, payload: Option<&[u8]>) -> usize {
        let mut settled = 0;
        let mut i = 0;
        while i < self.pending.len() {
            let p = &self.pending[i];
            if p.dest == ack.from() && ack.covers(p.msg, payload) {
                self.pending.swap_remove(i);
                self.schedules.swap_remove(i);
                settled += 1;
            } else {
                i += 1;
            }
        }
        if settled > 0 {
            self.refresh_earliest();
        }
        settled
    }

    /// Messages whose retransmission is due at `now`. Each returned entry
    /// has already been advanced to its next attempt; the caller's only
    /// job is to resend. Entries on their final timeout are *not*
    /// returned here — they surface via [`RetransmitQueue::expired`].
    pub fn due(&mut self, now: SimTime) -> Vec<PendingMessage> {
        let mut out = Vec::new();
        // An entry can fire only if its `next_send` has passed, so the
        // cached minimum rules out the whole scan in one comparison.
        if self.earliest.is_none_or(|e| e > now) {
            return out;
        }
        for (p, schedule) in self.pending.iter_mut().zip(&mut self.schedules) {
            while p.attempt <= self.policy.max_attempts && p.next_send <= now {
                out.push(p.clone());
                let fired_at = p.next_send;
                p.attempt += 1;
                p.next_send = schedule.remove(0);
                self.attempts_fired += 1;
                self.backoff_total = self.backoff_total + (p.next_send - fired_at);
            }
        }
        self.refresh_earliest();
        out
    }

    /// Messages whose every attempt went unacknowledged and whose final
    /// timeout has passed: removed from the queue and handed to the
    /// caller for judgment.
    pub fn expired(&mut self, now: SimTime) -> Vec<PendingMessage> {
        let mut out = Vec::new();
        // Expiry requires a passed `next_send` (the final timeout), so the
        // cached minimum short-circuits the scan exactly like `due`.
        if self.earliest.is_none_or(|e| e > now) {
            return out;
        }
        let mut i = 0;
        while i < self.pending.len() {
            let p = &self.pending[i];
            if p.attempt > self.policy.max_attempts && p.next_send <= now {
                out.push(self.pending.swap_remove(i));
                self.schedules.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if !out.is_empty() {
            self.refresh_earliest();
        }
        out
    }

    /// Messages still awaiting acknowledgment.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Read-only view of every in-flight entry, for invariant checkers
    /// that audit the bookkeeping from outside. Order is not meaningful
    /// (settlement uses `swap_remove`).
    pub fn pending_messages(&self) -> &[PendingMessage] {
        &self.pending
    }

    /// The earliest upcoming retransmission or final timeout across all
    /// pending entries — `None` when nothing is in flight. Event-driven
    /// callers schedule their next poll here instead of ticking.
    pub fn next_event_time(&self) -> Option<SimTime> {
        debug_assert_eq!(self.earliest, self.pending.iter().map(|p| p.next_send).min());
        self.earliest
    }

    /// Retransmission attempts handed out by [`RetransmitQueue::due`]
    /// over the queue's lifetime. Virtual-time bookkeeping, safe for
    /// deterministic per-episode metrics.
    pub fn attempts_fired(&self) -> u64 {
        self.attempts_fired
    }

    /// Total backoff scheduled after fired attempts: the sum, over every
    /// attempt [`RetransmitQueue::due`] returned, of the delay until that
    /// entry's next attempt (or final timeout).
    pub fn backoff_total(&self) -> SimDuration {
        self.backoff_total
    }
}

impl Signable for Ack {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"ack");
        out.extend_from_slice(self.from.as_bytes());
        out.extend_from_slice(self.to.as_bytes());
        out.extend_from_slice(&self.time.as_micros().to_be_bytes());
        match &self.body {
            AckBody::Single(m) => {
                out.push(0);
                out.extend_from_slice(&m.0.to_be_bytes());
            }
            AckBody::Counter { received, window } => {
                out.push(1);
                out.extend_from_slice(&received.to_be_bytes());
                out.extend_from_slice(&window.to_be_bytes());
            }
            AckBody::Hashes(digests) => {
                out.push(2);
                out.extend_from_slice(&(digests.len() as u64).to_be_bytes());
                for d in digests {
                    out.extend_from_slice(d.as_bytes());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> (KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(141);
        (KeyPair::generate(&mut rng), rng)
    }

    #[test]
    fn single_ack_round_trip() {
        let (z, mut rng) = keys();
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::Single(MsgId(4)),
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        assert!(ack.verify(&z.public()));
        assert!(ack.covers(MsgId(4), None));
        assert!(!ack.covers(MsgId(5), None));
        assert_eq!(ack.implied_loss_rate(), None);
    }

    #[test]
    fn counter_ack_carries_loss_rate() {
        let (z, mut rng) = keys();
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::Counter { received: 93, window: 100 },
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        assert!(ack.verify(&z.public()));
        assert!((ack.implied_loss_rate().unwrap() - 0.07).abs() < 1e-12);
        assert!(!ack.covers(MsgId(1), None), "counters cannot attest specifics");
    }

    #[test]
    fn hash_ack_identifies_specific_messages() {
        let (z, mut rng) = keys();
        let received: [&[u8]; 2] = [b"payload-1", b"payload-3"];
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::hashes_of(&received),
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        assert!(ack.verify(&z.public()));
        assert!(ack.covers(MsgId(1), Some(b"payload-1")));
        assert!(ack.covers(MsgId(3), Some(b"payload-3")));
        assert!(!ack.covers(MsgId(2), Some(b"payload-2")));
        assert!(!ack.covers(MsgId(1), None));
    }

    #[test]
    fn tampered_ack_rejected() {
        let (z, mut rng) = keys();
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::Counter { received: 93, window: 100 },
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        // An attacker inflating the received counter breaks the signature.
        let mut forged = ack.clone();
        forged.body = AckBody::Counter { received: 100, window: 100 };
        assert!(!forged.verify(&z.public()));
        // Redirecting it to a different steward also breaks it.
        let mut redirected = ack;
        redirected.to = Id::from_u64(2);
        assert!(!redirected.verify(&z.public()));
    }

    #[test]
    fn retransmit_queue_settles_on_ack() {
        let (z, mut rng) = keys();
        let mut q = RetransmitQueue::new(crate::retry::RetryPolicy::default());
        let dest = Id::from_u64(9);
        q.on_send(MsgId(1), dest, SimTime::from_secs(10), &mut rng);
        q.on_send(MsgId(2), dest, SimTime::from_secs(11), &mut rng);
        assert_eq!(q.pending(), 2);
        let ack = Ack::issue(
            dest,
            Id::from_u64(1),
            AckBody::Single(MsgId(1)),
            SimTime::from_secs(12),
            &z,
            &mut rng,
        );
        assert_eq!(q.on_ack(&ack, None), 1);
        assert_eq!(q.pending(), 1);
        // The settled message is never retransmitted or expired.
        let late = SimTime::from_secs(1_000);
        assert!(q.due(late).iter().all(|p| p.msg == MsgId(2)));
        assert!(q.expired(late).iter().all(|p| p.msg == MsgId(2)));
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn retransmit_queue_walks_the_backoff_schedule() {
        let (_, mut rng) = keys();
        let policy = crate::retry::RetryPolicy {
            jitter: 0.0,
            base_delay: concilium_types::SimDuration::from_secs(1),
            multiplier: 2.0,
            max_attempts: 3,
            ..Default::default()
        };
        let mut q = RetransmitQueue::new(policy);
        q.on_send(MsgId(7), Id::from_u64(9), SimTime::from_secs(100), &mut rng);
        // Retries at +1 s and +3 s, final timeout at +3 s + 4 s = +7 s.
        assert!(q.due(SimTime::from_secs(100)).is_empty());
        let first = q.due(SimTime::from_secs(101));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].attempt, 2);
        let second = q.due(SimTime::from_secs(103));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].attempt, 3);
        assert!(q.due(SimTime::from_secs(1_000)).is_empty(), "attempts exhausted");
        assert!(q.expired(SimTime::from_secs(106)).is_empty(), "timeout still running");
        let dropped = q.expired(SimTime::from_secs(107));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].msg, MsgId(7));
        assert_eq!(q.pending(), 0);
        // Two attempts fired; the backoff after them was (103-101) + (107-103).
        assert_eq!(q.attempts_fired(), 2);
        assert_eq!(q.backoff_total(), concilium_types::SimDuration::from_secs(6));
    }

    #[test]
    fn disabled_policy_never_retransmits_but_still_times_out() {
        let (_, mut rng) = keys();
        let mut q = RetransmitQueue::new(crate::retry::RetryPolicy::disabled());
        q.on_send(MsgId(3), Id::from_u64(9), SimTime::from_secs(50), &mut rng);
        assert!(q.due(SimTime::from_secs(1_000)).is_empty());
        assert_eq!(q.expired(SimTime::from_secs(1_000)).len(), 1);
    }

    #[test]
    fn hash_acks_settle_pending_messages_by_payload() {
        let (z, mut rng) = keys();
        let mut q = RetransmitQueue::new(crate::retry::RetryPolicy::default());
        let dest = Id::from_u64(9);
        q.on_send(MsgId(1), dest, SimTime::from_secs(10), &mut rng);
        let ack = Ack::issue(
            dest,
            Id::from_u64(1),
            AckBody::hashes_of(&[b"payload-1"]),
            SimTime::from_secs(12),
            &z,
            &mut rng,
        );
        assert_eq!(q.on_ack(&ack, Some(b"payload-2")), 0, "wrong payload");
        assert_eq!(q.on_ack(&ack, Some(b"payload-1")), 1);
    }

    #[test]
    fn ack_racing_a_retransmit_settles_exactly_once() {
        // The ack for attempt 1 arrives *after* the retransmission of
        // attempt 2 has already been handed out by `due`. The entry must
        // settle exactly once, never reappear in `due`, and never be
        // judged via `expired`.
        let (z, mut rng) = keys();
        let policy = crate::retry::RetryPolicy {
            jitter: 0.0,
            base_delay: concilium_types::SimDuration::from_secs(1),
            multiplier: 2.0,
            max_attempts: 3,
            ..Default::default()
        };
        let mut q = RetransmitQueue::new(policy);
        let dest = Id::from_u64(9);
        q.on_send(MsgId(7), dest, SimTime::from_secs(100), &mut rng);
        // Retransmit fires at +1 s...
        let due = q.due(SimTime::from_secs(101));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].attempt, 2);
        // ...and the (slow) ack for the original send lands just after.
        let ack = Ack::issue(
            dest,
            Id::from_u64(1),
            AckBody::Single(MsgId(7)),
            SimTime::from_secs(101),
            &z,
            &mut rng,
        );
        assert_eq!(q.on_ack(&ack, None), 1);
        assert_eq!(q.pending(), 0);
        assert!(q.pending_messages().is_empty());
        assert_eq!(q.next_event_time(), None);
        // A duplicate ack (the retransmit was also answered) is a no-op.
        assert_eq!(q.on_ack(&ack, None), 0, "nothing left to settle twice");
        let late = SimTime::from_secs(1_000);
        assert!(q.due(late).is_empty());
        assert!(q.expired(late).is_empty(), "a settled message is never judged");
    }

    #[test]
    fn inspection_accessors_expose_inflight_state() {
        let (_, mut rng) = keys();
        let policy = crate::retry::RetryPolicy {
            jitter: 0.0,
            base_delay: concilium_types::SimDuration::from_secs(1),
            multiplier: 2.0,
            max_attempts: 3,
            ..Default::default()
        };
        let mut q = RetransmitQueue::new(policy);
        assert_eq!(q.next_event_time(), None);
        q.on_send(MsgId(1), Id::from_u64(9), SimTime::from_secs(10), &mut rng);
        q.on_send(MsgId(2), Id::from_u64(8), SimTime::from_secs(20), &mut rng);
        let inflight = q.pending_messages();
        assert_eq!(inflight.len(), 2);
        assert!(inflight.iter().any(|p| p.msg == MsgId(1) && p.dest == Id::from_u64(9)));
        // Earliest retransmission across both entries: msg 1 at +1 s.
        assert_eq!(q.next_event_time(), Some(SimTime::from_secs(11)));
        let _ = q.due(SimTime::from_secs(11));
        // Msg 1 advanced to its next attempt at +3 s; msg 2 still at +1 s.
        assert_eq!(q.next_event_time(), Some(SimTime::from_secs(13)));
    }

    #[test]
    fn degenerate_counter_has_no_rate() {
        let (z, mut rng) = keys();
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::Counter { received: 0, window: 0 },
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        assert_eq!(ack.implied_loss_rate(), None);
    }
}
