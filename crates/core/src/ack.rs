//! Acknowledgment schemes (§3.4, §3.7).
//!
//! A fault judgment is based on acknowledgment of an individual message.
//! When two peers exchange many packets, "it may be useful for a single
//! acknowledgment to cover multiple messages. The acknowledgment could
//! indicate loss rates in several ways, e.g., through simple counters
//! indicating how many packets arrived, or packet hashes identifying the
//! specific packets which were received."
//!
//! Three signed schemes are provided:
//!
//! * [`AckBody::Single`] — the baseline per-message acknowledgment;
//! * [`AckBody::Counter`] — "k of your last n messages arrived";
//! * [`AckBody::Hashes`] — digests of the specific messages received,
//!   letting the sender identify exactly which messages were dropped.

use serde::{Deserialize, Serialize};

use concilium_crypto::{sha256, Digest, KeyPair, PublicKey, Signable, Signature};
use concilium_types::{Id, MsgId, SimTime};

/// The payload of an acknowledgment.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AckBody {
    /// One message acknowledged.
    Single(MsgId),
    /// `received` of the `window` most recent messages arrived.
    Counter {
        /// Messages received.
        received: u64,
        /// Messages the window covers.
        window: u64,
    },
    /// Digests of the specific messages received.
    Hashes(Vec<Digest>),
}

impl AckBody {
    /// Builds a hash acknowledgment from message payloads.
    pub fn hashes_of(payloads: &[&[u8]]) -> AckBody {
        AckBody::Hashes(payloads.iter().map(|p| sha256(p)).collect())
    }
}

/// A signed acknowledgment from a destination back to a sender.
///
/// # Examples
///
/// ```
/// use concilium::ack::{Ack, AckBody};
/// use concilium_crypto::KeyPair;
/// use concilium_types::{Id, MsgId, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = KeyPair::generate(&mut rng);
/// let ack = Ack::issue(
///     Id::from_u64(9),
///     Id::from_u64(1),
///     AckBody::Single(MsgId(4)),
///     SimTime::from_secs(10),
///     &z,
///     &mut rng,
/// );
/// assert!(ack.verify(&z.public()));
/// assert!(ack.covers(MsgId(4), None));
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Ack {
    from: Id,
    to: Id,
    body: AckBody,
    time: SimTime,
    sig: Signature,
}

impl Ack {
    /// The destination signs an acknowledgment to the sender.
    pub fn issue<R: rand::Rng + ?Sized>(
        from: Id,
        to: Id,
        body: AckBody,
        time: SimTime,
        from_keys: &KeyPair,
        rng: &mut R,
    ) -> Self {
        let mut a = Ack { from, to, body, time, sig: Signature::dummy() };
        a.sig = from_keys.sign(&a.to_signable_vec(), rng);
        a
    }

    /// The acknowledging host (the message destination).
    pub fn from(&self) -> Id {
        self.from
    }

    /// The host being acknowledged (the message sender / steward).
    pub fn to(&self) -> Id {
        self.to
    }

    /// The acknowledgment payload.
    pub fn body(&self) -> &AckBody {
        &self.body
    }

    /// Verifies the destination's signature.
    pub fn verify(&self, from_key: &PublicKey) -> bool {
        from_key.verify(&self.to_signable_vec(), &self.sig)
    }

    /// Whether this acknowledgment attests that a specific message
    /// arrived. For hash acks, pass the message payload; counter acks can
    /// never attest a specific message (they only carry a rate).
    pub fn covers(&self, msg: MsgId, payload: Option<&[u8]>) -> bool {
        match &self.body {
            AckBody::Single(m) => *m == msg,
            AckBody::Counter { .. } => false,
            AckBody::Hashes(digests) => match payload {
                Some(p) => digests.contains(&sha256(p)),
                None => false,
            },
        }
    }

    /// The loss rate implied by the acknowledgment, if it carries one.
    pub fn implied_loss_rate(&self) -> Option<f64> {
        match &self.body {
            AckBody::Counter { received, window } if *window > 0 => {
                Some(1.0 - *received as f64 / *window as f64)
            }
            _ => None,
        }
    }
}

impl Signable for Ack {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"ack");
        out.extend_from_slice(self.from.as_bytes());
        out.extend_from_slice(self.to.as_bytes());
        out.extend_from_slice(&self.time.as_micros().to_be_bytes());
        match &self.body {
            AckBody::Single(m) => {
                out.push(0);
                out.extend_from_slice(&m.0.to_be_bytes());
            }
            AckBody::Counter { received, window } => {
                out.push(1);
                out.extend_from_slice(&received.to_be_bytes());
                out.extend_from_slice(&window.to_be_bytes());
            }
            AckBody::Hashes(digests) => {
                out.push(2);
                out.extend_from_slice(&(digests.len() as u64).to_be_bytes());
                for d in digests {
                    out.extend_from_slice(d.as_bytes());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> (KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(141);
        (KeyPair::generate(&mut rng), rng)
    }

    #[test]
    fn single_ack_round_trip() {
        let (z, mut rng) = keys();
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::Single(MsgId(4)),
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        assert!(ack.verify(&z.public()));
        assert!(ack.covers(MsgId(4), None));
        assert!(!ack.covers(MsgId(5), None));
        assert_eq!(ack.implied_loss_rate(), None);
    }

    #[test]
    fn counter_ack_carries_loss_rate() {
        let (z, mut rng) = keys();
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::Counter { received: 93, window: 100 },
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        assert!(ack.verify(&z.public()));
        assert!((ack.implied_loss_rate().unwrap() - 0.07).abs() < 1e-12);
        assert!(!ack.covers(MsgId(1), None), "counters cannot attest specifics");
    }

    #[test]
    fn hash_ack_identifies_specific_messages() {
        let (z, mut rng) = keys();
        let received: [&[u8]; 2] = [b"payload-1", b"payload-3"];
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::hashes_of(&received),
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        assert!(ack.verify(&z.public()));
        assert!(ack.covers(MsgId(1), Some(b"payload-1")));
        assert!(ack.covers(MsgId(3), Some(b"payload-3")));
        assert!(!ack.covers(MsgId(2), Some(b"payload-2")));
        assert!(!ack.covers(MsgId(1), None));
    }

    #[test]
    fn tampered_ack_rejected() {
        let (z, mut rng) = keys();
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::Counter { received: 93, window: 100 },
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        // An attacker inflating the received counter breaks the signature.
        let mut forged = ack.clone();
        forged.body = AckBody::Counter { received: 100, window: 100 };
        assert!(!forged.verify(&z.public()));
        // Redirecting it to a different steward also breaks it.
        let mut redirected = ack;
        redirected.to = Id::from_u64(2);
        assert!(!redirected.verify(&z.public()));
    }

    #[test]
    fn degenerate_counter_has_no_rate() {
        let (z, mut rng) = keys();
        let ack = Ack::issue(
            Id::from_u64(9),
            Id::from_u64(1),
            AckBody::Counter { received: 0, window: 0 },
            SimTime::from_secs(10),
            &z,
            &mut rng,
        );
        assert_eq!(ack.implied_loss_rate(), None);
    }
}
