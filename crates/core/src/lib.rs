//! **Concilium** — collaborative diagnosis of broken overlay routes.
//!
//! A reproduction of Mickens & Noble, *"Concilium: Collaborative Diagnosis
//! of Broken Overlay Routes"* (DSN 2007). When an overlay message is
//! dropped, Concilium decides whether an intermediate overlay forwarder
//! misbehaved or an IP link was broken, by fusing:
//!
//! * application-level acknowledgments,
//! * peer-advertised (validated) routing state, and
//! * collaboratively collected tomographic link observations,
//!
//! into a fuzzy-logic *blame* value (Eqs. 2–3), thresholded into guilty /
//! innocent verdicts, accumulated over a sliding window, and escalated
//! into signed, self-verifying *fault accusations* stored in a DHT.
//! Incorrect accusations migrate downstream to the true culprit via
//! recursive stewardship and accusation revision.
//!
//! # Module map
//!
//! | paper section | module |
//! |---|---|
//! | §3.4 blame (Eqs. 2–3) | [`blame`] |
//! | §3.4 verdicts, sliding window, §4.3 error model | [`verdict`] |
//! | §3.6 forwarding commitments | [`commitment`] |
//! | §3.4 formal accusations (self-verifying) | [`accusation`] |
//! | §3.4 accusation DHT | [`dht`] |
//! | §3.5 recursive stewardship / revision | [`revision`] |
//! | §3.5 rebuttals | [`rebuttal`] |
//! | §3.6 reputation fallback | [`reputation`] |
//! | §3.1–3.2 validated routing advertisements | [`advertisement`] |
//! | §3.7 multi-message acknowledgments | [`ack`] |
//! | retransmit/backoff recovery layer | [`retry`] |
//! | §3.7 sanctioning policies | [`policy`] |
//! | §4.4 bandwidth model | [`bandwidth`] |
//! | per-node protocol state | [`node`] |
//!
//! # Examples
//!
//! ```
//! use concilium::blame::{blame_from_path_evidence, LinkEvidence};
//! use concilium_types::LinkId;
//!
//! // Two links on B→C; three peers probed link 1 (two saw it down).
//! let evidence = vec![
//!     LinkEvidence { link: LinkId(0), observations: vec![true] },
//!     LinkEvidence { link: LinkId(1), observations: vec![false, false, true] },
//! ];
//! let blame = blame_from_path_evidence(&evidence, 0.8);
//! // Link 1 is bad with confidence (0.8 + 0.8 + 0.2) / 3 = 0.6,
//! // so B is to blame with probability 1 − 0.6 = 0.4.
//! assert!((blame - 0.4).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accusation;
pub mod ack;
pub mod advertisement;
pub mod bandwidth;
pub mod blame;
pub mod commitment;
mod config;
pub mod dht;
pub mod node;
pub mod policy;
pub mod rebuttal;
pub mod reputation;
pub mod retry;
pub mod revision;
pub mod verdict;

pub use accusation::{Accusation, AccusationError, DropContext};
pub use commitment::ForwardingCommitment;
pub use config::ConciliumConfig;
pub use node::ConciliumNode;
pub use verdict::{Verdict, VerdictWindow};
