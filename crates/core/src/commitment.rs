//! Forwarding commitments (§3.6).
//!
//! Without commitments, A could accuse B of dropping a message A never
//! sent: other nodes would verify A's (genuine) tomographic data, derive
//! the same high blame, and convict an innocent B. A forwarding
//! commitment is B's signed statement that it agreed to forward a
//! specific message — B "can only be blamed for dropping messages that it
//! agreed to forward". Commitments are batchable and piggybacked on
//! availability-probe responses.

use serde::{Deserialize, Serialize};

use concilium_crypto::{KeyPair, PublicKey, Signable, Signature};
use concilium_types::{Id, MsgId, SimTime};

/// B's signed agreement to forward message `msg` from `src` toward `dest`.
///
/// # Examples
///
/// ```
/// use concilium::ForwardingCommitment;
/// use concilium_crypto::KeyPair;
/// use concilium_types::{Id, MsgId, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(6);
/// let b_keys = KeyPair::generate(&mut rng);
/// let c = ForwardingCommitment::issue(
///     MsgId(7),
///     Id::from_u64(1),          // A
///     Id::from_u64(2),          // B (the forwarder)
///     Id::from_u64(9),          // Z (final destination)
///     SimTime::from_secs(100),
///     &b_keys,
///     &mut rng,
/// );
/// assert!(c.verify(&b_keys.public()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ForwardingCommitment {
    msg: MsgId,
    src: Id,
    forwarder: Id,
    dest: Id,
    time: SimTime,
    sig: Signature,
}

impl ForwardingCommitment {
    /// The forwarder signs its willingness to forward.
    pub fn issue<R: rand::Rng + ?Sized>(
        msg: MsgId,
        src: Id,
        forwarder: Id,
        dest: Id,
        time: SimTime,
        forwarder_keys: &KeyPair,
        rng: &mut R,
    ) -> Self {
        let mut c =
            ForwardingCommitment { msg, src, forwarder, dest, time, sig: Signature::dummy() };
        c.sig = forwarder_keys.sign(&c.to_signable_vec(), rng);
        c
    }

    /// The committed message.
    pub fn msg(&self) -> MsgId {
        self.msg
    }

    /// The message's sender (the upstream peer).
    pub fn src(&self) -> Id {
        self.src
    }

    /// The committing forwarder.
    pub fn forwarder(&self) -> Id {
        self.forwarder
    }

    /// The message's final destination.
    pub fn dest(&self) -> Id {
        self.dest
    }

    /// When the commitment was signed.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Verifies the forwarder's signature.
    ///
    /// Commitments are re-checked by the judge and every consulted peer, so
    /// this goes through the thread-local verification memo; the outcome is
    /// identical to an uncached [`PublicKey::verify`].
    pub fn verify(&self, forwarder_key: &PublicKey) -> bool {
        concilium_crypto::verify_cached(forwarder_key, &self.to_signable_vec(), &self.sig)
    }
}

impl Signable for ForwardingCommitment {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"commit");
        out.extend_from_slice(&self.msg.0.to_be_bytes());
        out.extend_from_slice(self.src.as_bytes());
        out.extend_from_slice(self.forwarder.as_bytes());
        out.extend_from_slice(self.dest.as_bytes());
        out.extend_from_slice(&self.time.as_micros().to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn commitment(keys: &KeyPair, rng: &mut StdRng) -> ForwardingCommitment {
        ForwardingCommitment::issue(
            MsgId(1),
            Id::from_u64(10),
            Id::from_u64(20),
            Id::from_u64(30),
            SimTime::from_secs(5),
            keys,
            rng,
        )
    }

    #[test]
    fn issue_and_verify() {
        let mut rng = StdRng::seed_from_u64(61);
        let keys = KeyPair::generate(&mut rng);
        let c = commitment(&keys, &mut rng);
        assert!(c.verify(&keys.public()));
        assert_eq!(c.msg(), MsgId(1));
        assert_eq!(c.forwarder(), Id::from_u64(20));
    }

    #[test]
    fn retargeting_is_detected() {
        // A cannot reuse B's commitment for a different message or route.
        let mut rng = StdRng::seed_from_u64(62);
        let keys = KeyPair::generate(&mut rng);
        let c = commitment(&keys, &mut rng);
        let other_msg = ForwardingCommitment { msg: MsgId(2), ..c };
        assert!(!other_msg.verify(&keys.public()));
        let other_dest = ForwardingCommitment { dest: Id::from_u64(31), ..c };
        assert!(!other_dest.verify(&keys.public()));
        let other_src = ForwardingCommitment { src: Id::from_u64(11), ..c };
        assert!(!other_src.verify(&keys.public()));
    }

    #[test]
    fn commitment_from_wrong_signer_rejected() {
        // A cannot forge a commitment on B's behalf.
        let mut rng = StdRng::seed_from_u64(63);
        let a_keys = KeyPair::generate(&mut rng);
        let b_keys = KeyPair::generate(&mut rng);
        let forged = commitment(&a_keys, &mut rng);
        // Claimed forwarder is 20, whose real key is b_keys.
        assert!(!forged.verify(&b_keys.public()));
    }
}
