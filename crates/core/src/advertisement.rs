//! Validated routing-state advertisements (§3.1–3.2).
//!
//! "Each leaf node in T_H is one of H's routing peers, so H implicitly
//! advertises its forwarding state when it publishes its tomographic
//! data." A [`RoutingAdvertisement`] bundles the advertised jump table
//! (with its peer-signed freshness stamps), the advertised leaf-set
//! spacing, and the tomographic snapshot, all under the origin's
//! signature. Receivers run the full §3.1 validation pipeline: signature,
//! freshness, prefix constraints, and both density tests.

use std::fmt;

use serde::{Deserialize, Serialize};

use concilium_crypto::{KeyPair, PublicKey, Signable, Signature};
use concilium_overlay::density::{jump_table_too_sparse, leaf_set_too_sparse};
use concilium_overlay::{JumpTable, JumpTableViolation};
use concilium_tomography::TomographySnapshot;
use concilium_types::SimTime;

use crate::config::ConciliumConfig;

/// A signed advertisement of one host's routing state and probe results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutingAdvertisement {
    table: JumpTable,
    /// Advertised mean leaf-set spacing (None when the leaf set is too
    /// small to compute one).
    leaf_spacing: Option<f64>,
    snapshot: TomographySnapshot,
    sig: Signature,
}

impl RoutingAdvertisement {
    /// Builds and signs an advertisement.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's origin differs from the table's owner.
    pub fn build<R: rand::Rng + ?Sized>(
        table: JumpTable,
        leaf_spacing: Option<f64>,
        snapshot: TomographySnapshot,
        origin_keys: &KeyPair,
        rng: &mut R,
    ) -> Self {
        assert_eq!(
            snapshot.origin(),
            table.local(),
            "snapshot and table must have the same origin"
        );
        let mut ad = RoutingAdvertisement {
            table,
            leaf_spacing,
            snapshot,
            sig: Signature::dummy(),
        };
        ad.sig = origin_keys.sign(&ad.to_signable_vec(), rng);
        ad
    }

    /// The advertised jump table.
    pub fn table(&self) -> &JumpTable {
        &self.table
    }

    /// The advertised leaf-set spacing.
    pub fn leaf_spacing(&self) -> Option<f64> {
        self.leaf_spacing
    }

    /// The bundled tomographic snapshot.
    pub fn snapshot(&self) -> &TomographySnapshot {
        &self.snapshot
    }

    /// Runs the full receiver-side validation pipeline:
    ///
    /// 1. the origin's signature over the whole advertisement;
    /// 2. the jump table's structural invariants — prefix constraints and
    ///    peer-signed freshness stamps (defeating inflation attacks);
    /// 3. Concilium's jump-table density test against the receiver's own
    ///    density (defeating suppression of table entries);
    /// 4. Castro's leaf-set spacing test, when both sides have one.
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    pub fn validate(
        &self,
        origin_key: &PublicKey,
        local_table_density: u32,
        local_leaf_spacing: Option<f64>,
        now: SimTime,
        config: &ConciliumConfig,
    ) -> Result<(), AdvertisementError> {
        if !origin_key.verify(&self.to_signable_vec(), &self.sig) {
            return Err(AdvertisementError::BadSignature);
        }
        self.table
            .validate(now, config.freshness_max_age)
            .map_err(AdvertisementError::Table)?;
        if jump_table_too_sparse(self.table.occupied(), local_table_density, config.density_gamma)
        {
            return Err(AdvertisementError::TableTooSparse {
                advertised: self.table.occupied(),
                local: local_table_density,
            });
        }
        if let (Some(peer), Some(local)) = (self.leaf_spacing, local_leaf_spacing) {
            if leaf_set_too_sparse(peer, local, config.leaf_gamma) {
                return Err(AdvertisementError::LeafSetTooSparse);
            }
        }
        Ok(())
    }
}

impl Signable for RoutingAdvertisement {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"advert");
        out.extend_from_slice(self.table.local().as_bytes());
        // Bind every table slot: coordinates, occupant, stamp time.
        for (row, col, entry) in self.table.entries() {
            out.extend_from_slice(&row.to_be_bytes());
            out.push(col);
            out.extend_from_slice(entry.cert.id().as_bytes());
            out.extend_from_slice(&entry.freshness.time().as_micros().to_be_bytes());
        }
        match self.leaf_spacing {
            Some(s) => {
                out.push(1);
                out.extend_from_slice(&s.to_be_bytes());
            }
            None => out.push(0),
        }
        self.snapshot.signable_bytes(out);
    }
}

/// Why an advertisement was rejected.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AdvertisementError {
    /// The origin's signature over the advertisement is invalid.
    BadSignature,
    /// The jump table violates a structural invariant.
    Table(JumpTableViolation),
    /// The advertised table fails the density test.
    TableTooSparse {
        /// The advertised occupancy.
        advertised: u32,
        /// The receiver's local occupancy.
        local: u32,
    },
    /// The advertised leaf set fails Castro's spacing test.
    LeafSetTooSparse,
}

impl fmt::Display for AdvertisementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdvertisementError::BadSignature => {
                f.write_str("advertisement signature is invalid")
            }
            AdvertisementError::Table(v) => write!(f, "jump table invalid: {v}"),
            AdvertisementError::TableTooSparse { advertised, local } => write!(
                f,
                "advertised table density {advertised} is suspiciously sparse (local {local})"
            ),
            AdvertisementError::LeafSetTooSparse => {
                f.write_str("advertised leaf set is suspiciously sparse")
            }
        }
    }
}

impl std::error::Error for AdvertisementError {}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_crypto::CertificateAuthority;
    use concilium_overlay::freshness::FreshnessStamp;
    use concilium_overlay::JumpTableEntry;
    use concilium_tomography::LinkObservation;
    use concilium_types::{HostAddr, Id, LinkId, RouterId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fx {
        rng: StdRng,
        ca: CertificateAuthority,
        origin: Id,
        origin_keys: KeyPair,
        config: ConciliumConfig,
    }

    fn fx() -> Fx {
        let mut rng = StdRng::seed_from_u64(151);
        let ca = CertificateAuthority::new(&mut rng);
        let origin_keys = KeyPair::generate(&mut rng);
        Fx {
            ca,
            origin: Id::from_hex("0000000000000000000000000000000000000000").unwrap(),
            origin_keys,
            rng,
            config: ConciliumConfig::default(),
        }
    }

    impl Fx {
        /// A table with `cols` fresh entries in row 0.
        fn table(&mut self, cols: u8, stamp_time: SimTime) -> JumpTable {
            let mut jt = JumpTable::new(self.origin);
            for col in 1..=cols {
                let id = self.origin.with_digit(0, col);
                let peer_keys = KeyPair::generate(&mut self.rng);
                let cert = self.ca.issue_with_id(
                    id,
                    HostAddr(RouterId(col as u32)),
                    peer_keys.public(),
                    &mut self.rng,
                );
                let stamp =
                    FreshnessStamp::issue(&peer_keys, self.origin, stamp_time, &mut self.rng);
                jt.set_entry(0, col, JumpTableEntry { cert, freshness: stamp });
            }
            jt
        }

        fn snapshot(&mut self, t: SimTime) -> TomographySnapshot {
            TomographySnapshot::new_signed(
                self.origin,
                t,
                vec![LinkObservation::binary(LinkId(1), true)],
                &self.origin_keys,
                &mut self.rng,
            )
        }

        fn advertisement(&mut self, cols: u8, t: SimTime) -> RoutingAdvertisement {
            let table = self.table(cols, t);
            let snap = self.snapshot(t);
            let keys = self.origin_keys.clone();
            RoutingAdvertisement::build(table, Some(100.0), snap, &keys, &mut self.rng)
        }
    }

    #[test]
    fn honest_advertisement_validates() {
        let mut f = fx();
        let t = SimTime::from_secs(100);
        let ad = f.advertisement(10, t);
        assert_eq!(
            ad.validate(&f.origin_keys.public(), 12, Some(110.0), t, &f.config),
            Ok(())
        );
    }

    #[test]
    fn sparse_table_rejected() {
        let mut f = fx();
        let t = SimTime::from_secs(100);
        let ad = f.advertisement(3, t);
        // Local density 12 vs advertised 3: 1.5 × 3 < 12 → too sparse.
        assert_eq!(
            ad.validate(&f.origin_keys.public(), 12, None, t, &f.config),
            Err(AdvertisementError::TableTooSparse { advertised: 3, local: 12 })
        );
    }

    #[test]
    fn sparse_leaf_set_rejected() {
        let mut f = fx();
        let t = SimTime::from_secs(100);
        let ad = f.advertisement(10, t);
        // Peer spacing 100 vs local 10: peer set is 10× sparser.
        assert_eq!(
            ad.validate(&f.origin_keys.public(), 10, Some(10.0), t, &f.config),
            Err(AdvertisementError::LeafSetTooSparse)
        );
    }

    #[test]
    fn stale_stamps_rejected() {
        let mut f = fx();
        let ad = f.advertisement(10, SimTime::from_secs(100));
        let much_later = SimTime::from_secs(100_000);
        assert!(matches!(
            ad.validate(&f.origin_keys.public(), 10, None, much_later, &f.config),
            Err(AdvertisementError::Table(JumpTableViolation::StampStale { .. }))
        ));
    }

    #[test]
    fn resigned_table_swap_rejected() {
        // An attacker replaying someone's advertisement with a swapped
        // table fails the signature check.
        let mut f = fx();
        let t = SimTime::from_secs(100);
        let ad = f.advertisement(10, t);
        let denser_table = f.table(12, t);
        let forged = RoutingAdvertisement {
            table: denser_table,
            leaf_spacing: ad.leaf_spacing,
            snapshot: ad.snapshot.clone(),
            sig: ad.sig,
        };
        assert_eq!(
            forged.validate(&f.origin_keys.public(), 10, None, t, &f.config),
            Err(AdvertisementError::BadSignature)
        );
    }

    #[test]
    fn accessors() {
        let mut f = fx();
        let t = SimTime::from_secs(100);
        let ad = f.advertisement(5, t);
        assert_eq!(ad.table().occupied(), 5);
        assert_eq!(ad.leaf_spacing(), Some(100.0));
        assert_eq!(ad.snapshot().origin(), f.origin);
    }
}
