//! Verdicts, sliding windows, and the formal-accusation error model
//! (§3.4, §4.3, Figure 6).
//!
//! Per dropped message, the computed blame is thresholded into a binary
//! verdict (the paper uses a 40% threshold). A judge keeps a sliding
//! window of the last *w* verdicts per peer; accumulating *m* or more
//! guilty verdicts triggers a formal accusation. Because each verdict is
//! (approximately) an independent Bernoulli trial, the accusation error
//! rates follow a binomial law:
//!
//! ```text
//! Pr(false positive) = Pr(W ≥ m),  W ~ Binomial(w, p_good)
//! Pr(false negative) = Pr(W < m),  W ~ Binomial(w, p_faulty)
//! ```

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// The binary judgment for one dropped message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Verdict {
    /// The forwarder is held responsible for this drop.
    Guilty,
    /// The network is held responsible.
    Innocent,
}

impl Verdict {
    /// Thresholds a blame value: blame at or above `threshold` is guilty.
    ///
    /// # Panics
    ///
    /// Panics if either argument is outside `[0, 1]`.
    pub fn from_blame(blame: f64, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&blame), "blame {blame} out of [0,1]");
        assert!((0.0..=1.0).contains(&threshold), "threshold {threshold} out of [0,1]");
        if blame >= threshold {
            Verdict::Guilty
        } else {
            Verdict::Innocent
        }
    }

    /// Whether this is a guilty verdict.
    pub fn is_guilty(&self) -> bool {
        matches!(self, Verdict::Guilty)
    }
}

/// A sliding window of the last `w` verdicts issued for one peer.
///
/// # Examples
///
/// ```
/// use concilium::{Verdict, VerdictWindow};
///
/// let mut w = VerdictWindow::new(100);
/// for _ in 0..5 {
///     w.push(Verdict::Guilty);
/// }
/// w.push(Verdict::Innocent);
/// assert_eq!(w.guilty_count(), 5);
/// assert!(!w.should_accuse(6));
/// w.push(Verdict::Guilty);
/// assert!(w.should_accuse(6));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VerdictWindow {
    verdicts: VecDeque<Verdict>,
    capacity: usize,
    guilty: usize,
}

impl VerdictWindow {
    /// Creates a window holding the last `capacity` verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        VerdictWindow { verdicts: VecDeque::with_capacity(capacity), capacity, guilty: 0 }
    }

    /// Records a verdict, evicting the oldest when full.
    pub fn push(&mut self, v: Verdict) {
        if self.verdicts.len() == self.capacity {
            if let Some(old) = self.verdicts.pop_front() {
                if old.is_guilty() {
                    self.guilty -= 1;
                }
            }
        }
        if v.is_guilty() {
            self.guilty += 1;
        }
        self.verdicts.push_back(v);
    }

    /// Number of verdicts currently held.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// The window capacity `w`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of guilty verdicts in the window.
    pub fn guilty_count(&self) -> usize {
        self.guilty
    }

    /// Whether the peer has accumulated at least `m` guilty verdicts.
    pub fn should_accuse(&self, m: usize) -> bool {
        self.guilty >= m
    }

    /// The verdicts currently in the window, oldest first — a read-only
    /// view for invariant checkers that recount [`Self::guilty_count`]
    /// independently.
    pub fn verdicts(&self) -> impl Iterator<Item = Verdict> + '_ {
        self.verdicts.iter().copied()
    }

    /// Appends the window's canonical encoding to `out`: capacity,
    /// length, then one word per verdict (`1` = guilty), oldest first.
    /// The journalable state hook service-mode recovery compares —
    /// two windows encode identically iff they would judge identically.
    pub fn encode_to(&self, out: &mut Vec<u64>) {
        out.push(self.capacity as u64);
        out.push(self.verdicts.len() as u64);
        out.extend(self.verdicts.iter().map(|v| u64::from(v.is_guilty())));
    }

    /// Rebuilds a window from its capacity and verdict sequence (oldest
    /// first), the inverse of [`Self::encode_to`]. Verdicts beyond
    /// `capacity` evict the oldest exactly as live pushes would, so
    /// replaying a journal through `restore` matches the online window.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn restore(capacity: usize, verdicts: impl IntoIterator<Item = Verdict>) -> Self {
        let mut w = VerdictWindow::new(capacity);
        for v in verdicts {
            w.push(v);
        }
        w
    }
}

/// `Pr(W ≥ m)` for `W ~ Binomial(w, p)` — the formal-accusation false
/// positive probability when `p = p_good` (Figure 6).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `m > w`.
pub fn binomial_tail_at_least(w: usize, m: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
    assert!(m <= w, "m = {m} exceeds w = {w}");
    1.0 - binomial_cdf_below(w, m, p)
}

/// `Pr(W < m)` for `W ~ Binomial(w, p)` — the formal-accusation false
/// negative probability when `p = p_faulty` (Figure 6).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `m > w`.
pub fn binomial_cdf_below(w: usize, m: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
    assert!(m <= w, "m = {m} exceeds w = {w}");
    if m == 0 {
        return 0.0;
    }
    // Iterate pmf terms with the recurrence
    // pmf(k+1) = pmf(k) · (w−k)/(k+1) · p/(1−p), in log space for safety.
    // lint:allow(float-cmp, reason = "exact degenerate-case guard: p is a caller-supplied constant, not a computed value")
    if p == 0.0 {
        return 1.0; // W = 0 < m (m ≥ 1 here)
    }
    // lint:allow(float-cmp, reason = "exact degenerate-case guard: p is a caller-supplied constant, not a computed value")
    if p == 1.0 {
        return if m > w { 1.0 } else { 0.0 };
    }
    let mut acc = 0.0f64;
    let mut log_pmf = (w as f64) * (1.0 - p).ln(); // k = 0
    for k in 0..m {
        acc += log_pmf.exp();
        // advance to k+1
        log_pmf += ((w - k) as f64).ln() - ((k + 1) as f64).ln() + p.ln() - (1.0 - p).ln();
    }
    acc.min(1.0)
}

/// Sweeps `m` from 1 to `w` and returns, for each, the (false positive,
/// false negative) pair — the data series of Figure 6.
pub fn accusation_error_curve(w: usize, p_good: f64, p_faulty: f64) -> Vec<(usize, f64, f64)> {
    (1..=w)
        .map(|m| {
            (
                m,
                binomial_tail_at_least(w, m, p_good),
                binomial_cdf_below(w, m, p_faulty),
            )
        })
        .collect()
}

/// The smallest `m` driving both error rates below `target`, if any.
pub fn minimal_m(w: usize, p_good: f64, p_faulty: f64, target: f64) -> Option<usize> {
    (1..=w).find(|&m| {
        binomial_tail_at_least(w, m, p_good) < target
            && binomial_cdf_below(w, m, p_faulty) < target
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_thresholding() {
        assert_eq!(Verdict::from_blame(0.4, 0.4), Verdict::Guilty);
        assert_eq!(Verdict::from_blame(0.39, 0.4), Verdict::Innocent);
        assert!(Verdict::Guilty.is_guilty());
        assert!(!Verdict::Innocent.is_guilty());
    }

    #[test]
    fn window_eviction_keeps_counts_consistent() {
        let mut w = VerdictWindow::new(3);
        w.push(Verdict::Guilty);
        w.push(Verdict::Guilty);
        w.push(Verdict::Innocent);
        assert_eq!(w.guilty_count(), 2);
        // Evicts the first guilty.
        w.push(Verdict::Innocent);
        assert_eq!(w.len(), 3);
        assert_eq!(w.guilty_count(), 1);
        // Evicts the second guilty.
        w.push(Verdict::Innocent);
        assert_eq!(w.guilty_count(), 0);
        assert!(!w.should_accuse(1));
    }

    #[test]
    fn verdict_iteration_matches_cached_count() {
        let mut w = VerdictWindow::new(4);
        for v in [
            Verdict::Guilty,
            Verdict::Innocent,
            Verdict::Guilty,
            Verdict::Guilty,
            Verdict::Innocent, // evicts the first guilty
        ] {
            w.push(v);
            let recount = w.verdicts().filter(Verdict::is_guilty).count();
            assert_eq!(recount, w.guilty_count());
        }
        let order: Vec<Verdict> = w.verdicts().collect();
        assert_eq!(
            order,
            vec![Verdict::Innocent, Verdict::Guilty, Verdict::Guilty, Verdict::Innocent],
            "oldest first"
        );
    }

    #[test]
    fn binomial_matches_direct_computation() {
        // Small case cross-checked by brute force: w=4, p=0.3.
        let w = 4usize;
        let p: f64 = 0.3;
        let pmf = |k: u32| {
            let c = match k {
                0 | 4 => 1.0,
                1 | 3 => 4.0,
                2 => 6.0,
                _ => unreachable!(),
            };
            c * p.powi(k as i32) * (1.0 - p).powi(4 - k as i32)
        };
        for m in 0..=4usize {
            let want: f64 = (0..m as u32).map(pmf).sum();
            assert!(
                (binomial_cdf_below(w, m, p) - want).abs() < 1e-12,
                "m = {m}"
            );
        }
        assert!((binomial_tail_at_least(w, 2, p) - (1.0 - pmf(0) - pmf(1))).abs() < 1e-12);
    }

    #[test]
    fn paper_figure6_headline_numbers() {
        // §4.3: with faithful reporting, p_good ≈ 1.8% and
        // p_faulty ≈ 93.8%; m = 6 (w = 100) drives both errors below 1%.
        let m = minimal_m(100, 0.018, 0.938, 0.01).expect("an m exists");
        assert_eq!(m, 6, "faithful scenario");
        // With 20% collusion, p_good ≈ 8.4% and p_faulty ≈ 71.3%;
        // m = 16 suffices.
        let m = minimal_m(100, 0.084, 0.713, 0.01).expect("an m exists");
        assert_eq!(m, 16, "collusion scenario");
    }

    #[test]
    fn error_curve_is_monotone() {
        let curve = accusation_error_curve(100, 0.05, 0.8);
        for w in curve.windows(2) {
            let (_, fp0, fn0) = w[0];
            let (_, fp1, fn1) = w[1];
            assert!(fp1 <= fp0 + 1e-12, "fp should fall with m");
            assert!(fn1 + 1e-12 >= fn0, "fn should rise with m");
        }
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(binomial_cdf_below(10, 5, 0.0), 1.0);
        assert_eq!(binomial_cdf_below(10, 5, 1.0), 0.0);
        assert_eq!(binomial_tail_at_least(10, 0, 0.3), 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn m_above_w_rejected() {
        let _ = binomial_cdf_below(10, 11, 0.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_window_rejected() {
        let _ = VerdictWindow::new(0);
    }

    #[test]
    fn encode_restore_round_trips_including_eviction() {
        let mut w = VerdictWindow::new(3);
        for v in [Verdict::Guilty, Verdict::Innocent, Verdict::Guilty, Verdict::Guilty] {
            w.push(v);
        }
        let mut encoded = Vec::new();
        w.encode_to(&mut encoded);
        assert_eq!(encoded, vec![3, 3, 0, 1, 1], "capacity, len, verdict bits oldest-first");

        // Restoring from the full push history (capacity exceeded)
        // reproduces the online window, eviction included.
        let history =
            [Verdict::Guilty, Verdict::Innocent, Verdict::Guilty, Verdict::Guilty];
        let restored = VerdictWindow::restore(3, history);
        let mut re_encoded = Vec::new();
        restored.encode_to(&mut re_encoded);
        assert_eq!(re_encoded, encoded);
        assert_eq!(restored.guilty_count(), w.guilty_count());
        assert_eq!(restored.should_accuse(2), w.should_accuse(2));
    }
}
