//! Fault rebuttals (§3.5).
//!
//! A host may receive a revision but refuse to update its accusation —
//! e.g. A keeps blaming B although B proved the drop happened downstream.
//! To guard against this, B archives its own fault attributions; when
//! another host is about to sanction B on the strength of a formal
//! accusation, it first presents the accusation to B, and B may answer
//! with its archived verdict for the same message. A valid rebuttal
//! shifts the blame to the rebuttal's accused.

use std::fmt;

use concilium_crypto::PublicKey;
use concilium_types::Id;

use crate::accusation::{Accusation, AccusationError};
use crate::config::ConciliumConfig;

/// Evaluates B's rebuttal of an accusation against it.
///
/// `against` blames some node B; `counter` is B's own archived verdict for
/// the same message. If the rebuttal is valid, returns the node blame
/// shifts to (the counter-accusation's accused).
///
/// # Errors
///
/// Returns [`RebuttalError`] when the rebuttal does not actually exonerate
/// B for this drop.
pub fn evaluate_rebuttal(
    against: &Accusation,
    counter: &Accusation,
    key_of: &dyn Fn(Id) -> Option<PublicKey>,
    config: &ConciliumConfig,
) -> Result<Id, RebuttalError> {
    if counter.accuser() != against.accused() {
        return Err(RebuttalError::NotFromAccused {
            expected: against.accused(),
            found: counter.accuser(),
        });
    }
    if counter.context().msg != against.context().msg
        || counter.context().dest != against.context().dest
    {
        return Err(RebuttalError::DifferentMessage);
    }
    counter
        .verify(key_of, config)
        .map_err(RebuttalError::InvalidCounter)?;
    Ok(counter.accused())
}

/// Why a rebuttal fails.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RebuttalError {
    /// The counter-accusation was not issued by the accused node.
    NotFromAccused {
        /// Who must have issued it.
        expected: Id,
        /// Who actually did.
        found: Id,
    },
    /// The counter-accusation concerns a different message.
    DifferentMessage,
    /// The counter-accusation does not verify.
    InvalidCounter(AccusationError),
}

impl fmt::Display for RebuttalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebuttalError::NotFromAccused { expected, found } => {
                write!(f, "rebuttal must come from {expected}, came from {found}")
            }
            RebuttalError::DifferentMessage => {
                f.write_str("rebuttal concerns a different message")
            }
            RebuttalError::InvalidCounter(e) => write!(f, "counter-accusation invalid: {e}"),
        }
    }
}

impl std::error::Error for RebuttalError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accusation::DropContext;
    use crate::commitment::ForwardingCommitment;
    use concilium_crypto::KeyPair;
    use concilium_types::{MsgId, SimTime};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    struct Fx {
        rng: StdRng,
        keys: HashMap<Id, KeyPair>,
        config: ConciliumConfig,
    }

    impl Fx {
        fn new() -> Self {
            let mut rng = StdRng::seed_from_u64(91);
            let mut keys = HashMap::new();
            for i in 1..=9u64 {
                keys.insert(Id::from_u64(i), KeyPair::generate(&mut rng));
            }
            Fx { rng, keys, config: ConciliumConfig::default() }
        }

        fn key_of(&self) -> impl Fn(Id) -> Option<PublicKey> + '_ {
            |id| self.keys.get(&id).map(|k| k.public())
        }

        fn accuse(&mut self, msg: u64, accuser: u64, accused: u64) -> Accusation {
            let ctx = DropContext {
                msg: MsgId(msg),
                accuser: Id::from_u64(accuser),
                accused: Id::from_u64(accused),
                next_hop: Id::from_u64(accused + 1),
                dest: Id::from_u64(9),
                at: SimTime::from_secs(50),
            };
            let commitment = ForwardingCommitment::issue(
                ctx.msg,
                ctx.accuser,
                ctx.accused,
                ctx.dest,
                SimTime::from_secs(49),
                &self.keys[&ctx.accused].clone(),
                &mut self.rng,
            );
            let k = self.keys[&ctx.accuser].clone();
            Accusation::build(ctx, commitment, vec![], vec![], &self.config, &k, &mut self.rng)
        }
    }

    #[test]
    fn valid_rebuttal_shifts_blame() {
        let mut fx = Fx::new();
        let against_b = fx.accuse(1, 1, 2); // A blames B
        let counter = fx.accuse(1, 2, 3); // B's archived verdict against C
        let new_culprit =
            evaluate_rebuttal(&against_b, &counter, &fx.key_of(), &fx.config).unwrap();
        assert_eq!(new_culprit, Id::from_u64(3));
    }

    #[test]
    fn rebuttal_from_third_party_rejected() {
        let mut fx = Fx::new();
        let against_b = fx.accuse(1, 1, 2);
        let counter = fx.accuse(1, 4, 5); // unrelated node's verdict
        assert!(matches!(
            evaluate_rebuttal(&against_b, &counter, &fx.key_of(), &fx.config),
            Err(RebuttalError::NotFromAccused { .. })
        ));
    }

    #[test]
    fn rebuttal_for_other_message_rejected() {
        let mut fx = Fx::new();
        let against_b = fx.accuse(1, 1, 2);
        let counter = fx.accuse(2, 2, 3); // different message id
        assert_eq!(
            evaluate_rebuttal(&against_b, &counter, &fx.key_of(), &fx.config),
            Err(RebuttalError::DifferentMessage)
        );
    }

    #[test]
    fn unverifiable_counter_rejected() {
        let mut fx = Fx::new();
        let against_b = fx.accuse(1, 1, 2);
        let counter = fx.accuse(1, 2, 3);
        let no_keys = |_: Id| -> Option<PublicKey> { None };
        assert!(matches!(
            evaluate_rebuttal(&against_b, &counter, &no_keys, &fx.config),
            Err(RebuttalError::InvalidCounter(_))
        ));
    }
}
