//! Self-verifying formal fault accusations (§3.4).
//!
//! When a peer accumulates enough guilty verdicts, the judge inserts a
//! formal accusation into the DHT, keyed by the accused host's public
//! key. The accusation carries *everything a third party needs to verify
//! it independently*: the drop context, the accused's forwarding
//! commitment, the advertised B→C link map, and the signed tomographic
//! snapshots the blame was derived from. Verifiers recompute the blame
//! from the quoted evidence and check it crosses the guilty threshold.

use std::fmt;

use serde::{Deserialize, Serialize};

use concilium_crypto::{KeyPair, PublicKey, Signable, Signature};
use concilium_tomography::TomographySnapshot;
use concilium_types::{Id, LinkId, MsgId, SimTime};

use crate::blame::{blame_from_path_evidence, LinkEvidence};
use crate::commitment::ForwardingCommitment;
use crate::config::ConciliumConfig;

/// The identifying facts of one judged message drop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DropContext {
    /// The dropped message.
    pub msg: MsgId,
    /// The judge issuing the accusation (A).
    pub accuser: Id,
    /// The accused forwarder (B).
    pub accused: Id,
    /// The hop B should have forwarded to (C), read from B's advertised
    /// routing state.
    pub next_hop: Id,
    /// The message's final destination (Z).
    pub dest: Id,
    /// When the drop was detected.
    pub at: SimTime,
}

/// A formal, self-verifying fault accusation.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Accusation {
    context: DropContext,
    commitment: ForwardingCommitment,
    /// The link map of the B→C path, from B's advertised routing state.
    path_links: Vec<LinkId>,
    /// The signed snapshots whose observations the blame was derived from.
    evidence: Vec<TomographySnapshot>,
    /// The blame the accuser derived (must be reproducible from the
    /// evidence).
    blame: f64,
    sig: Signature,
}

impl Accusation {
    /// Assembles and signs an accusation.
    ///
    /// The blame is *computed here* from the supplied evidence so that the
    /// structure is self-verifying by construction; dishonest accusers
    /// that quote doctored evidence are caught by signature checks, and
    /// ones that quote real evidence cannot inflate the number.
    pub fn build<R: rand::Rng + ?Sized>(
        context: DropContext,
        commitment: ForwardingCommitment,
        path_links: Vec<LinkId>,
        evidence: Vec<TomographySnapshot>,
        config: &ConciliumConfig,
        accuser_keys: &KeyPair,
        rng: &mut R,
    ) -> Self {
        let blame = recompute_blame(&path_links, &evidence, context.accused, config);
        let mut a = Accusation {
            context,
            commitment,
            path_links,
            evidence,
            blame,
            sig: Signature::dummy(),
        };
        a.sig = accuser_keys.sign(&a.to_signable_vec(), rng);
        a
    }

    /// The drop context.
    pub fn context(&self) -> &DropContext {
        &self.context
    }

    /// The accused host.
    pub fn accused(&self) -> Id {
        self.context.accused
    }

    /// The accusing host.
    pub fn accuser(&self) -> Id {
        self.context.accuser
    }

    /// The blame value derived from the quoted evidence.
    pub fn blame(&self) -> f64 {
        self.blame
    }

    /// The quoted snapshots.
    pub fn evidence(&self) -> &[TomographySnapshot] {
        &self.evidence
    }

    /// The B→C link map used.
    pub fn path_links(&self) -> &[LinkId] {
        &self.path_links
    }

    /// The accused's forwarding commitment.
    pub fn commitment(&self) -> &ForwardingCommitment {
        &self.commitment
    }

    /// Independently verifies the accusation, as any third party would
    /// before trusting it. `key_of` resolves overlay identifiers to
    /// certified public keys (from certificates).
    ///
    /// # Errors
    ///
    /// Returns the first [`AccusationError`] found.
    pub fn verify(
        &self,
        key_of: &dyn Fn(Id) -> Option<PublicKey>,
        config: &ConciliumConfig,
    ) -> Result<(), AccusationError> {
        // 1. The commitment must bind the accused to this exact message.
        let accused_key =
            key_of(self.context.accused).ok_or(AccusationError::UnknownHost(self.context.accused))?;
        if !self.commitment.verify(&accused_key) {
            return Err(AccusationError::BadCommitment);
        }
        if self.commitment.msg() != self.context.msg
            || self.commitment.forwarder() != self.context.accused
            || self.commitment.src() != self.context.accuser
            || self.commitment.dest() != self.context.dest
        {
            return Err(AccusationError::CommitmentMismatch);
        }

        // 2. Every quoted snapshot must be authentic, timely, and not
        //    originate from the accused (whose probes are inadmissible).
        for snap in &self.evidence {
            if snap.origin() == self.context.accused {
                return Err(AccusationError::EvidenceFromAccused);
            }
            let okey =
                key_of(snap.origin()).ok_or(AccusationError::UnknownHost(snap.origin()))?;
            if !snap.verify(&okey) {
                return Err(AccusationError::BadSnapshotSignature(snap.origin()));
            }
            if snap.time().abs_diff(self.context.at) > config.delta {
                return Err(AccusationError::EvidenceOutsideWindow(snap.origin()));
            }
        }

        // 3. The blame must be reproducible and above threshold.
        let recomputed =
            recompute_blame(&self.path_links, &self.evidence, self.context.accused, config);
        if (recomputed - self.blame).abs() > 1e-9 {
            return Err(AccusationError::BlameMismatch {
                claimed: self.blame,
                recomputed,
            });
        }
        if self.blame < config.blame_threshold {
            return Err(AccusationError::BelowThreshold(self.blame));
        }

        // 4. The accuser's signature covers everything above.
        let akey =
            key_of(self.context.accuser).ok_or(AccusationError::UnknownHost(self.context.accuser))?;
        if !concilium_crypto::verify_cached(&akey, &self.to_signable_vec(), &self.sig) {
            return Err(AccusationError::BadAccuserSignature);
        }
        Ok(())
    }
}

/// Recomputes Eq. 2 blame from quoted snapshots over the path's link map.
fn recompute_blame(
    path_links: &[LinkId],
    evidence: &[TomographySnapshot],
    accused: Id,
    config: &ConciliumConfig,
) -> f64 {
    let per_link: Vec<LinkEvidence> = path_links
        .iter()
        .map(|&link| LinkEvidence {
            link,
            observations: evidence
                .iter()
                .filter(|s| s.origin() != accused)
                .filter_map(|s| s.observation_for(link))
                .map(|o| o.is_up())
                .collect(),
        })
        .collect();
    blame_from_path_evidence(&per_link, config.probe_accuracy)
}

impl Signable for Accusation {
    fn signable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"accuse");
        out.extend_from_slice(&self.context.msg.0.to_be_bytes());
        out.extend_from_slice(self.context.accuser.as_bytes());
        out.extend_from_slice(self.context.accused.as_bytes());
        out.extend_from_slice(self.context.next_hop.as_bytes());
        out.extend_from_slice(self.context.dest.as_bytes());
        out.extend_from_slice(&self.context.at.as_micros().to_be_bytes());
        self.commitment.signable_bytes(out);
        out.extend_from_slice(&(self.path_links.len() as u64).to_be_bytes());
        for l in &self.path_links {
            out.extend_from_slice(&l.0.to_be_bytes());
        }
        out.extend_from_slice(&(self.evidence.len() as u64).to_be_bytes());
        for s in &self.evidence {
            s.signable_bytes(out);
        }
        out.extend_from_slice(&self.blame.to_be_bytes());
    }
}

/// Why an accusation failed third-party verification.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AccusationError {
    /// A referenced host has no known certificate.
    UnknownHost(Id),
    /// The forwarding commitment's signature is invalid.
    BadCommitment,
    /// The commitment does not bind the accused to this message.
    CommitmentMismatch,
    /// The accusation quotes the accused's own probes.
    EvidenceFromAccused,
    /// A quoted snapshot's signature is invalid.
    BadSnapshotSignature(Id),
    /// A quoted snapshot falls outside `[t − Δ, t + Δ]`.
    EvidenceOutsideWindow(Id),
    /// The claimed blame is not reproducible from the evidence.
    BlameMismatch {
        /// What the accusation claims.
        claimed: f64,
        /// What the evidence yields.
        recomputed: f64,
    },
    /// The (reproducible) blame does not reach the guilty threshold.
    BelowThreshold(f64),
    /// The accuser's signature is invalid.
    BadAccuserSignature,
}

impl fmt::Display for AccusationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccusationError::UnknownHost(id) => write!(f, "no certificate for host {id}"),
            AccusationError::BadCommitment => f.write_str("forwarding commitment is invalid"),
            AccusationError::CommitmentMismatch => {
                f.write_str("commitment does not match the drop context")
            }
            AccusationError::EvidenceFromAccused => {
                f.write_str("accusation quotes the accused's own probes")
            }
            AccusationError::BadSnapshotSignature(id) => {
                write!(f, "snapshot from {id} has an invalid signature")
            }
            AccusationError::EvidenceOutsideWindow(id) => {
                write!(f, "snapshot from {id} is outside the evidence window")
            }
            AccusationError::BlameMismatch { claimed, recomputed } => write!(
                f,
                "claimed blame {claimed} is not reproducible (evidence yields {recomputed})"
            ),
            AccusationError::BelowThreshold(b) => {
                write!(f, "blame {b} is below the guilty threshold")
            }
            AccusationError::BadAccuserSignature => f.write_str("accuser signature is invalid"),
        }
    }
}

impl std::error::Error for AccusationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_tomography::LinkObservation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    struct Fixture {
        rng: StdRng,
        keys: HashMap<Id, KeyPair>,
        config: ConciliumConfig,
    }

    impl Fixture {
        fn new() -> Self {
            let mut rng = StdRng::seed_from_u64(71);
            let mut keys = HashMap::new();
            for i in 1..=5u64 {
                keys.insert(Id::from_u64(i), KeyPair::generate(&mut rng));
            }
            Fixture { rng, keys, config: ConciliumConfig::default() }
        }

        fn key_of(&self) -> impl Fn(Id) -> Option<PublicKey> + '_ {
            |id| self.keys.get(&id).map(|k| k.public())
        }

        fn context(&self) -> DropContext {
            DropContext {
                msg: MsgId(1),
                accuser: Id::from_u64(1),
                accused: Id::from_u64(2),
                next_hop: Id::from_u64(3),
                dest: Id::from_u64(5),
                at: SimTime::from_secs(100),
            }
        }

        fn commitment(&mut self) -> ForwardingCommitment {
            let ctx = self.context();
            let b = self.keys[&ctx.accused].clone();
            ForwardingCommitment::issue(
                ctx.msg,
                ctx.accuser,
                ctx.accused,
                ctx.dest,
                SimTime::from_secs(99),
                &b,
                &mut self.rng,
            )
        }

        /// A snapshot from host `origin` observing both path links up.
        fn snapshot(&mut self, origin: u64, at: SimTime, up: bool) -> TomographySnapshot {
            let keys = self.keys[&Id::from_u64(origin)].clone();
            TomographySnapshot::new_signed(
                Id::from_u64(origin),
                at,
                vec![
                    LinkObservation::binary(LinkId(10), up),
                    LinkObservation::binary(LinkId(11), up),
                ],
                &keys,
                &mut self.rng,
            )
        }

        fn build(&mut self, evidence: Vec<TomographySnapshot>) -> Accusation {
            let ctx = self.context();
            let commitment = self.commitment();
            let accuser = self.keys[&ctx.accuser].clone();
            Accusation::build(
                ctx,
                commitment,
                vec![LinkId(10), LinkId(11)],
                evidence,
                &self.config,
                &accuser,
                &mut self.rng,
            )
        }
    }

    #[test]
    fn valid_accusation_verifies() {
        let mut fx = Fixture::new();
        let t = SimTime::from_secs(100);
        // Two honest witnesses probed the path links as up → high blame.
        let ev = vec![fx.snapshot(3, t, true), fx.snapshot(4, t, true)];
        let a = fx.build(ev);
        assert!((a.blame() - 0.9).abs() < 1e-12);
        assert_eq!(a.verify(&fx.key_of(), &fx.config), Ok(()));
    }

    #[test]
    fn below_threshold_rejected() {
        let mut fx = Fixture::new();
        let t = SimTime::from_secs(100);
        // Witnesses saw the links down → low blame, accusation unjustified.
        let ev = vec![fx.snapshot(3, t, false)];
        let a = fx.build(ev);
        assert!(a.blame() < 0.4);
        assert_eq!(
            a.verify(&fx.key_of(), &fx.config),
            Err(AccusationError::BelowThreshold(a.blame()))
        );
    }

    #[test]
    fn stale_evidence_rejected() {
        let mut fx = Fixture::new();
        // Evidence probed 5 minutes after the drop: outside Δ = 60 s.
        let ev = vec![fx.snapshot(3, SimTime::from_secs(100), true),
                      fx.snapshot(4, SimTime::from_secs(400), true)];
        let a = fx.build(ev);
        assert_eq!(
            a.verify(&fx.key_of(), &fx.config),
            Err(AccusationError::EvidenceOutsideWindow(Id::from_u64(4)))
        );
    }

    #[test]
    fn accused_own_probes_inadmissible() {
        let mut fx = Fixture::new();
        let t = SimTime::from_secs(100);
        // Accusation quoting a snapshot by the accused (host 2) is
        // rejected wholesale by third parties.
        let ev = vec![fx.snapshot(3, t, true), fx.snapshot(2, t, true)];
        let a = fx.build(ev);
        assert_eq!(
            a.verify(&fx.key_of(), &fx.config),
            Err(AccusationError::EvidenceFromAccused)
        );
    }

    #[test]
    fn inflated_blame_detected() {
        let mut fx = Fixture::new();
        let t = SimTime::from_secs(100);
        let ev = vec![fx.snapshot(3, t, false)]; // real blame is low
        let mut a = fx.build(ev);
        a.blame = 0.95; // accuser lies about the number
        let err = a.verify(&fx.key_of(), &fx.config).unwrap_err();
        assert!(
            matches!(err, AccusationError::BlameMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn tampered_evidence_detected() {
        let mut fx = Fixture::new();
        let t = SimTime::from_secs(100);
        let good = fx.snapshot(3, t, true);
        // Substitute a snapshot whose contents were altered post-signing:
        // build a different snapshot and graft its observations... easiest
        // route: serialize-level tamper via clone-and-replace observation
        // is covered in the tomography tests; here check a wrong-origin
        // forgery: host 4's snapshot re-attributed to host 3.
        let forged = {
            let keys = fx.keys[&Id::from_u64(4)].clone();
            TomographySnapshot::new_signed(
                Id::from_u64(3), // claims origin 3
                t,
                vec![
                    LinkObservation::binary(LinkId(10), true),
                    LinkObservation::binary(LinkId(11), true),
                ],
                &keys, // but signed by 4
                &mut fx.rng,
            )
        };
        let a = fx.build(vec![good, forged]);
        assert_eq!(
            a.verify(&fx.key_of(), &fx.config),
            Err(AccusationError::BadSnapshotSignature(Id::from_u64(3)))
        );
    }

    #[test]
    fn missing_commitment_binding_detected() {
        let mut fx = Fixture::new();
        let t = SimTime::from_secs(100);
        let ev = vec![fx.snapshot(3, t, true)];
        let mut a = fx.build(ev);
        // Rebind the context to a different message id: the commitment no
        // longer matches (and the accuser's signature breaks too, but the
        // commitment check fires first).
        a.context.msg = MsgId(999);
        assert_eq!(
            a.verify(&fx.key_of(), &fx.config),
            Err(AccusationError::CommitmentMismatch)
        );
    }

    #[test]
    fn unknown_hosts_detected() {
        let mut fx = Fixture::new();
        let t = SimTime::from_secs(100);
        let ev = vec![fx.snapshot(3, t, true)];
        let a = fx.build(ev);
        let no_keys = |_: Id| -> Option<PublicKey> { None };
        assert_eq!(
            a.verify(&no_keys, &fx.config),
            Err(AccusationError::UnknownHost(Id::from_u64(2)))
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// For any witness observation pattern, the built accusation
            /// either verifies cleanly or fails with exactly
            /// `BelowThreshold` — never with an integrity error.
            #[test]
            fn built_accusations_are_internally_consistent(
                observations in proptest::collection::vec(
                    proptest::collection::vec(any::<bool>(), 2), 0..4),
            ) {
                let mut fx = Fixture::new();
                let t = SimTime::from_secs(100);
                let evidence: Vec<TomographySnapshot> = observations
                    .iter()
                    .enumerate()
                    .map(|(i, obs)| {
                        let origin = 3 + (i as u64 % 2); // hosts 3 and 4
                        let keys = fx.keys[&Id::from_u64(origin)].clone();
                        TomographySnapshot::new_signed(
                            Id::from_u64(origin),
                            t,
                            vec![
                                LinkObservation::binary(LinkId(10), obs[0]),
                                LinkObservation::binary(LinkId(11), obs[1]),
                            ],
                            &keys,
                            &mut fx.rng,
                        )
                    })
                    .collect();
                let a = fx.build(evidence);
                let config = fx.config;
                let keys = fx.keys.clone();
                let key_of = move |id: Id| keys.get(&id).map(|k| k.public());
                prop_assert!((0.0..=1.0).contains(&a.blame()));
                match a.verify(&key_of, &config) {
                    Ok(()) => prop_assert!(a.blame() >= config.blame_threshold),
                    Err(AccusationError::BelowThreshold(b)) => {
                        prop_assert!(b < config.blame_threshold)
                    }
                    Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                }
            }

            /// Any perturbation of the claimed blame is detected.
            #[test]
            fn blame_perturbations_detected(delta_millis in 1i32..999) {
                let mut fx = Fixture::new();
                let t = SimTime::from_secs(100);
                let ev = vec![fx.snapshot(3, t, true)];
                let mut a = fx.build(ev);
                let perturbed = (a.blame + delta_millis as f64 / 1000.0) % 1.0;
                prop_assume!((perturbed - a.blame).abs() > 1e-6);
                a.blame = perturbed;
                let config = fx.config;
                let keys = fx.keys.clone();
                let key_of = move |id: Id| keys.get(&id).map(|k| k.public());
                let err = a.verify(&key_of, &config).unwrap_err();
                prop_assert!(
                    matches!(
                        err,
                        AccusationError::BlameMismatch { .. }
                            | AccusationError::BelowThreshold(_)
                    ),
                    "got {err:?}"
                );
            }
        }
    }

    #[test]
    fn no_evidence_still_verifies_with_full_blame() {
        // §3.5: at the end of a revision chain, the culprit D has no
        // incriminating tomographic data — the accusation against D
        // carries no snapshots and full blame.
        let mut fx = Fixture::new();
        let a = fx.build(Vec::new());
        assert_eq!(a.blame(), 1.0);
        assert_eq!(a.verify(&fx.key_of(), &fx.config), Ok(()));
    }
}
