//! The accusation repository: a DHT atop the secure overlay (§3.4).
//!
//! Formal accusations are inserted under the accused host's public key so
//! that any host considering a new routing peer can first retrieve and
//! independently verify outstanding accusations against it. Inserts and
//! fetches are replicated over the nodes whose identifiers are closest to
//! the key (secure routing makes reaching those replicas reliable); this
//! module models the replica placement and per-node stores directly.

use std::collections::{HashMap, HashSet};
use std::fmt;

use concilium_crypto::{sha256, PublicKey};
use concilium_types::Id;

use crate::accusation::Accusation;
use crate::retry::RetryPolicy;

/// Why a replicated DHT operation failed despite retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DhtError {
    /// Too few replicas stored the accusation for it to be durable.
    QuorumNotReached {
        /// Replicas that stored it.
        stored: usize,
        /// The write quorum required.
        quorum: usize,
    },
    /// No replica could be read at all.
    NoReplicaAvailable,
    /// The replica set itself is degraded: fewer live replicas exist
    /// than the write quorum requires, so no amount of retrying can
    /// succeed. Returned *before* any transport attempt is made.
    DegradedReplicaSet {
        /// Live (non-faulty) replicas for the key.
        live: usize,
        /// The write quorum that cannot be met.
        quorum: usize,
    },
}

impl fmt::Display for DhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhtError::QuorumNotReached { stored, quorum } => {
                write!(f, "only {stored} replicas stored the accusation, quorum is {quorum}")
            }
            DhtError::NoReplicaAvailable => write!(f, "no replica answered any read attempt"),
            DhtError::DegradedReplicaSet { live, quorum } => {
                write!(f, "replica set degraded: {live} live replicas cannot meet quorum {quorum}")
            }
        }
    }
}

impl std::error::Error for DhtError {}

/// The accusation store, replicated over overlay members.
///
/// # Examples
///
/// ```
/// use concilium::dht::AccusationDht;
/// use concilium_types::Id;
///
/// let members: Vec<Id> = (0..16).map(|i| Id::from_u64(i * 1000)).collect();
/// let dht = AccusationDht::new(members, 4);
/// assert_eq!(dht.replicas(Id::from_u64(2_100)).len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct AccusationDht {
    members: Vec<Id>,
    replication: usize,
    stores: HashMap<Id, Vec<Accusation>>,
    faulty: HashSet<Id>,
}

impl AccusationDht {
    /// Creates a DHT over the given membership with a replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `replication` is zero.
    pub fn new(mut members: Vec<Id>, replication: usize) -> Self {
        assert!(!members.is_empty(), "a DHT needs members");
        assert!(replication > 0, "replication must be positive");
        members.sort();
        members.dedup();
        AccusationDht {
            members,
            replication,
            stores: HashMap::new(),
            faulty: HashSet::new(),
        }
    }

    /// The DHT key for accusations against the holder of `pk`: the hash of
    /// the public key mapped into the identifier space.
    pub fn key_for(pk: &PublicKey) -> Id {
        let digest = sha256(&pk.to_bytes());
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&digest.as_bytes()[..20]);
        Id::from_bytes(bytes)
    }

    /// The member identifiers responsible for `key`: the `replication`
    /// members closest on the ring.
    pub fn replicas(&self, key: Id) -> Vec<Id> {
        let mut members = self.members.clone();
        members.sort_by_key(|m| m.ring_distance(&key));
        members.truncate(self.replication);
        members
    }

    /// Marks a member as faulty: it silently drops everything stored at
    /// it (used to test replication robustness).
    pub fn mark_faulty(&mut self, member: Id) {
        self.faulty.insert(member);
        self.stores.remove(&member);
    }

    /// Inserts an accusation under the accused's public key, returning
    /// the number of replicas that actually stored it.
    pub fn insert(&mut self, accused_pk: &PublicKey, accusation: Accusation) -> usize {
        let key = Self::key_for(accused_pk);
        let mut stored = 0;
        for replica in self.replicas(key) {
            if self.faulty.contains(&replica) {
                continue;
            }
            let store = self.stores.entry(replica).or_default();
            // Deduplicate by (accuser, msg): re-inserts are idempotent.
            let dup = store.iter().any(|a| {
                a.accuser() == accusation.accuser() && a.context().msg == accusation.context().msg
            });
            if !dup {
                store.push(accusation.clone());
            }
            stored += 1;
        }
        stored
    }

    /// Fetches all accusations stored under the accused's public key,
    /// deduplicated across replicas. Callers must verify each accusation
    /// themselves ([`Accusation::verify`]) before acting on it.
    pub fn fetch(&self, accused_pk: &PublicKey) -> Vec<&Accusation> {
        let key = Self::key_for(accused_pk);
        let mut seen: Vec<(Id, u64)> = Vec::new();
        let mut out = Vec::new();
        for replica in self.replicas(key) {
            if let Some(store) = self.stores.get(&replica) {
                for a in store {
                    let sig = (a.accuser(), a.context().msg.0);
                    if !seen.contains(&sig) {
                        seen.push(sig);
                        out.push(a);
                    }
                }
            }
        }
        out
    }

    /// Number of live (non-faulty) members.
    pub fn live_members(&self) -> usize {
        self.members.len() - self.faulty.len()
    }

    /// Every stored accusation with the member holding it, in a
    /// deterministic order (members sorted by identifier, each store in
    /// insertion order) — lets invariant checkers audit replica contents
    /// without knowing the keys under which they were filed.
    pub fn stored_accusations(&self) -> impl Iterator<Item = (Id, &Accusation)> + '_ {
        let mut holders: Vec<&Id> = self.stores.keys().collect();
        holders.sort();
        holders
            .into_iter()
            .flat_map(|id| self.stores[id].iter().map(move |a| (*id, a)))
    }

    /// The write quorum: a majority of the replica set.
    pub fn write_quorum(&self) -> usize {
        self.replication / 2 + 1
    }

    /// Live (non-faulty) replicas currently responsible for `key`.
    pub fn live_replicas(&self, key: Id) -> usize {
        self.replicas(key).iter().filter(|r| !self.faulty.contains(r)).count()
    }

    /// A content fingerprint over every stored replica copy, in the
    /// deterministic [`AccusationDht::stored_accusations`] order: the
    /// journalable state hook service-mode checkpointing compares after
    /// recovery. Two DHTs whose replica stores hold the same accusations
    /// in the same order fingerprint identically.
    pub fn content_fingerprint(&self) -> [u8; 32] {
        let mut bytes = Vec::new();
        for (holder, acc) in self.stored_accusations() {
            bytes.extend_from_slice(holder.as_bytes());
            bytes.extend_from_slice(&acc.context().msg.0.to_le_bytes());
            bytes.extend_from_slice(acc.accuser().as_bytes());
            bytes.extend_from_slice(&acc.context().at.as_micros().to_le_bytes());
        }
        sha256(&bytes).0
    }

    /// Inserts with per-replica retries over a lossy transport. `reaches`
    /// models the network: called as `reaches(replica, attempt)` (attempt
    /// is one-based) and returns whether the put message arrived — the
    /// fault-injection harness plugs
    /// [`ack_arrives`-style draws](RetryPolicy) in here. Each unreachable
    /// replica is retried on `policy`'s schedule; faulty replicas accept
    /// nothing regardless.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::DegradedReplicaSet`] — *without spending any
    /// transport attempt* — when fewer live replicas exist than the
    /// write quorum: retrying cannot manufacture replicas, so the caller
    /// learns immediately that the store is degraded. Returns
    /// [`DhtError::QuorumNotReached`] when enough replicas were live but
    /// too few were reachable after all retries; the copies that did
    /// land remain stored (and fetchable): that error tells the accuser
    /// to re-publish later, not that the write vanished.
    pub fn insert_with_retry<R, F>(
        &mut self,
        accused_pk: &PublicKey,
        accusation: Accusation,
        policy: &RetryPolicy,
        mut reaches: F,
        rng: &mut R,
    ) -> Result<usize, DhtError>
    where
        R: rand::Rng + ?Sized,
        F: FnMut(Id, u32) -> bool,
    {
        let key = Self::key_for(accused_pk);
        let quorum = self.write_quorum();
        let live = self.live_replicas(key);
        if live < quorum {
            return Err(DhtError::DegradedReplicaSet { live, quorum });
        }
        let mut stored = 0;
        for replica in self.replicas(key) {
            if self.faulty.contains(&replica) {
                continue;
            }
            let reached = policy
                .run(rng, |attempt| if reaches(replica, attempt) { Ok(()) } else { Err(()) })
                .is_ok();
            if !reached {
                continue;
            }
            let store = self.stores.entry(replica).or_default();
            let dup = store.iter().any(|a| {
                a.accuser() == accusation.accuser() && a.context().msg == accusation.context().msg
            });
            if !dup {
                store.push(accusation.clone());
            }
            stored += 1;
        }
        if stored >= quorum {
            Ok(stored)
        } else {
            Err(DhtError::QuorumNotReached { stored, quorum })
        }
    }

    /// Fetches with per-replica retries over a lossy transport, falling
    /// back across the replica set: any replica that answers contributes
    /// its copies, deduplicated as in [`AccusationDht::fetch`].
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::DegradedReplicaSet`] — before any transport
    /// attempt — when fewer live replicas exist than the write quorum:
    /// a read served by a sub-quorum replica set could miss a write that
    /// met quorum before the failures, so silence from it must not be
    /// mistaken for exoneration. Returns
    /// [`DhtError::NoReplicaAvailable`] when enough replicas were live
    /// but none answered any attempt.
    pub fn fetch_quorum<R, F>(
        &self,
        accused_pk: &PublicKey,
        policy: &RetryPolicy,
        mut reaches: F,
        rng: &mut R,
    ) -> Result<Vec<&Accusation>, DhtError>
    where
        R: rand::Rng + ?Sized,
        F: FnMut(Id, u32) -> bool,
    {
        let key = Self::key_for(accused_pk);
        let quorum = self.write_quorum();
        let live = self.live_replicas(key);
        if live < quorum {
            return Err(DhtError::DegradedReplicaSet { live, quorum });
        }
        let mut seen: Vec<(Id, u64)> = Vec::new();
        let mut out = Vec::new();
        let mut answered = 0usize;
        for replica in self.replicas(key) {
            if self.faulty.contains(&replica) {
                continue;
            }
            let reached = policy
                .run(rng, |attempt| if reaches(replica, attempt) { Ok(()) } else { Err(()) })
                .is_ok();
            if !reached {
                continue;
            }
            answered += 1;
            if let Some(store) = self.stores.get(&replica) {
                for a in store {
                    let sig = (a.accuser(), a.context().msg.0);
                    if !seen.contains(&sig) {
                        seen.push(sig);
                        out.push(a);
                    }
                }
            }
        }
        if answered == 0 {
            return Err(DhtError::NoReplicaAvailable);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accusation::DropContext;
    use crate::commitment::ForwardingCommitment;
    use crate::config::ConciliumConfig;
    use concilium_crypto::KeyPair;
    use concilium_types::{MsgId, SimTime};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn members(n: u64) -> Vec<Id> {
        (0..n).map(|i| Id::from_u64(i * 1_000)).collect()
    }

    fn accusation(rng: &mut StdRng, msg: u64) -> (Accusation, KeyPair) {
        let a = KeyPair::generate(rng);
        let b = KeyPair::generate(rng);
        let ctx = DropContext {
            msg: MsgId(msg),
            accuser: Id::from_u64(501),
            accused: Id::from_u64(502),
            next_hop: Id::from_u64(503),
            dest: Id::from_u64(504),
            at: SimTime::from_secs(10),
        };
        let commitment = ForwardingCommitment::issue(
            ctx.msg, ctx.accuser, ctx.accused, ctx.dest, SimTime::from_secs(9), &b, rng,
        );
        let acc = Accusation::build(
            ctx,
            commitment,
            vec![],
            vec![],
            &ConciliumConfig::default(),
            &a,
            rng,
        );
        (acc, b)
    }

    #[test]
    fn replicas_are_closest_members() {
        let dht = AccusationDht::new(members(10), 3);
        let key = Id::from_u64(2_400);
        let reps = dht.replicas(key);
        assert_eq!(reps.len(), 3);
        // Closest to 2400 among multiples of 1000: 2000, 3000, 1000.
        assert!(reps.contains(&Id::from_u64(2_000)));
        assert!(reps.contains(&Id::from_u64(3_000)));
        assert!(reps.contains(&Id::from_u64(1_000)));
    }

    #[test]
    fn insert_then_fetch_round_trips() {
        let mut rng = StdRng::seed_from_u64(111);
        let mut dht = AccusationDht::new(members(10), 3);
        let (acc, accused_keys) = accusation(&mut rng, 1);
        assert_eq!(dht.insert(&accused_keys.public(), acc.clone()), 3);
        let fetched = dht.fetch(&accused_keys.public());
        assert_eq!(fetched.len(), 1);
        assert_eq!(fetched[0], &acc);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(112);
        let mut dht = AccusationDht::new(members(10), 3);
        let (acc, keys) = accusation(&mut rng, 1);
        dht.insert(&keys.public(), acc.clone());
        dht.insert(&keys.public(), acc);
        assert_eq!(dht.fetch(&keys.public()).len(), 1);
    }

    #[test]
    fn survives_minority_replica_failures() {
        let mut rng = StdRng::seed_from_u64(113);
        let mut dht = AccusationDht::new(members(10), 3);
        let (acc, keys) = accusation(&mut rng, 1);
        dht.insert(&keys.public(), acc);
        // Kill one replica.
        let key = AccusationDht::key_for(&keys.public());
        let victim = dht.replicas(key)[0];
        dht.mark_faulty(victim);
        assert_eq!(dht.fetch(&keys.public()).len(), 1, "still fetchable");
        assert_eq!(dht.live_members(), 9);
    }

    #[test]
    fn lost_when_all_replicas_fail() {
        let mut rng = StdRng::seed_from_u64(114);
        let mut dht = AccusationDht::new(members(10), 2);
        let (acc, keys) = accusation(&mut rng, 1);
        dht.insert(&keys.public(), acc);
        let key = AccusationDht::key_for(&keys.public());
        for r in dht.replicas(key) {
            dht.mark_faulty(r);
        }
        assert!(dht.fetch(&keys.public()).is_empty());
    }

    #[test]
    fn different_accusers_accumulate() {
        let mut rng = StdRng::seed_from_u64(115);
        let mut dht = AccusationDht::new(members(16), 4);
        let (acc1, keys) = accusation(&mut rng, 1);
        let (acc2, _) = accusation(&mut rng, 2);
        dht.insert(&keys.public(), acc1);
        dht.insert(&keys.public(), acc2);
        assert_eq!(dht.fetch(&keys.public()).len(), 2);
    }

    #[test]
    fn key_for_is_deterministic_and_spread() {
        let mut rng = StdRng::seed_from_u64(116);
        let k1 = KeyPair::generate(&mut rng);
        let k2 = KeyPair::generate(&mut rng);
        assert_eq!(AccusationDht::key_for(&k1.public()), AccusationDht::key_for(&k1.public()));
        assert_ne!(AccusationDht::key_for(&k1.public()), AccusationDht::key_for(&k2.public()));
    }

    #[test]
    #[should_panic(expected = "needs members")]
    fn empty_membership_rejected() {
        let _ = AccusationDht::new(vec![], 2);
    }

    #[test]
    fn fetch_from_empty_dht_is_empty() {
        let mut rng = StdRng::seed_from_u64(117);
        let dht = AccusationDht::new(members(5), 2);
        let keys = KeyPair::generate(&mut rng);
        assert!(dht.fetch(&keys.public()).is_empty());
    }

    #[test]
    fn insert_with_retry_rides_out_transient_loss() {
        let mut rng = StdRng::seed_from_u64(118);
        let mut dht = AccusationDht::new(members(10), 3);
        let (acc, keys) = accusation(&mut rng, 1);
        // Every put message is lost twice, then gets through: with four
        // attempts per replica, all three replicas store it.
        let stored = dht
            .insert_with_retry(
                &keys.public(),
                acc,
                &RetryPolicy::default(),
                |_, attempt| attempt >= 3,
                &mut rng,
            )
            .unwrap();
        assert_eq!(stored, 3);
        assert_eq!(dht.fetch(&keys.public()).len(), 1);
    }

    #[test]
    fn insert_without_retry_misses_quorum_under_loss() {
        let mut rng = StdRng::seed_from_u64(119);
        let mut dht = AccusationDht::new(members(10), 3);
        let (acc, keys) = accusation(&mut rng, 1);
        let err = dht
            .insert_with_retry(
                &keys.public(),
                acc,
                &RetryPolicy::disabled(),
                |_, attempt| attempt >= 3,
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, DhtError::QuorumNotReached { stored: 0, quorum: 2 });
        assert!(err.to_string().contains("quorum"));
    }

    #[test]
    fn fetch_quorum_falls_back_across_replicas() {
        let mut rng = StdRng::seed_from_u64(120);
        let mut dht = AccusationDht::new(members(10), 3);
        let (acc, keys) = accusation(&mut rng, 1);
        dht.insert(&keys.public(), acc.clone());
        let key = AccusationDht::key_for(&keys.public());
        let reps = dht.replicas(key);
        // Only the *last* replica ever answers; the read still succeeds.
        let only = reps[2];
        let fetched = dht
            .fetch_quorum(
                &keys.public(),
                &RetryPolicy::default(),
                |replica, _| replica == only,
                &mut rng,
            )
            .unwrap();
        assert_eq!(fetched, vec![&acc]);
        // Nobody answers: the reader learns it cannot conclude anything.
        let err = dht
            .fetch_quorum(&keys.public(), &RetryPolicy::default(), |_, _| false, &mut rng)
            .unwrap_err();
        assert_eq!(err, DhtError::NoReplicaAvailable);
    }

    #[test]
    fn faulty_replicas_do_not_count_toward_the_write_quorum() {
        let mut rng = StdRng::seed_from_u64(121);
        let mut dht = AccusationDht::new(members(10), 3);
        let (acc, keys) = accusation(&mut rng, 1);
        let key = AccusationDht::key_for(&keys.public());
        for r in dht.replicas(key).into_iter().take(2) {
            dht.mark_faulty(r);
        }
        assert_eq!(dht.write_quorum(), 2);
        // One live replica out of three cannot meet a quorum of two, so
        // the write is refused up front as degraded — no transport
        // attempt is spent and no partial copy is left behind.
        let err = dht
            .insert_with_retry(&keys.public(), acc, &RetryPolicy::default(), |_, _| true, &mut rng)
            .unwrap_err();
        assert_eq!(err, DhtError::DegradedReplicaSet { live: 1, quorum: 2 });
        assert!(dht.fetch(&keys.public()).is_empty());
    }

    #[test]
    fn shrinking_replica_set_degrades_without_retrying_to_exhaustion() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut dht = AccusationDht::new(members(10), 3);
        let (acc, keys) = accusation(&mut rng, 1);
        let key = AccusationDht::key_for(&keys.public());
        let replicas = dht.replicas(key);

        // All replicas live: the write reaches full replication.
        let stored = dht
            .insert_with_retry(
                &keys.public(),
                acc.clone(),
                &RetryPolicy::default(),
                |_, _| true,
                &mut rng,
            )
            .unwrap();
        assert_eq!(stored, 3);

        // One failure: a quorum of two is still attainable.
        dht.mark_faulty(replicas[0]);
        let stored = dht
            .insert_with_retry(
                &keys.public(),
                acc.clone(),
                &RetryPolicy::default(),
                |_, _| true,
                &mut rng,
            )
            .unwrap();
        assert_eq!(stored, 2);

        // Two failures: the set is degraded. Both the write and the read
        // must refuse immediately — the transport closure is never
        // invoked, proving neither path retried to exhaustion.
        dht.mark_faulty(replicas[1]);
        let mut transport_calls = 0u32;
        let err = dht
            .insert_with_retry(
                &keys.public(),
                acc.clone(),
                &RetryPolicy::default(),
                |_, _| {
                    transport_calls += 1;
                    true
                },
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, DhtError::DegradedReplicaSet { live: 1, quorum: 2 });
        let err = dht
            .fetch_quorum(
                &keys.public(),
                &RetryPolicy::default(),
                |_, _| {
                    transport_calls += 1;
                    true
                },
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, DhtError::DegradedReplicaSet { live: 1, quorum: 2 });
        assert_eq!(transport_calls, 0, "degraded paths must not touch the network");
        assert_eq!(dht.live_replicas(key), 1);
    }

    #[test]
    fn content_fingerprint_tracks_replica_stores() {
        let mut rng = StdRng::seed_from_u64(124);
        let mut dht = AccusationDht::new(members(10), 3);
        let empty = dht.content_fingerprint();
        let (acc, keys) = accusation(&mut rng, 1);
        dht.insert(&keys.public(), acc.clone());
        let filled = dht.content_fingerprint();
        assert_ne!(empty, filled, "stored content must perturb the fingerprint");
        // Idempotent re-insert leaves the fingerprint untouched.
        dht.insert(&keys.public(), acc);
        assert_eq!(dht.content_fingerprint(), filled);
        // An identically-populated DHT fingerprints identically.
        let clone = dht.clone();
        assert_eq!(clone.content_fingerprint(), filled);
    }

    #[test]
    fn stored_accusations_iterates_every_replica_copy() {
        let mut rng = StdRng::seed_from_u64(122);
        let mut dht = AccusationDht::new(members(10), 3);
        let (acc, keys) = accusation(&mut rng, 1);
        assert_eq!(dht.stored_accusations().count(), 0);
        dht.insert(&keys.public(), acc.clone());
        let copies: Vec<(Id, &Accusation)> = dht.stored_accusations().collect();
        assert_eq!(copies.len(), 3, "one copy per replica");
        assert!(copies.iter().all(|(_, a)| *a == &acc));
        let key = AccusationDht::key_for(&keys.public());
        let reps = dht.replicas(key);
        assert!(copies.iter().all(|(holder, _)| reps.contains(holder)));
        // Holder order is deterministic: sorted by identifier.
        let holders: Vec<Id> = copies.iter().map(|(h, _)| *h).collect();
        let mut sorted = holders.clone();
        sorted.sort();
        assert_eq!(holders, sorted);
    }

    #[test]
    fn replication_capped_by_membership() {
        // Asking for more replicas than members just uses everyone.
        let dht = AccusationDht::new(members(3), 10);
        assert_eq!(dht.replicas(Id::from_u64(1)).len(), 3);
    }
}
