//! Per-node Concilium protocol state.
//!
//! [`ConciliumNode`] is the stateful heart of the protocol on one host:
//! it archives validated snapshots from routing peers, judges message
//! drops against that archive (Eqs. 2–3), keeps per-peer verdict windows,
//! and escalates to formal accusations when the m-of-w quota fills. It
//! also archives the accusations it issues so it can rebut unfair blame
//! later (§3.5).

use std::collections::HashMap;
use std::fmt;

use concilium_crypto::{Certificate, KeyPair, PublicKey};
use concilium_tomography::TomographySnapshot;
use concilium_types::{Id, LinkId, SimTime};

use crate::accusation::{Accusation, DropContext};
use crate::blame::{blame_from_path_evidence, LinkEvidence};
use crate::commitment::ForwardingCommitment;
use crate::config::ConciliumConfig;
use crate::verdict::{Verdict, VerdictWindow};

/// The result of judging one dropped message.
#[derive(Clone, Debug)]
pub struct JudgeOutcome {
    /// The Eq. 2 blame assigned to the forwarder.
    pub blame: f64,
    /// The thresholded verdict.
    pub verdict: Verdict,
    /// A formal accusation, when the verdict window crossed the m-of-w
    /// quota.
    pub accusation: Option<Accusation>,
}

/// Why a received snapshot was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The signature does not match the claimed origin.
    BadSignature,
    /// The snapshot is too old (or future-dated) to archive.
    Stale,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadSignature => f.write_str("snapshot signature is invalid"),
            SnapshotError::Stale => f.write_str("snapshot is stale"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One host's Concilium state.
pub struct ConciliumNode {
    cert: Certificate,
    keys: KeyPair,
    config: ConciliumConfig,
    /// Archived snapshots, per origin, sorted by time.
    archive: HashMap<Id, Vec<TomographySnapshot>>,
    /// Sliding verdict windows, per judged peer.
    windows: HashMap<Id, VerdictWindow>,
    /// Accusations this node issued (its rebuttal archive).
    issued: Vec<Accusation>,
}

impl ConciliumNode {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics if the certificate and key pair disagree, or the
    /// configuration is invalid.
    pub fn new(cert: Certificate, keys: KeyPair, config: ConciliumConfig) -> Self {
        assert_eq!(cert.public_key(), keys.public(), "certificate/key mismatch");
        config.validate();
        ConciliumNode {
            cert,
            keys,
            config,
            archive: HashMap::new(),
            windows: HashMap::new(),
            issued: Vec::new(),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> Id {
        self.cert.id()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ConciliumConfig {
        &self.config
    }

    /// Receives a tomographic snapshot from a peer (or from the local
    /// prober — a node archives its own snapshots the same way).
    ///
    /// # Errors
    ///
    /// Rejects snapshots with bad signatures or outside a freshness
    /// horizon of 10×Δ.
    pub fn receive_snapshot(
        &mut self,
        snap: TomographySnapshot,
        origin_key: &PublicKey,
        now: SimTime,
    ) -> Result<(), SnapshotError> {
        if !snap.verify(origin_key) {
            return Err(SnapshotError::BadSignature);
        }
        let horizon = self.config.delta.mul(10);
        if now.abs_diff(snap.time()) > horizon {
            return Err(SnapshotError::Stale);
        }
        let entry = self.archive.entry(snap.origin()).or_default();
        let pos = entry.partition_point(|s| s.time() <= snap.time());
        entry.insert(pos, snap);
        Ok(())
    }

    /// Number of archived snapshots.
    pub fn archived_snapshots(&self) -> usize {
        self.archive.values().map(Vec::len).sum()
    }

    /// The snapshots admissible as evidence for a drop at `at` judging
    /// `accused`: within `[at − Δ, at + Δ]`, not originated by the
    /// accused, and covering at least one of `path_links`.
    pub fn admissible_evidence(
        &self,
        accused: Id,
        path_links: &[LinkId],
        at: SimTime,
    ) -> Vec<TomographySnapshot> {
        let mut out = Vec::new();
        for (origin, snaps) in &self.archive {
            if *origin == accused {
                continue;
            }
            for s in snaps {
                if s.time().abs_diff(at) <= self.config.delta
                    && path_links.iter().any(|&l| s.observation_for(l).is_some())
                {
                    out.push(s.clone());
                }
            }
        }
        // Deterministic order regardless of HashMap iteration.
        out.sort_by_key(|s| (s.origin(), s.time()));
        out
    }

    /// Judges a message drop: computes blame from the archived evidence,
    /// records the verdict in the accused's window, and — when the m-of-w
    /// quota fills — builds a formal accusation quoting the evidence.
    ///
    /// `commitment` is the accused's forwarding commitment for the
    /// message; `path_links` is the B→C link map from the accused's
    /// validated routing advertisement.
    ///
    /// # Panics
    ///
    /// Panics if the context does not name this node as the accuser.
    pub fn judge<R: rand::Rng + ?Sized>(
        &mut self,
        context: DropContext,
        path_links: &[LinkId],
        commitment: ForwardingCommitment,
        rng: &mut R,
    ) -> JudgeOutcome {
        assert_eq!(context.accuser, self.id(), "only the local node may judge here");
        let evidence = self.admissible_evidence(context.accused, path_links, context.at);
        let per_link: Vec<LinkEvidence> = path_links
            .iter()
            .map(|&link| LinkEvidence {
                link,
                observations: evidence
                    .iter()
                    .filter_map(|s| s.observation_for(link))
                    .map(|o| o.is_up())
                    .collect(),
            })
            .collect();
        let blame = blame_from_path_evidence(&per_link, self.config.probe_accuracy);
        let verdict = Verdict::from_blame(blame, self.config.blame_threshold);

        let window = self
            .windows
            .entry(context.accused)
            .or_insert_with(|| VerdictWindow::new(self.config.window));
        window.push(verdict);

        let accusation = if verdict.is_guilty() && window.should_accuse(self.config.guilty_quota)
        {
            let acc = Accusation::build(
                context,
                commitment,
                path_links.to_vec(),
                evidence,
                &self.config,
                &self.keys,
                rng,
            );
            self.issued.push(acc.clone());
            Some(acc)
        } else {
            None
        };

        JudgeOutcome { blame, verdict, accusation }
    }

    /// The verdict window for `peer`, if any verdicts were issued.
    pub fn window_for(&self, peer: Id) -> Option<&VerdictWindow> {
        self.windows.get(&peer)
    }

    /// Looks up an archived accusation usable to rebut `against` (same
    /// message and destination, issued by this node).
    pub fn rebuttal_for(&self, against: &Accusation) -> Option<&Accusation> {
        self.issued.iter().find(|a| {
            a.context().msg == against.context().msg
                && a.context().dest == against.context().dest
        })
    }

    /// All accusations this node has issued.
    pub fn issued_accusations(&self) -> &[Accusation] {
        &self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_crypto::CertificateAuthority;
    use concilium_tomography::LinkObservation;
    use concilium_types::{HostAddr, MsgId, RouterId, SimDuration};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fx {
        rng: StdRng,
        node: ConciliumNode,
        peers: HashMap<Id, KeyPair>,
    }

    impl Fx {
        fn new() -> Self {
            let mut rng = StdRng::seed_from_u64(131);
            let ca = CertificateAuthority::new(&mut rng);
            let keys = KeyPair::generate(&mut rng);
            let cert = ca.issue_with_id(
                Id::from_u64(1),
                HostAddr(RouterId(0)),
                keys.public(),
                &mut rng,
            );
            let node = ConciliumNode::new(cert, keys, ConciliumConfig::default());
            let mut peers = HashMap::new();
            for i in 2..=6u64 {
                peers.insert(Id::from_u64(i), KeyPair::generate(&mut rng));
            }
            Fx { rng, node, peers }
        }

        fn snapshot(&mut self, origin: u64, at: SimTime, link: u32, up: bool) -> TomographySnapshot {
            let keys = self.peers[&Id::from_u64(origin)].clone();
            TomographySnapshot::new_signed(
                Id::from_u64(origin),
                at,
                vec![LinkObservation::binary(LinkId(link), up)],
                &keys,
                &mut self.rng,
            )
        }

        fn feed(&mut self, origin: u64, at: SimTime, link: u32, up: bool) {
            let key = self.peers[&Id::from_u64(origin)].public();
            let s = self.snapshot(origin, at, link, up);
            self.node.receive_snapshot(s, &key, at).unwrap();
        }

        fn context(&self, at: SimTime) -> DropContext {
            DropContext {
                msg: MsgId(1),
                accuser: Id::from_u64(1),
                accused: Id::from_u64(2),
                next_hop: Id::from_u64(3),
                dest: Id::from_u64(6),
                at,
            }
        }

        fn commitment(&mut self, at: SimTime) -> ForwardingCommitment {
            let ctx = self.context(at);
            let b = self.peers[&ctx.accused].clone();
            ForwardingCommitment::issue(
                ctx.msg, ctx.accuser, ctx.accused, ctx.dest, at, &b, &mut self.rng,
            )
        }
    }

    #[test]
    fn snapshot_validation() {
        let mut fx = Fx::new();
        let t = SimTime::from_secs(100);
        let good = fx.snapshot(2, t, 7, true);
        let right_key = fx.peers[&Id::from_u64(2)].public();
        let wrong_key = fx.peers[&Id::from_u64(3)].public();
        assert_eq!(
            fx.node.receive_snapshot(good.clone(), &wrong_key, t),
            Err(SnapshotError::BadSignature)
        );
        assert_eq!(fx.node.receive_snapshot(good.clone(), &right_key, t), Ok(()));
        // Much later, the same snapshot is stale (horizon = 10Δ = 600 s).
        assert_eq!(
            fx.node
                .receive_snapshot(good, &right_key, t + SimDuration::from_secs(700)),
            Err(SnapshotError::Stale)
        );
        assert_eq!(fx.node.archived_snapshots(), 1);
    }

    #[test]
    fn judge_blames_network_when_links_probed_down() {
        let mut fx = Fx::new();
        let t = SimTime::from_secs(100);
        fx.feed(3, t, 7, false);
        fx.feed(4, t, 7, false);
        let ctx = fx.context(t);
        let commitment = fx.commitment(t);
        let mut rng = StdRng::seed_from_u64(1);
        let out = fx.node.judge(ctx, &[LinkId(7)], commitment, &mut rng);
        assert!((out.blame - 0.1).abs() < 1e-12);
        assert_eq!(out.verdict, Verdict::Innocent);
        assert!(out.accusation.is_none());
    }

    #[test]
    fn judge_blames_forwarder_when_path_good() {
        let mut fx = Fx::new();
        let t = SimTime::from_secs(100);
        fx.feed(3, t, 7, true);
        let ctx = fx.context(t);
        let commitment = fx.commitment(t);
        let mut rng = StdRng::seed_from_u64(2);
        let out = fx.node.judge(ctx, &[LinkId(7)], commitment, &mut rng);
        assert!((out.blame - 0.9).abs() < 1e-12);
        assert_eq!(out.verdict, Verdict::Guilty);
        // First guilty verdict; quota (6) not reached yet.
        assert!(out.accusation.is_none());
        assert_eq!(fx.node.window_for(Id::from_u64(2)).unwrap().guilty_count(), 1);
    }

    #[test]
    fn accused_own_snapshots_are_ignored() {
        let mut fx = Fx::new();
        let t = SimTime::from_secs(100);
        // Only the accused (host 2) claims the link was down.
        fx.feed(2, t, 7, false);
        let ctx = fx.context(t);
        let commitment = fx.commitment(t);
        let mut rng = StdRng::seed_from_u64(3);
        let out = fx.node.judge(ctx, &[LinkId(7)], commitment, &mut rng);
        // No admissible evidence → full blame; B cannot exonerate itself.
        assert_eq!(out.blame, 1.0);
        assert_eq!(out.verdict, Verdict::Guilty);
    }

    #[test]
    fn quota_triggers_self_verifying_accusation() {
        let mut fx = Fx::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut accusation = None;
        for k in 0..6u64 {
            let t = SimTime::from_secs(100 + k * 10);
            fx.feed(3, t, 7, true);
            fx.feed(4, t, 7, true);
            let mut ctx = fx.context(t);
            ctx.msg = MsgId(k);
            let b = fx.peers[&ctx.accused].clone();
            let commitment = ForwardingCommitment::issue(
                ctx.msg, ctx.accuser, ctx.accused, ctx.dest, t, &b, &mut fx.rng,
            );
            let out = fx.node.judge(ctx, &[LinkId(7)], commitment, &mut rng);
            assert_eq!(out.verdict, Verdict::Guilty);
            if k < 5 {
                assert!(out.accusation.is_none(), "k={k}");
            } else {
                accusation = out.accusation;
            }
        }
        let acc = accusation.expect("6th guilty verdict triggers accusation");
        // The accusation verifies for third parties.
        let peers = fx.peers.clone();
        let node_key = fx.node.keys.public();
        let key_of = move |id: Id| {
            if id == Id::from_u64(1) {
                Some(node_key)
            } else {
                peers.get(&id).map(|k| k.public())
            }
        };
        assert_eq!(acc.verify(&key_of, fx.node.config()), Ok(()));
        // And it is archived for future rebuttals.
        assert_eq!(fx.node.issued_accusations().len(), 1);
        assert!(fx.node.rebuttal_for(&acc).is_some());
    }

    #[test]
    fn evidence_window_excludes_distant_probes() {
        let mut fx = Fx::new();
        let t = SimTime::from_secs(1_000);
        fx.feed(3, SimTime::from_secs(500), 7, false); // far outside Δ
        let ev = fx.node.admissible_evidence(Id::from_u64(2), &[LinkId(7)], t);
        assert!(ev.is_empty());
        fx.feed(4, SimTime::from_secs(950), 7, false); // inside Δ = 60 s
        let ev = fx.node.admissible_evidence(Id::from_u64(2), &[LinkId(7)], t);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].origin(), Id::from_u64(4));
    }
}
