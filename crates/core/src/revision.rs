//! Recursive stewardship and accusation revision (§3.5).
//!
//! A judge can only ascribe blame to its immediate next hop, so an honest
//! forwarder whose *downstream* dropped the message would be blamed
//! unfairly. Under recursive stewardship every forwarder awaits the
//! destination's acknowledgment; when it never arrives, a *chain* of
//! guilty verdicts forms along the route: A blames B, B blames C, C blames
//! D. The chain stops at the true culprit D, because D's peers have not
//! probed any links as down and D cannot fabricate such probes (its own
//! probes are inadmissible against it). Each innocent node pushes its
//! verdict upstream; upstream nodes verify it and amend their accusations.
//! The amended accusation carries the signed data of every step, making it
//! self-verifying end to end.

use std::fmt;

use serde::{Deserialize, Serialize};

use concilium_crypto::PublicKey;
use concilium_types::Id;

use crate::accusation::{Accusation, AccusationError};
use crate::config::ConciliumConfig;
use crate::retry::RetryPolicy;

/// Projects an identifier onto the low 8 bytes of its ring position —
/// the word [`AccusationChain::encode_to`] journals per participant.
/// (Identifiers built with [`Id::from_u64`] round-trip exactly.)
fn id_word(id: Id) -> u64 {
    let bytes = id.as_bytes();
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[bytes.len() - 8..]);
    u64::from_be_bytes(word)
}

/// How a retried steward handoff ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandoffOutcome {
    /// The blamed node's revision arrived and was appended.
    Amended {
        /// Fetch attempts used.
        attempts: u32,
    },
    /// Every fetch attempt went unanswered: the blamed node withheld its
    /// revision, the chain stands, and — per §3.5 — the withholder keeps
    /// the blame. Silence is self-punishing, so exhausting the retries is
    /// a legitimate terminal state, not an error.
    Withheld {
        /// Fetch attempts used.
        attempts: u32,
    },
}

/// An amended accusation: the original plus the revisions pushed upstream,
/// ordered from the original judge's verdict down to the verdict against
/// the true culprit.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AccusationChain {
    links: Vec<Accusation>,
}

impl AccusationChain {
    /// Starts a chain from the original accusation.
    pub fn new(original: Accusation) -> Self {
        AccusationChain { links: vec![original] }
    }

    /// Appends a downstream revision: the last accused node's own verdict
    /// against *its* next hop.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BrokenLinkage`] if the revision's accuser is
    /// not the currently blamed node, or [`ChainError::ContextMismatch`]
    /// if it concerns a different message or destination.
    pub fn amend(&mut self, revision: Accusation) -> Result<(), ChainError> {
        // lint:allow(no-panic, reason = "constructor seeds links with one entry and nothing removes")
        let last = self.links.last().expect("chains are never empty");
        if revision.accuser() != last.accused() {
            return Err(ChainError::BrokenLinkage {
                expected_accuser: last.accused(),
                found: revision.accuser(),
            });
        }
        if revision.context().msg != last.context().msg
            || revision.context().dest != last.context().dest
        {
            return Err(ChainError::ContextMismatch { at: self.links.len() });
        }
        self.links.push(revision);
        Ok(())
    }

    /// The node currently held responsible: the last link's accused.
    pub fn culprit(&self) -> Id {
        // lint:allow(no-panic, reason = "constructor seeds links with one entry and nothing removes")
        self.links.last().expect("chains are never empty").accused()
    }

    /// The original judge who started the chain.
    pub fn original_accuser(&self) -> Id {
        self.links[0].accuser()
    }

    /// The accusations, original first.
    pub fn links(&self) -> &[Accusation] {
        &self.links
    }

    /// Number of links in the chain.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Chains always hold at least the original accusation.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Appends the chain's canonical encoding to `out`: length, then per
    /// link the accuser, accused, message id, and drop time. The
    /// journalable state hook service-mode checkpointing uses — two
    /// chains encode identically iff they tell the same blame story,
    /// signatures aside (those are re-verified on load, not re-hashed).
    pub fn encode_to(&self, out: &mut Vec<u64>) {
        out.push(self.links.len() as u64);
        for link in &self.links {
            let ctx = link.context();
            out.push(id_word(link.accuser()));
            out.push(id_word(ctx.accused));
            out.push(ctx.msg.0);
            out.push(ctx.at.as_micros());
        }
    }

    /// Retried steward handoff: asks the currently blamed node for its
    /// own revision, retrying unanswered requests on `policy`'s backoff
    /// schedule. `fetch` is called as `fetch(blamed, attempt)` (attempt
    /// one-based) and returns the revision if it arrived; the
    /// fault-injection harness models transport loss and withholders
    /// here. A revision that arrives is validated by
    /// [`AccusationChain::amend`] before it counts.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] only when an *arrived* revision fails the
    /// linkage checks — never for silence, which resolves to
    /// [`HandoffOutcome::Withheld`].
    pub fn amend_with_retry<R, F>(
        &mut self,
        policy: &RetryPolicy,
        mut fetch: F,
        rng: &mut R,
    ) -> Result<HandoffOutcome, ChainError>
    where
        R: rand::Rng + ?Sized,
        F: FnMut(Id, u32) -> Option<Accusation>,
    {
        let blamed = self.culprit();
        match policy.run(rng, |attempt| fetch(blamed, attempt).ok_or(())) {
            Ok((revision, attempts)) => {
                self.amend(revision)?;
                Ok(HandoffOutcome::Amended { attempts })
            }
            Err(err) => Ok(HandoffOutcome::Withheld { attempts: err.attempts }),
        }
    }

    /// Fully verifies the chain as a third party: every link verifies
    /// individually (commitments, signatures, reproducible blame) and the
    /// linkage invariants hold.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn verify(
        &self,
        key_of: &dyn Fn(Id) -> Option<PublicKey>,
        config: &ConciliumConfig,
    ) -> Result<(), ChainError> {
        let _span = concilium_obs::span("chain.verify");
        for (i, link) in self.links.iter().enumerate() {
            link.verify(key_of, config)
                .map_err(|err| ChainError::LinkInvalid { at: i, err })?;
            if i > 0 {
                let prev = &self.links[i - 1];
                if link.accuser() != prev.accused() {
                    return Err(ChainError::BrokenLinkage {
                        expected_accuser: prev.accused(),
                        found: link.accuser(),
                    });
                }
                if link.context().msg != prev.context().msg
                    || link.context().dest != prev.context().dest
                {
                    return Err(ChainError::ContextMismatch { at: i });
                }
            }
        }
        Ok(())
    }
}

/// Why a chain (or an amendment) is invalid.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ChainError {
    /// A revision's accuser is not the currently blamed node.
    BrokenLinkage {
        /// Who should have issued the revision.
        expected_accuser: Id,
        /// Who actually did.
        found: Id,
    },
    /// A revision concerns a different message or destination.
    ContextMismatch {
        /// Index of the offending link.
        at: usize,
    },
    /// A link fails individual verification.
    LinkInvalid {
        /// Index of the offending link.
        at: usize,
        /// The underlying error.
        err: AccusationError,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BrokenLinkage { expected_accuser, found } => write!(
                f,
                "revision must come from {expected_accuser}, came from {found}"
            ),
            ChainError::ContextMismatch { at } => {
                write!(f, "link {at} concerns a different message")
            }
            ChainError::LinkInvalid { at, err } => write!(f, "link {at} is invalid: {err}"),
        }
    }
}

impl std::error::Error for ChainError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accusation::DropContext;
    use crate::commitment::ForwardingCommitment;
    use concilium_crypto::KeyPair;
    use concilium_types::{MsgId, SimTime};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Builds the §3.5 scenario: route A → B → C → D → Z with all IP
    /// links good, D drops the message.
    struct Scenario {
        rng: StdRng,
        keys: HashMap<Id, KeyPair>,
        config: ConciliumConfig,
    }

    const A: u64 = 1;
    const B: u64 = 2;
    const C: u64 = 3;
    const D: u64 = 4;
    const Z: u64 = 9;

    impl Scenario {
        fn new() -> Self {
            let mut rng = StdRng::seed_from_u64(81);
            let mut keys = HashMap::new();
            for i in [A, B, C, D, Z] {
                keys.insert(Id::from_u64(i), KeyPair::generate(&mut rng));
            }
            Scenario { rng, keys, config: ConciliumConfig::default() }
        }

        fn key_of(&self) -> impl Fn(Id) -> Option<PublicKey> + '_ {
            |id| self.keys.get(&id).map(|k| k.public())
        }

        /// `accuser` blames `accused` (whose next hop is `next`) with no
        /// down-probed links — the "path was good" case that yields full
        /// blame. Each link carries the accused's forwarding commitment.
        fn accuse(&mut self, accuser: u64, accused: u64, next: u64) -> Accusation {
            let ctx = DropContext {
                msg: MsgId(42),
                accuser: Id::from_u64(accuser),
                accused: Id::from_u64(accused),
                next_hop: Id::from_u64(next),
                dest: Id::from_u64(Z),
                at: SimTime::from_secs(100),
            };
            let commitment = ForwardingCommitment::issue(
                ctx.msg,
                ctx.accuser,
                ctx.accused,
                ctx.dest,
                SimTime::from_secs(99),
                &self.keys[&ctx.accused].clone(),
                &mut self.rng,
            );
            let accuser_keys = self.keys[&ctx.accuser].clone();
            Accusation::build(
                ctx,
                commitment,
                vec![],
                vec![],
                &self.config,
                &accuser_keys,
                &mut self.rng,
            )
        }
    }

    #[test]
    fn blame_migrates_to_the_culprit() {
        let mut s = Scenario::new();
        let mut chain = AccusationChain::new(s.accuse(A, B, C));
        assert_eq!(chain.culprit(), Id::from_u64(B));
        chain.amend(s.accuse(B, C, D)).unwrap();
        assert_eq!(chain.culprit(), Id::from_u64(C));
        chain.amend(s.accuse(C, D, Z)).unwrap();
        // Blame lands on D, the true culprit.
        assert_eq!(chain.culprit(), Id::from_u64(D));
        assert_eq!(chain.original_accuser(), Id::from_u64(A));
        assert_eq!(chain.len(), 3);
        // The whole amended accusation is self-verifying.
        assert_eq!(chain.verify(&s.key_of(), &s.config), Ok(()));
    }

    #[test]
    fn out_of_order_revision_rejected() {
        let mut s = Scenario::new();
        let mut chain = AccusationChain::new(s.accuse(A, B, C));
        // C's verdict cannot amend a chain currently blaming B.
        let bad = s.accuse(C, D, Z);
        assert!(matches!(
            chain.amend(bad),
            Err(ChainError::BrokenLinkage { .. })
        ));
    }

    #[test]
    fn cross_message_revision_rejected() {
        let mut s = Scenario::new();
        let mut chain = AccusationChain::new(s.accuse(A, B, C));
        // B's verdict about a different message cannot exonerate it here.
        let mut other = s.accuse(B, C, D);
        // Rebuild with a different msg id.
        let ctx = DropContext { msg: MsgId(7), ..*other.context() };
        let commitment = ForwardingCommitment::issue(
            ctx.msg,
            ctx.accuser,
            ctx.accused,
            ctx.dest,
            SimTime::from_secs(99),
            &s.keys[&ctx.accused].clone(),
            &mut s.rng,
        );
        let keys = s.keys[&ctx.accuser].clone();
        other = Accusation::build(
            ctx,
            commitment,
            vec![],
            vec![],
            &s.config,
            &keys,
            &mut s.rng,
        );
        assert_eq!(
            chain.amend(other),
            Err(ChainError::ContextMismatch { at: 1 })
        );
    }

    #[test]
    fn chain_verification_catches_bad_links() {
        let mut s = Scenario::new();
        let mut chain = AccusationChain::new(s.accuse(A, B, C));
        chain.amend(s.accuse(B, C, D)).unwrap();
        // Remove C's key: the chain can no longer be verified.
        let partial_keys: HashMap<Id, PublicKey> = s
            .keys
            .iter()
            .filter(|(id, _)| **id != Id::from_u64(C))
            .map(|(id, k)| (*id, k.public()))
            .collect();
        let lookup = |id: Id| partial_keys.get(&id).copied();
        assert!(matches!(
            chain.verify(&lookup, &s.config),
            Err(ChainError::LinkInvalid { .. })
        ));
    }

    #[test]
    fn handoff_retry_recovers_a_lost_revision() {
        let mut s = Scenario::new();
        let mut chain = AccusationChain::new(s.accuse(A, B, C));
        let revision = s.accuse(B, C, D);
        // The first two handoff requests are lost in transit.
        let mut requests = 0u32;
        let out = chain
            .amend_with_retry(
                &RetryPolicy::default(),
                |blamed, attempt| {
                    assert_eq!(blamed, Id::from_u64(B));
                    requests += 1;
                    (attempt >= 3).then(|| revision.clone())
                },
                &mut s.rng,
            )
            .unwrap();
        assert_eq!(out, HandoffOutcome::Amended { attempts: 3 });
        assert_eq!(requests, 3);
        assert_eq!(chain.culprit(), Id::from_u64(C), "blame migrated");
    }

    #[test]
    fn handoff_silence_leaves_the_withholder_blamed() {
        let mut s = Scenario::new();
        let mut chain = AccusationChain::new(s.accuse(A, B, C));
        let out = chain
            .amend_with_retry(&RetryPolicy::default(), |_, _| None, &mut s.rng)
            .unwrap();
        assert_eq!(out, HandoffOutcome::Withheld { attempts: 4 });
        assert_eq!(chain.culprit(), Id::from_u64(B), "silence is self-punishing");
    }

    #[test]
    fn handoff_rejects_an_arrived_but_invalid_revision() {
        let mut s = Scenario::new();
        let mut chain = AccusationChain::new(s.accuse(A, B, C));
        // C answers in B's stead: linkage is broken even though the
        // transport succeeded.
        let bogus = s.accuse(C, D, Z);
        let err = chain
            .amend_with_retry(&RetryPolicy::default(), |_, _| Some(bogus.clone()), &mut s.rng)
            .unwrap_err();
        assert!(matches!(err, ChainError::BrokenLinkage { .. }));
        assert_eq!(chain.culprit(), Id::from_u64(B), "the chain is untouched");
    }

    #[test]
    fn faulty_node_withholding_revision_stays_blamed() {
        // §3.5: if C does not push its verdict against D upstream, the
        // chain ends at C and C keeps the blame — refusing to revise is
        // self-punishing.
        let mut s = Scenario::new();
        let mut chain = AccusationChain::new(s.accuse(A, B, C));
        chain.amend(s.accuse(B, C, D)).unwrap();
        // No revision from C arrives.
        assert_eq!(chain.culprit(), Id::from_u64(C));
        assert_eq!(chain.verify(&s.key_of(), &s.config), Ok(()));
    }

    #[test]
    fn encode_to_captures_the_blame_story() {
        let mut s = Scenario::new();
        let mut chain = AccusationChain::new(s.accuse(A, B, C));
        let mut one = Vec::new();
        chain.encode_to(&mut one);
        assert_eq!(one, vec![1, A, B, 42, 100_000_000]);

        chain.amend(s.accuse(B, C, D)).unwrap();
        let mut two = Vec::new();
        chain.encode_to(&mut two);
        assert_eq!(two, vec![2, A, B, 42, 100_000_000, B, C, 42, 100_000_000]);
        assert_ne!(one, two, "amending must change the encoding");
    }
}
