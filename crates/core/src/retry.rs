//! Timeout, retry, and backoff: the generic recovery policy.
//!
//! Concilium's judgments are only as good as the evidence that reaches
//! the judge, and in a faulty network the *protocol's own* messages —
//! acknowledgments, DHT puts, revision handoffs — are lost like any
//! other traffic. Judging on first silence confuses transport loss with
//! misbehavior; this module supplies the retransmit-before-judging
//! discipline the recovery paths share:
//!
//! * [`RetryPolicy`] — capped exponential backoff with jitter drawn from
//!   the caller's (simulation) RNG, so retried runs stay deterministic.
//! * [`RetryPolicy::run`] — drives a fallible operation to success or
//!   exhaustion.
//! * [`RetryPolicy::attempt_times`] — the virtual-time schedule of
//!   attempts, for event-driven callers such as
//!   [`RetransmitQueue`](crate::ack::RetransmitQueue).
//!
//! Consumers: the acknowledgment path ([`crate::ack`]), the accusation
//! DHT ([`crate::dht`]), and revision handoff ([`crate::revision`]).

use std::fmt;

use rand::Rng;

use concilium_types::{SimDuration, SimTime};

/// A capped exponential backoff policy.
///
/// Attempt `k` (zero-based) waits `base_delay × multiplier^k`, capped at
/// `max_delay`, then jittered *downward* by up to `jitter` (a fraction in
/// `[0, 1]`) so synchronized retriers desynchronize without ever
/// exceeding the cap.
///
/// # Examples
///
/// ```
/// use concilium::retry::RetryPolicy;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let policy = RetryPolicy::default();
/// let mut calls = 0;
/// let out = policy.run(&mut rng, |_| {
///     calls += 1;
///     if calls < 3 { Err("transient") } else { Ok("done") }
/// });
/// assert_eq!(out.unwrap(), ("done", 3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (must be at least 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: SimDuration,
    /// Growth factor between consecutive delays.
    pub multiplier: f64,
    /// Upper bound on any single delay.
    pub max_delay: SimDuration,
    /// Fraction of each delay randomized away (`0` = deterministic
    /// schedule, `0.5` = delays land in `[0.5 d, d]`).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: SimDuration::from_millis(500),
            multiplier: 2.0,
            max_delay: SimDuration::from_secs(10),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the first failure is final. The
    /// ablation arm of the fault-injection experiments.
    pub fn disabled() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The backoff delay before retry `attempt` (zero-based: `0` is the
    /// gap between the first and second attempts), jittered from `rng`.
    ///
    /// The exponent is saturated before it reaches `powi`: a `u32`
    /// attempt count cast straight to `i32` wraps negative past
    /// `i32::MAX`, which would *shrink* the delay toward zero exactly
    /// when a caller has been retrying longest. Any growing multiplier
    /// has long since pinned the delay at `max_delay` by attempt 1024,
    /// and a shrinking one has underflowed to zero, so clamping there
    /// changes no reachable schedule while making the arithmetic total.
    pub fn backoff_delay<R: Rng + ?Sized>(&self, attempt: u32, rng: &mut R) -> SimDuration {
        const EXPONENT_SATURATION: u32 = 1024;
        let exponent = attempt.min(EXPONENT_SATURATION) as i32;
        let raw = self.base_delay.as_secs_f64() * self.multiplier.powi(exponent);
        let capped = raw.min(self.max_delay.as_secs_f64());
        let jittered = if self.jitter > 0.0 {
            capped * (1.0 - rng.gen_range(0.0..self.jitter))
        } else {
            capped
        };
        SimDuration::from_secs_f64(jittered)
    }

    /// The virtual times of every attempt, the first at `start`. Length
    /// is `max_attempts`.
    pub fn attempt_times<R: Rng + ?Sized>(&self, start: SimTime, rng: &mut R) -> Vec<SimTime> {
        let mut t = start;
        let mut times = vec![t];
        for attempt in 0..self.max_attempts.saturating_sub(1) {
            t += self.backoff_delay(attempt, rng);
            times.push(t);
        }
        times
    }

    /// Runs `op` until it succeeds or attempts are exhausted. `op`
    /// receives the one-based attempt number. On success returns the
    /// value together with the number of attempts used.
    ///
    /// # Errors
    ///
    /// Returns a [`RetryError`] wrapping the *last* underlying error
    /// after `max_attempts` failures.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn run<T, E, R, F>(&self, rng: &mut R, mut op: F) -> Result<(T, u32), RetryError<E>>
    where
        R: Rng + ?Sized,
        F: FnMut(u32) -> Result<T, E>,
    {
        assert!(self.max_attempts >= 1, "a retry policy needs at least one attempt");
        let mut last = None;
        for attempt in 1..=self.max_attempts {
            match op(attempt) {
                Ok(value) => return Ok((value, attempt)),
                Err(err) => last = Some(err),
            }
            if attempt < self.max_attempts {
                // The backoff draw is consumed even though virtual time is
                // the caller's concern, keeping RNG streams identical
                // between blocking and event-driven users of one policy.
                let _ = self.backoff_delay(attempt - 1, rng);
            }
        }
        Err(RetryError {
            attempts: self.max_attempts,
            // lint:allow(no-panic, reason = "max_attempts >= 1 is asserted above, so the loop body ran")
            last: last.expect("at least one attempt ran"),
        })
    }
}

/// All attempts failed; carries the last underlying error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryError<E> {
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: E,
}

impl<E: fmt::Display> fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gave up after {} attempts: {}", self.attempts, self.last)
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for RetryError<E> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn backoff_grows_and_caps() {
        let mut rng = StdRng::seed_from_u64(1);
        let policy = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        assert_eq!(policy.backoff_delay(0, &mut rng), SimDuration::from_millis(500));
        assert_eq!(policy.backoff_delay(1, &mut rng), SimDuration::from_secs(1));
        assert_eq!(policy.backoff_delay(2, &mut rng), SimDuration::from_secs(2));
        // 500 ms × 2^10 = 512 s, capped at 10 s.
        assert_eq!(policy.backoff_delay(10, &mut rng), SimDuration::from_secs(10));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let policy = RetryPolicy::default(); // jitter 0.5
        for attempt in 0..8 {
            let nominal = (0.5 * 2f64.powi(attempt)).min(10.0);
            for _ in 0..100 {
                let d = policy.backoff_delay(attempt as u32, &mut rng).as_secs_f64();
                assert!(d <= nominal + 1e-9, "delay {d} exceeds nominal {nominal}");
                assert!(d >= nominal * 0.5 - 1e-9, "delay {d} below jitter floor");
            }
        }
    }

    #[test]
    fn run_recovers_from_transient_failures() {
        let mut rng = StdRng::seed_from_u64(3);
        let policy = RetryPolicy::default();
        let mut calls = 0u32;
        let out: Result<(&str, u32), RetryError<&str>> = policy.run(&mut rng, |attempt| {
            calls += 1;
            assert_eq!(attempt, calls);
            if calls < 4 {
                Err("transient")
            } else {
                Ok("recovered")
            }
        });
        assert_eq!(out.unwrap(), ("recovered", 4));
    }

    #[test]
    fn run_exhaustion_reports_the_last_error() {
        let mut rng = StdRng::seed_from_u64(4);
        let policy = RetryPolicy::default();
        let mut calls = 0u32;
        let out: Result<((), u32), RetryError<u32>> = policy.run(&mut rng, |_| {
            calls += 1;
            Err(calls)
        });
        let err = out.unwrap_err();
        assert_eq!(err.attempts, 4);
        assert_eq!(err.last, 4, "the final attempt's error is kept");
        assert!(err.to_string().contains("gave up after 4 attempts"));
    }

    #[test]
    fn disabled_policy_tries_exactly_once() {
        let mut rng = StdRng::seed_from_u64(5);
        let policy = RetryPolicy::disabled();
        let mut calls = 0u32;
        let out: Result<((), u32), RetryError<&str>> = policy.run(&mut rng, |_| {
            calls += 1;
            Err("down")
        });
        assert_eq!(calls, 1);
        assert_eq!(out.unwrap_err().attempts, 1);
    }

    #[test]
    #[should_panic(expected = "a retry policy needs at least one attempt")]
    fn zero_attempt_budget_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let policy = RetryPolicy { max_attempts: 0, ..RetryPolicy::default() };
        let _: Result<((), u32), RetryError<&str>> = policy.run(&mut rng, |_| Err("never"));
    }

    #[test]
    fn zero_attempt_budget_has_empty_schedule() {
        // `attempt_times` saturates rather than panicking: the schedule
        // still contains the initial send, and nothing after it.
        let mut rng = StdRng::seed_from_u64(7);
        let policy = RetryPolicy { max_attempts: 0, ..RetryPolicy::default() };
        let times = policy.attempt_times(SimTime::from_secs(1), &mut rng);
        assert_eq!(times, vec![SimTime::from_secs(1)]);
    }

    #[test]
    fn backoff_saturates_at_the_cap_forever() {
        // Once base × multiplier^k crosses the cap, every later attempt
        // (including ones whose raw value would overflow f64 ranges)
        // stays exactly at the cap.
        let mut rng = StdRng::seed_from_u64(8);
        let policy = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        // 500 ms × 2^5 = 16 s > 10 s cap.
        for attempt in [5, 6, 20, 100, 1000] {
            assert_eq!(
                policy.backoff_delay(attempt, &mut rng),
                policy.max_delay,
                "attempt {attempt} must sit at the cap"
            );
        }
    }

    #[test]
    fn extreme_attempt_counts_cannot_overflow_the_delay() {
        // `attempt as i32` used to wrap negative past i32::MAX, turning
        // `multiplier^attempt` into a denormal and collapsing the delay
        // toward zero for the longest-suffering retriers. The saturated
        // exponent keeps every huge attempt at the cap instead.
        let mut rng = StdRng::seed_from_u64(9);
        let policy = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        for attempt in [1_024, 1_025, i32::MAX as u32, i32::MAX as u32 + 1, u32::MAX] {
            assert_eq!(
                policy.backoff_delay(attempt, &mut rng),
                policy.max_delay,
                "attempt {attempt} must saturate at the cap, not underflow"
            );
        }
        // A shrinking multiplier at an extreme attempt stays at zero
        // rather than bouncing back up through exponent wraparound.
        let decaying = RetryPolicy { multiplier: 0.5, jitter: 0.0, ..RetryPolicy::default() };
        assert_eq!(decaying.backoff_delay(u32::MAX, &mut rng), SimDuration::ZERO);
        // And the jittered path is finite and within the cap too.
        let jittered = RetryPolicy::default().backoff_delay(u32::MAX, &mut rng);
        assert!(jittered <= RetryPolicy::default().max_delay);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// With the default jitter of 0.5, every delay — any attempt,
            /// any seed — lands in `[base/2, cap]`: the nominal delay is
            /// at least `base` and at most the cap, and jitter removes at
            /// most half of it. The tighter per-attempt bound
            /// `[nominal/2, nominal]` is asserted too.
            #[test]
            fn jittered_delay_always_within_base_half_and_cap(
                attempt in 0u32..64,
                seed in 0u64..1_000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let policy = RetryPolicy::default();
                let d = policy.backoff_delay(attempt, &mut rng).as_secs_f64();
                let base = policy.base_delay.as_secs_f64();
                let cap = policy.max_delay.as_secs_f64();
                prop_assert!(
                    d >= base * 0.5 - 1e-9,
                    "delay {} below global floor {}", d, base * 0.5
                );
                prop_assert!(d <= cap + 1e-9, "delay {} above cap {}", d, cap);
                let nominal = (base * policy.multiplier.powi(attempt as i32)).min(cap);
                prop_assert!(d >= nominal * 0.5 - 1e-9);
                prop_assert!(d <= nominal + 1e-9);
            }
        }
    }

    #[test]
    fn attempt_times_are_monotone_and_deterministic() {
        let policy = RetryPolicy::default();
        let start = SimTime::from_secs(100);
        let mut a = StdRng::seed_from_u64(6);
        let mut b = StdRng::seed_from_u64(6);
        let ta = policy.attempt_times(start, &mut a);
        let tb = policy.attempt_times(start, &mut b);
        assert_eq!(ta, tb, "same seed, same schedule");
        assert_eq!(ta.len(), 4);
        assert_eq!(ta[0], start);
        assert!(ta.windows(2).all(|w| w[0] < w[1]));
    }
}
