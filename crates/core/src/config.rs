//! Protocol parameters.

use serde::{Deserialize, Serialize};

use concilium_types::SimDuration;

/// All tunables of the Concilium protocol, with the paper's defaults.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConciliumConfig {
    /// Probe accuracy `a` in Eq. 3 (paper §4.3: 0.9).
    pub probe_accuracy: f64,
    /// Δ: probes initiated within `[t − Δ, t + Δ]` count as evidence for a
    /// drop at time t (paper: "Δ might equal sixty seconds").
    pub delta: SimDuration,
    /// Blame threshold for a guilty verdict (paper §4.3: 40%).
    pub blame_threshold: f64,
    /// Sliding-window size w (paper: 100).
    pub window: usize,
    /// Guilty verdicts within the window that trigger a formal accusation
    /// (paper: m = 6 faithful, m = 16 under 20% collusion).
    pub guilty_quota: usize,
    /// Maximum age of jump-table freshness stamps.
    pub freshness_max_age: SimDuration,
    /// γ for the jump-table density test.
    pub density_gamma: f64,
    /// γ for Castro's leaf-set spacing test.
    pub leaf_gamma: f64,
    /// DHT replication factor for stored accusations.
    pub dht_replication: usize,
}

impl Default for ConciliumConfig {
    fn default() -> Self {
        ConciliumConfig {
            probe_accuracy: 0.9,
            delta: SimDuration::from_secs(60),
            blame_threshold: 0.4,
            window: 100,
            guilty_quota: 6,
            freshness_max_age: SimDuration::from_secs(300),
            density_gamma: 1.5,
            leaf_gamma: 2.0,
            dht_replication: 4,
        }
    }
}

impl ConciliumConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range.
    pub fn validate(&self) {
        assert!(
            self.probe_accuracy > 0.5 && self.probe_accuracy <= 1.0,
            "probe accuracy must be in (0.5, 1], got {}",
            self.probe_accuracy
        );
        assert!(
            (0.0..=1.0).contains(&self.blame_threshold),
            "blame threshold must be in [0,1], got {}",
            self.blame_threshold
        );
        assert!(self.window > 0, "window must be positive");
        assert!(
            self.guilty_quota > 0 && self.guilty_quota <= self.window,
            "guilty quota must be in [1, window], got {}",
            self.guilty_quota
        );
        assert!(self.density_gamma >= 1.0, "density gamma must be ≥ 1");
        assert!(self.leaf_gamma >= 1.0, "leaf gamma must be ≥ 1");
        assert!(self.dht_replication > 0, "replication must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ConciliumConfig::default();
        c.validate();
        assert_eq!(c.probe_accuracy, 0.9);
        assert_eq!(c.delta, SimDuration::from_secs(60));
        assert_eq!(c.blame_threshold, 0.4);
        assert_eq!(c.window, 100);
        assert_eq!(c.guilty_quota, 6);
    }

    #[test]
    #[should_panic(expected = "guilty quota")]
    fn quota_above_window_rejected() {
        let c = ConciliumConfig { guilty_quota: 101, ..Default::default() };
        c.validate();
    }
}
