//! Criterion benches for the Figure 4 kernels: probe-tree construction,
//! forest assembly, and coverage computation over a built world.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use concilium_sim::{SimConfig, SimWorld};
use concilium_tomography::Forest;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_forest(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(41);
    let world = SimWorld::build(SimConfig::small(), &mut rng);
    let host = 0usize;
    let peer_trees: Vec<_> = world
        .peers_of(host)
        .iter()
        .map(|&p| world.tree(p).clone())
        .collect();

    let mut g = c.benchmark_group("fig4/forest");
    g.bench_function("assemble", |b| {
        b.iter(|| Forest::new(black_box(world.tree(host)), black_box(&peer_trees)))
    });
    let forest = Forest::new(world.tree(host), &peer_trees);
    g.bench_function("coverage_curve", |b| b.iter(|| forest.coverage_curve()));
    g.bench_function("vouch_counts", |b| b.iter(|| forest.vouch_counts()));
    g.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let world = SimWorld::build(SimConfig::small(), &mut rng);
    let tree = world.tree(0);
    let mut g = c.benchmark_group("fig4/tree");
    g.bench_function("link_set", |b| b.iter(|| tree.link_set()));
    g.bench_function("logical_collapse", |b| b.iter(|| tree.logical()));
    g.finish();
}

criterion_group!(benches, bench_forest, bench_tree);
criterion_main!(benches);
