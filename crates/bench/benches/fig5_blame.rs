//! Criterion benches for the Figure 5 kernels: Eq. 2/3 blame evaluation
//! and evidence gathering, plus the fuzzy-vs-noisy-OR ablation and the
//! probe-exclusion ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use concilium::blame::{blame_from_path_evidence, blame_with_noisy_or, LinkEvidence};
use concilium_sim::{SimConfig, SimWorld};
use concilium_types::{LinkId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_evidence(links: usize, probes: usize, seed: u64) -> Vec<LinkEvidence> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..links)
        .map(|i| LinkEvidence {
            link: LinkId(i as u32),
            observations: (0..probes).map(|_| rng.gen_bool(0.9)).collect(),
        })
        .collect()
}

fn bench_blame(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/blame_eq2");
    for (links, probes) in [(5usize, 4usize), (15, 10), (30, 40)] {
        let ev = synthetic_evidence(links, probes, 7);
        g.bench_with_input(
            BenchmarkId::new("fuzzy_max", format!("{links}links_{probes}probes")),
            &ev,
            |b, ev| b.iter(|| blame_from_path_evidence(black_box(ev), 0.9)),
        );
    }
    // Ablation: fuzzy max vs noisy-OR combination.
    let ev = synthetic_evidence(15, 10, 8);
    g.bench_function("ablation_noisy_or", |b| {
        b.iter(|| blame_with_noisy_or(black_box(&ev), 0.9))
    });
    g.finish();
}

fn bench_evidence_gathering(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(51);
    let world = SimWorld::build(SimConfig::small(), &mut rng);
    let judge = 0usize;
    let b_host = world.peers_of(judge)[0];
    let c_host = world.peers_of(b_host)[0];
    let c_id = world.node(c_host).id();
    let path = world.path_to_peer(b_host, c_id).unwrap().clone();
    let t = SimTime::from_secs(900);
    let delta = SimDuration::from_secs(60);

    let mut g = c.benchmark_group("fig5/evidence");
    g.bench_function("probe_evidence_one_link", |b| {
        let link = path.links()[0];
        b.iter(|| world.probe_evidence(judge, black_box(link), t, delta, Some(b_host)))
    });
    g.bench_function("judge_one_drop_full_path", |b| {
        b.iter(|| {
            let per_link: Vec<LinkEvidence> = path
                .links()
                .iter()
                .map(|&link| LinkEvidence {
                    link,
                    observations: world
                        .probe_evidence(judge, link, t, delta, Some(b_host))
                        .into_iter()
                        .map(|(_, up)| up)
                        .collect(),
                })
                .collect();
            blame_from_path_evidence(&per_link, 0.9)
        })
    });
    // Ablation: including the accused's own probes (the paper's rule
    // excludes them; this measures the cost difference, the accuracy
    // difference is covered by the experiments binary).
    g.bench_function("judge_without_exclusion_ablation", |b| {
        b.iter(|| {
            let per_link: Vec<LinkEvidence> = path
                .links()
                .iter()
                .map(|&link| LinkEvidence {
                    link,
                    observations: world
                        .probe_evidence(judge, link, t, delta, None)
                        .into_iter()
                        .map(|(_, up)| up)
                        .collect(),
                })
                .collect();
            blame_from_path_evidence(&per_link, 0.9)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_blame, bench_evidence_gathering);
criterion_main!(benches);
