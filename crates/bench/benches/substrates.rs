//! Criterion benches for the substrate crates: hashing/signing, overlay
//! construction and routing, topology generation and BFS, striped-probe
//! simulation and MLE inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use concilium_crypto::{sha256, CertificateAuthority, KeyPair};
use concilium_overlay::{build_overlay, RoutingMode};
use concilium_tomography::infer::infer_pass_rates;
use concilium_tomography::probe::simulate_stripes;
use concilium_topology::{generate, BfsTree, TransitStubConfig};
use concilium_types::{HostAddr, Id, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates/crypto");
    for size in [64usize, 1_024, 16_384] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(black_box(d)))
        });
    }
    g.finish();

    let mut rng = StdRng::seed_from_u64(1);
    let keys = KeyPair::generate(&mut rng);
    let msg = vec![0x5au8; 256];
    let sig = keys.sign(&msg, &mut rng);
    c.bench_function("substrates/schnorr_sign", |b| {
        b.iter(|| keys.sign(black_box(&msg), &mut rng))
    });
    c.bench_function("substrates/schnorr_verify", |b| {
        b.iter(|| keys.public().verify(black_box(&msg), &sig))
    });
}

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates/topology");
    g.sample_size(10);
    g.bench_function("generate_small", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| generate(&TransitStubConfig::small(), &mut rng))
    });
    let mut rng = StdRng::seed_from_u64(3);
    let topo = generate(&TransitStubConfig::medium(), &mut rng);
    g.bench_function("bfs_medium_topology", |b| {
        let src = topo.end_hosts[0];
        b.iter(|| BfsTree::compute(&topo.graph, black_box(src)))
    });
    g.finish();
}

fn bench_overlay(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let ca = CertificateAuthority::new(&mut rng);
    let nodes: Vec<_> = (0..256u32)
        .map(|i| {
            let keys = KeyPair::generate(&mut rng);
            let cert = ca.issue(HostAddr(i.into()), keys.public(), &mut rng);
            (cert, keys)
        })
        .collect();

    let mut g = c.benchmark_group("substrates/overlay");
    g.sample_size(10);
    g.bench_function("build_overlay_256", |b| {
        b.iter(|| build_overlay(&nodes, 16, SimTime::ZERO, None, &mut rng))
    });
    g.finish();

    let overlay = build_overlay(&nodes, 16, SimTime::ZERO, None, &mut rng);
    let mut rng2 = StdRng::seed_from_u64(5);
    c.bench_function("substrates/next_hop", |b| {
        b.iter(|| {
            let target = Id::random(&mut rng2);
            overlay[0].next_hop(black_box(target), RoutingMode::Secure)
        })
    });
}

fn bench_tomography(c: &mut Criterion) {
    // A realistic tree: from a built small world.
    let mut rng = StdRng::seed_from_u64(6);
    let world = concilium_sim::SimWorld::build(concilium_sim::SimConfig::small(), &mut rng);
    let logical = world.tree(0).logical();

    let mut g = c.benchmark_group("substrates/tomography");
    g.bench_function("simulate_1000_stripes", |b| {
        b.iter(|| simulate_stripes(&logical, &|_| 0.95, 1_000, &mut rng))
    });
    let record = simulate_stripes(&logical, &|_| 0.95, 1_000, &mut rng);
    g.bench_function("mle_inference", |b| {
        b.iter(|| infer_pass_rates(&logical, black_box(&record)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_crypto, bench_topology, bench_overlay, bench_tomography);
criterion_main!(benches);
