//! Criterion benches for the Figure 6 kernels: sliding-window updates and
//! the binomial error model, including the window-size sweep ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use concilium::verdict::{accusation_error_curve, binomial_tail_at_least, Verdict, VerdictWindow};

fn bench_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/verdict_window");
    for w in [20usize, 100, 1_000] {
        g.bench_with_input(BenchmarkId::new("push_evict", w), &w, |b, &w| {
            let mut window = VerdictWindow::new(w);
            // Pre-fill so every push evicts.
            for _ in 0..w {
                window.push(Verdict::Innocent);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                window.push(if i.is_multiple_of(7) { Verdict::Guilty } else { Verdict::Innocent });
                black_box(window.should_accuse(6))
            });
        });
    }
    g.finish();
}

fn bench_binomial(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/binomial_model");
    g.bench_function("tail_at_least_m16_w100", |b| {
        b.iter(|| binomial_tail_at_least(100, black_box(16), black_box(0.084)))
    });
    g.bench_function("full_curve_w100", |b| {
        b.iter(|| accusation_error_curve(100, black_box(0.018), black_box(0.938)))
    });
    // Ablation: cost as the window grows.
    for w in [100usize, 500, 2_000] {
        g.bench_with_input(BenchmarkId::new("curve_by_window", w), &w, |b, &w| {
            b.iter(|| accusation_error_curve(w, 0.018, 0.938))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_window, bench_binomial);
criterion_main!(benches);
