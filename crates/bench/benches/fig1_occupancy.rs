//! Criterion benches for the Figure 1 kernels: the analytic occupancy
//! model and the Monte-Carlo table sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use concilium_overlay::montecarlo::sample_occupancy_once;
use concilium_overlay::occupancy::OccupancyModel;
use concilium_types::IdSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/occupancy_model");
    for n in [1_131usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("build", n), &n, |b, &n| {
            b.iter(|| OccupancyModel::new(IdSpace::DEFAULT, black_box(n)));
        });
    }
    let model = OccupancyModel::new(IdSpace::DEFAULT, 1_131);
    g.bench_function("cdf", |b| b.iter(|| model.cdf(black_box(40.0))));
    g.bench_function("pmf_full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in 0..=IdSpace::DEFAULT.table_slots() {
                acc += model.pmf(d);
            }
            acc
        })
    });
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/monte_carlo");
    for n in [1_131usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("sample_table", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sample_occupancy_once(IdSpace::DEFAULT, black_box(n), &mut rng));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_model, bench_monte_carlo);
criterion_main!(benches);
