//! Criterion benches for the end-to-end protocol objects: accusations
//! (build + third-party verify), revision chains, rebuttals, and the
//! accusation DHT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

use concilium::accusation::{Accusation, DropContext};
use concilium::dht::AccusationDht;
use concilium::revision::AccusationChain;
use concilium::{ConciliumConfig, ForwardingCommitment};
use concilium_crypto::{KeyPair, PublicKey};
use concilium_tomography::{LinkObservation, TomographySnapshot};
use concilium_types::{Id, LinkId, MsgId, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    rng: StdRng,
    keys: HashMap<Id, KeyPair>,
    config: ConciliumConfig,
}

impl Fixture {
    fn new() -> Self {
        let mut rng = StdRng::seed_from_u64(71);
        let mut keys = HashMap::new();
        for i in 1..=40u64 {
            keys.insert(Id::from_u64(i), KeyPair::generate(&mut rng));
        }
        Fixture { rng, keys, config: ConciliumConfig::default() }
    }

    fn accusation(&mut self, msg: u64, accuser: u64, accused: u64, witnesses: usize) -> Accusation {
        let t = SimTime::from_secs(100);
        let ctx = DropContext {
            msg: MsgId(msg),
            accuser: Id::from_u64(accuser),
            accused: Id::from_u64(accused),
            next_hop: Id::from_u64(accused + 1),
            dest: Id::from_u64(39),
            at: t,
        };
        let commitment = ForwardingCommitment::issue(
            ctx.msg,
            ctx.accuser,
            ctx.accused,
            ctx.dest,
            t,
            &self.keys[&ctx.accused].clone(),
            &mut self.rng,
        );
        let path_links: Vec<LinkId> = (0..12).map(LinkId).collect();
        let evidence: Vec<TomographySnapshot> = (0..witnesses as u64)
            .map(|w| {
                let origin = Id::from_u64(10 + w);
                TomographySnapshot::new_signed(
                    origin,
                    t,
                    path_links
                        .iter()
                        .map(|&l| LinkObservation::binary(l, true))
                        .collect(),
                    &self.keys[&origin].clone(),
                    &mut self.rng,
                )
            })
            .collect();
        Accusation::build(
            ctx,
            commitment,
            path_links,
            evidence,
            &self.config,
            &self.keys[&ctx.accuser].clone(),
            &mut self.rng,
        )
    }
}

fn bench_accusation(c: &mut Criterion) {
    let mut fx = Fixture::new();
    let mut g = c.benchmark_group("protocol/accusation");
    for witnesses in [0usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("build", witnesses), &witnesses, |b, &w| {
            let mut fx = Fixture::new();
            b.iter(|| fx.accusation(1, 1, 2, w));
        });
        let acc = fx.accusation(1, 1, 2, witnesses);
        let keys: HashMap<Id, PublicKey> =
            fx.keys.iter().map(|(i, k)| (*i, k.public())).collect();
        let key_of = move |id: Id| keys.get(&id).copied();
        g.bench_with_input(BenchmarkId::new("verify", witnesses), &acc, |b, acc| {
            b.iter(|| acc.verify(&key_of, &fx.config).unwrap());
        });
    }
    g.finish();
}

fn bench_chain(c: &mut Criterion) {
    let mut fx = Fixture::new();
    let keys: HashMap<Id, PublicKey> = fx.keys.iter().map(|(i, k)| (*i, k.public())).collect();
    let key_of = move |id: Id| keys.get(&id).copied();
    let mut chain = AccusationChain::new(fx.accusation(5, 1, 2, 2));
    chain.amend(fx.accusation(5, 2, 3, 2)).unwrap();
    chain.amend(fx.accusation(5, 3, 4, 0)).unwrap();
    c.bench_function("protocol/chain_verify_3_links", |b| {
        b.iter(|| chain.verify(&key_of, &fx.config).unwrap())
    });
}

fn bench_dht(c: &mut Criterion) {
    let mut fx = Fixture::new();
    let members: Vec<Id> = (0..1_131u64).map(|i| Id::from_u64(i * 7_919)).collect();
    let accused_pk = fx.keys[&Id::from_u64(2)].public();
    let acc = fx.accusation(9, 1, 2, 2);

    let mut g = c.benchmark_group("protocol/dht");
    g.bench_function("replica_selection_1131", |b| {
        let dht = AccusationDht::new(members.clone(), 4);
        let key = AccusationDht::key_for(&accused_pk);
        b.iter(|| dht.replicas(black_box(key)))
    });
    g.bench_function("insert", |b| {
        let mut dht = AccusationDht::new(members.clone(), 4);
        b.iter(|| dht.insert(&accused_pk, acc.clone()))
    });
    g.bench_function("fetch", |b| {
        let mut dht = AccusationDht::new(members.clone(), 4);
        dht.insert(&accused_pk, acc.clone());
        b.iter(|| dht.fetch(&accused_pk).len())
    });
    g.finish();
}

criterion_group!(benches, bench_accusation, bench_chain, bench_dht);
criterion_main!(benches);
