//! Criterion benches for the Figures 2–3 kernels: the density-test error
//! equations and γ optimisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use concilium_overlay::density::jump_table_too_sparse;
use concilium_overlay::occupancy::DensityScenario;
use concilium_types::IdSpace;

fn bench_error_rates(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig23/error_rates");
    let scenario = DensityScenario::new(IdSpace::DEFAULT, 1_131, 0.2, false);
    g.bench_function("false_positive", |b| {
        b.iter(|| scenario.false_positive(black_box(1.5)))
    });
    g.bench_function("false_negative", |b| {
        b.iter(|| scenario.false_negative(black_box(1.5)))
    });
    for suppression in [false, true] {
        g.bench_with_input(
            BenchmarkId::new("optimal_gamma", suppression),
            &suppression,
            |b, &s| {
                let scenario = DensityScenario::new(IdSpace::DEFAULT, 1_131, 0.2, s);
                b.iter(|| scenario.optimal_gamma());
            },
        );
    }
    g.finish();
}

fn bench_density_test(c: &mut Criterion) {
    // The per-advertisement check every host runs online.
    c.bench_function("fig23/density_check", |b| {
        b.iter(|| jump_table_too_sparse(black_box(28), black_box(36), black_box(1.5)))
    });
}

criterion_group!(benches, bench_error_rates, bench_density_test);
criterion_main!(benches);
