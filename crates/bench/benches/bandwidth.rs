//! Criterion benches for the §4.4 bandwidth model (cheap, but included so
//! every paper artifact has a bench target) and the snapshot encoding it
//! prices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use concilium::bandwidth::BandwidthModel;
use concilium_crypto::{KeyPair, Signable};
use concilium_tomography::{LinkObservation, TomographySnapshot};
use concilium_types::{Id, LinkId, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_model(c: &mut Criterion) {
    let model = BandwidthModel::default();
    let mut g = c.benchmark_group("bandwidth/model");
    for n in [1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("expected_table_bytes", n), &n, |b, &n| {
            b.iter(|| model.expected_routing_state_bytes(black_box(n)))
        });
    }
    g.bench_function("heavyweight_probe_bytes", |b| {
        b.iter(|| model.heavyweight_probe_bytes(black_box(77)))
    });
    g.finish();
}

fn bench_snapshot_encoding(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(61);
    let keys = KeyPair::generate(&mut rng);
    let mut g = c.benchmark_group("bandwidth/snapshot");
    for links in [16usize, 77, 640] {
        let observations: Vec<LinkObservation> = (0..links)
            .map(|i| LinkObservation::binary(LinkId(i as u32), i % 7 != 0))
            .collect();
        g.bench_with_input(BenchmarkId::new("sign", links), &observations, |b, obs| {
            b.iter(|| {
                TomographySnapshot::new_signed(
                    Id::from_u64(1),
                    SimTime::from_secs(1),
                    obs.clone(),
                    &keys,
                    &mut rng,
                )
            })
        });
        let snap = TomographySnapshot::new_signed(
            Id::from_u64(1),
            SimTime::from_secs(1),
            observations.clone(),
            &keys,
            &mut rng,
        );
        g.bench_with_input(BenchmarkId::new("verify", links), &snap, |b, s| {
            b.iter(|| s.verify(&keys.public()))
        });
        g.bench_with_input(BenchmarkId::new("wire_bytes", links), &snap, |b, s| {
            b.iter(|| s.to_signable_vec().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_model, bench_snapshot_encoding);
criterion_main!(benches);
