//! Figure 4: trees sampled vs forest coverage.
//!
//! "If a node probes only its own tree, it can gather tomographic data
//! for 25% of its forest links. Increasing the number of included peer
//! trees results in large initial gains, but the improvement in coverage
//! diminishes as more trees are included."

use concilium_sim::SimWorld;
use concilium_tomography::Forest;

/// One point of the coverage curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Row {
    /// Number of peer trees included (0 = own tree only).
    pub trees: usize,
    /// Mean fraction of forest links covered, over sampled hosts.
    pub coverage: f64,
    /// Mean vouching trees per covered link.
    pub vouchers: f64,
    /// Hosts contributing to this point (hosts with ≥ `trees` peers).
    pub hosts: usize,
}

/// Runs the experiment over up to `host_sample` hosts of a built world.
pub fn run(world: &SimWorld, host_sample: usize) -> Vec<Row> {
    run_jobs(world, host_sample, 1)
}

/// [`run`] with the per-host forest construction spread over `jobs`
/// workers. Forest assembly is a pure function of the world, so the rows
/// are identical at any worker count.
pub fn run_jobs(world: &SimWorld, host_sample: usize, jobs: usize) -> Vec<Row> {
    let n = world.num_hosts().min(host_sample);
    let hosts: Vec<usize> = (0..n).collect();
    let forests = concilium_par::par_map(jobs, &hosts, |_, &h| {
        let peer_trees: Vec<_> = world
            .peers_of(h)
            .iter()
            .map(|&p| world.tree(p).clone())
            .collect();
        Forest::new(world.tree(h), &peer_trees)
    });
    // num_trees counts the host's own tree too; peers = num_trees - 1.
    let max_peers = forests.iter().map(|f| f.num_trees() - 1).max().unwrap_or(0);

    let mut rows = Vec::new();
    for k in 0..=max_peers {
        let mut cov = 0.0;
        let mut vouch = 0.0;
        let mut count = 0usize;
        for f in &forests {
            if k < f.num_trees() {
                cov += f.coverage_with(k);
                vouch += f.mean_vouchers_with(k);
                count += 1;
            }
        }
        if count == 0 {
            break;
        }
        rows.push(Row {
            trees: k,
            coverage: cov / count as f64,
            vouchers: vouch / count as f64,
            hosts: count,
        });
    }
    rows
}

/// Prints the curve, thinned for readability.
pub fn print(rows: &[Row]) {
    println!("Figure 4 — trees sampled vs forest coverage");
    println!(
        "{:>11}  {:>10} {:>14} {:>7}",
        "peer trees", "coverage", "vouchers/link", "hosts"
    );
    for (i, r) in rows.iter().enumerate() {
        let thin = rows.len() > 30 && i % (rows.len() / 25).max(1) != 0 && i != rows.len() - 1;
        if !thin {
            println!(
                "{:>11}  {:>9.1}% {:>14.2} {:>7}",
                r.trees,
                100.0 * r.coverage,
                r.vouchers,
                r.hosts
            );
        }
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_sim::SimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn coverage_curve_shape() {
        let mut rng = StdRng::seed_from_u64(401);
        let world = SimWorld::build(SimConfig::small(), &mut rng);
        let rows = run(&world, 10);
        assert!(rows.len() > 4);
        // Monotone coverage, growing vouchers.
        for w in rows.windows(2) {
            assert!(w[1].coverage + 1e-9 >= w[0].coverage);
        }
        assert!(rows.last().unwrap().vouchers > rows[0].vouchers);
        // Own tree covers a strict subset of the forest.
        assert!(rows[0].coverage < 0.9);
    }

    #[test]
    fn parallel_rows_match_serial() {
        let mut rng = StdRng::seed_from_u64(402);
        let world = SimWorld::build(SimConfig::small(), &mut rng);
        assert_eq!(run(&world, 10), run_jobs(&world, 10, 4));
    }
}
