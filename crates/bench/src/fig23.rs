//! Figures 2 and 3: density-test error rates.
//!
//! Figure 2 sweeps the γ threshold and the colluding fraction c without
//! suppression attacks; Figure 3 repeats the sweep with suppression
//! attacks (the "appropriately skewed versions of N"). Panel (c) of each
//! figure picks, per c, the γ minimising the sum of the two error rates.

use concilium_overlay::occupancy::{DensityScenario, GammaChoice};
use concilium_types::IdSpace;

/// One (γ, c) grid point of panels (a) and (b).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepRow {
    /// Colluding fraction c.
    pub c: f64,
    /// Density-test threshold γ.
    pub gamma: f64,
    /// False-positive rate.
    pub false_positive: f64,
    /// False-negative rate.
    pub false_negative: f64,
}

/// One panel-(c) point: the optimal γ for a colluding fraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptimalRow {
    /// Colluding fraction c.
    pub c: f64,
    /// The γ minimising fp + fn, with its error rates.
    pub choice: GammaChoice,
}

/// Collusion fractions plotted by the paper's figures.
pub const FRACTIONS: [f64; 3] = [0.1, 0.2, 0.3];

/// Overlay size used for the analysis (the evaluation's 1,131 nodes).
pub const N: usize = 1_131;

/// Panels (a)+(b): γ sweep at each collusion fraction.
pub fn sweep(suppression: bool) -> Vec<SweepRow> {
    let mut out = Vec::new();
    for &c in &FRACTIONS {
        let scenario = DensityScenario::new(IdSpace::DEFAULT, N, c, suppression);
        let mut gamma = 1.0;
        while gamma <= 3.0 + 1e-9 {
            out.push(SweepRow {
                c,
                gamma,
                false_positive: scenario.false_positive(gamma),
                false_negative: scenario.false_negative(gamma),
            });
            gamma += 0.1;
        }
    }
    out
}

/// Panel (c): optimal-γ misclassification across collusion fractions.
pub fn optimal_curve(suppression: bool) -> Vec<OptimalRow> {
    (1..=8)
        .map(|k| {
            let c = k as f64 * 0.05;
            let choice =
                DensityScenario::new(IdSpace::DEFAULT, N, c, suppression).optimal_gamma();
            OptimalRow { c, choice }
        })
        .collect()
}

/// Prints both panels for one figure.
pub fn print(figure: &str, suppression: bool) {
    println!(
        "{figure} — density-test error rates ({}suppression attacks), N = {N}",
        if suppression { "with " } else { "no " }
    );
    println!("(a)+(b) γ sweep:");
    println!("{:>5} {:>6}  {:>10} {:>10}", "c", "γ", "false pos", "false neg");
    for row in sweep(suppression) {
        // Print a thinned grid for readability.
        if (row.gamma * 10.0).round() as i64 % 5 == 0 {
            println!(
                "{:>5.2} {:>6.2}  {:>10.4} {:>10.4}",
                row.c, row.gamma, row.false_positive, row.false_negative
            );
        }
    }
    println!("(c) optimal γ per c:");
    println!(
        "{:>5}  {:>6}  {:>10} {:>10} {:>10}",
        "c", "γ*", "false pos", "false neg", "sum"
    );
    for row in optimal_curve(suppression) {
        println!(
            "{:>5.2}  {:>6.2}  {:>10.4} {:>10.4} {:>10.4}",
            row.c,
            row.choice.gamma,
            row.choice.false_positive,
            row.choice.false_negative,
            row.choice.total_error()
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_expected_shape() {
        let rows = sweep(false);
        // At fixed c, fp falls and fn rises with γ.
        let c02: Vec<&SweepRow> = rows.iter().filter(|r| (r.c - 0.2).abs() < 1e-9).collect();
        assert!(c02.first().unwrap().false_positive > c02.last().unwrap().false_positive);
        assert!(c02.first().unwrap().false_negative < c02.last().unwrap().false_negative);
    }

    #[test]
    fn suppression_worsens_optimum() {
        let base = optimal_curve(false);
        let supp = optimal_curve(true);
        for (b, s) in base.iter().zip(&supp) {
            assert!(
                s.choice.total_error() >= b.choice.total_error() - 1e-9,
                "c={}: suppression should not help",
                b.c
            );
        }
    }
}
