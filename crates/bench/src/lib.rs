//! Experiment harness for the Concilium reproduction.
//!
//! One module per figure/table of the paper's evaluation (§4). Each
//! module exposes a `run(...)` function returning printable rows so the
//! same code backs both the `experiments` binary and the Criterion
//! benches. See `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for recorded paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod detection;
pub mod fig1;
pub mod fig23;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod micro;
pub mod stretch;
pub mod system;
pub mod tables;

/// The experiment scale knob shared by the world-building experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// ~90-router topology, seconds to run (CI smoke).
    Tiny,
    /// ~500-router topology.
    Small,
    /// ~11k-router topology, hundreds of overlay nodes.
    Medium,
    /// The paper's SCAN-sized topology with ≈1,131 overlay nodes.
    Paper,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The corresponding simulator configuration.
    pub fn sim_config(self) -> concilium_sim::SimConfig {
        match self {
            Scale::Tiny => concilium_sim::SimConfig::tiny(),
            Scale::Small => concilium_sim::SimConfig::small(),
            Scale::Medium => concilium_sim::SimConfig::medium(),
            Scale::Paper => concilium_sim::SimConfig::paper_scale(),
        }
    }
}
