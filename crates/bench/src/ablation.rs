//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * **Probe exclusion** — §3.4 ignores the judged node's own probes so it
//!   cannot talk its way out of blame. The ablation includes them (with
//!   the accused lying "down" about its path) and measures how far the
//!   faulty-guilty rate collapses.
//! * **Fuzzy max vs noisy-OR** — Eq. 3 combines per-link confidences with
//!   the fuzzy OR (max). The ablation swaps in the probabilistic
//!   noisy-OR and compares both error directions.
//! * **Window size** — Figure 6 fixes w = 100. The ablation sweeps w and
//!   reports the minimal quota m achieving sub-1% errors at each size.

use concilium::blame::{blame_from_path_evidence, blame_with_noisy_or, LinkEvidence};
use concilium::verdict::minimal_m;
use concilium_sim::{Histogram, SimWorld};
use concilium_types::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Guilty rates for one blame-combination rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuleOutcome {
    /// Fraction of faulty-forwarder judgments crossing the threshold.
    pub p_faulty_guilty: f64,
    /// Fraction of network-fault judgments crossing the threshold.
    pub p_good_guilty: f64,
}

/// Result of the exclusion + OR-rule ablations (collected in one pass).
#[derive(Clone, Debug)]
pub struct BlameAblation {
    /// The paper's rule: own probes excluded, fuzzy max.
    pub paper: RuleOutcome,
    /// Own probes included (the accused lies "down" when guilty).
    pub no_exclusion: RuleOutcome,
    /// Noisy-OR combination instead of fuzzy max.
    pub noisy_or: RuleOutcome,
    /// Judgments evaluated per class (faulty, nonfaulty).
    pub samples: (u64, u64),
}

/// Runs the blame-rule ablations over sampled (A, B, C) triples.
///
/// Every judged B is treated as an *intentional* dropper, so under
/// "no exclusion" it fabricates down-probes for its whole path.
pub fn blame_rules<R: Rng + ?Sized>(
    world: &SimWorld,
    triples: usize,
    rng: &mut R,
) -> BlameAblation {
    let mut hist = vec![Histogram::new(20); 6]; // [rule][class] flattened
    sample_rules(world, triples, rng, &mut hist);
    finish(hist)
}

/// Deterministic parallel variant of [`blame_rules`].
///
/// Triples are sampled in fixed chunks, each from its own RNG stream
/// derived from `seed` and the chunk index; per-chunk histograms are merged
/// in chunk order, so the result depends only on `seed`, never on `jobs`.
pub fn blame_rules_par(
    world: &SimWorld,
    triples: usize,
    seed: u64,
    jobs: usize,
) -> BlameAblation {
    const CHUNK: usize = 256;
    let chunks = crate::fig5::chunk_sizes(triples, CHUNK);
    let partials = concilium_par::par_map(jobs, &chunks, |i, &len| {
        let mut rng = StdRng::seed_from_u64(concilium_par::derive_seed(seed, i as u64));
        let mut hist = vec![Histogram::new(20); 6];
        sample_rules(world, len, &mut rng, &mut hist);
        hist
    });
    let mut hist = vec![Histogram::new(20); 6];
    for part in &partials {
        for (acc, p) in hist.iter_mut().zip(part) {
            acc.merge(p);
        }
    }
    finish(hist)
}

fn finish(hist: Vec<Histogram>) -> BlameAblation {
    let threshold = 0.4;
    let idx = |rule: usize, faulty: bool| rule * 2 + usize::from(!faulty);
    let outcome = |rule: usize| RuleOutcome {
        p_faulty_guilty: hist[idx(rule, true)].fraction_at_least(threshold),
        p_good_guilty: hist[idx(rule, false)].fraction_at_least(threshold),
    };
    BlameAblation {
        paper: outcome(0),
        no_exclusion: outcome(1),
        noisy_or: outcome(2),
        samples: (hist[0].count(), hist[1].count()),
    }
}

/// The sampling loop shared by [`blame_rules`] and [`blame_rules_par`].
fn sample_rules<R: Rng + ?Sized>(
    world: &SimWorld,
    triples: usize,
    rng: &mut R,
    hist: &mut [Histogram],
) {
    let n = world.num_hosts();
    let delta = SimDuration::from_secs(60);
    let accuracy = 0.9;
    let duration = world.config().duration.as_micros();
    let idx = |rule: usize, faulty: bool| rule * 2 + usize::from(!faulty);

    let mut sampled = 0usize;
    let mut guard = 0usize;
    while sampled < triples && guard < triples * 20 {
        guard += 1;
        let a = rng.gen_range(0..n);
        let peers_a = world.peers_of(a);
        if peers_a.is_empty() {
            continue;
        }
        let b = peers_a[rng.gen_range(0..peers_a.len())];
        let peers_b = world.peers_of(b);
        if peers_b.is_empty() {
            continue;
        }
        let c = peers_b[rng.gen_range(0..peers_b.len())];
        if c == a || c == b {
            continue;
        }
        sampled += 1;
        let t = SimTime::from_micros(
            rng.gen_range(delta.as_micros()..duration - delta.as_micros()),
        );
        let c_id = world.node(c).id();
        let path = world.path_to_peer(b, c_id).expect("C is B's peer");
        let faulty = world.path_up_at(path, t);

        // Evidence under the paper's rule (B excluded).
        let honest: Vec<LinkEvidence> = path
            .links()
            .iter()
            .map(|&link| LinkEvidence {
                link,
                observations: world
                    .probe_evidence(a, link, t, delta, Some(b))
                    .into_iter()
                    .map(|(_, up)| up)
                    .collect(),
            })
            .collect();
        // Evidence with B included: B's own (lying) probes claim every
        // path link was down whenever B is guilty; when B is innocent it
        // reports honestly (its tree covers the B→C path by definition).
        // B contributes one observation per probe round it ran inside the
        // evidence window, matching the cadence of honest witnesses.
        let b_rounds = world.archive(b).rounds_in_window(t, delta).len().max(1);
        let with_b: Vec<LinkEvidence> = honest
            .iter()
            .map(|e| {
                let mut obs = e.observations.clone();
                for _ in 0..b_rounds {
                    obs.push(if faulty { false } else { !world.link_up_at(e.link, t) });
                }
                LinkEvidence { link: e.link, observations: obs }
            })
            .collect();

        hist[idx(0, faulty)].add(blame_from_path_evidence(&honest, accuracy));
        hist[idx(1, faulty)].add(blame_from_path_evidence(&with_b, accuracy));
        hist[idx(2, faulty)].add(blame_with_noisy_or(&honest, accuracy));
    }
}

/// The window-size ablation: minimal m for sub-1% errors per window size.
pub fn window_sweep(p_good: f64, p_faulty: f64) -> Vec<(usize, Option<usize>)> {
    [20usize, 50, 100, 200, 500]
        .into_iter()
        .map(|w| (w, minimal_m(w, p_good, p_faulty, 0.01)))
        .collect()
}

/// Prints everything.
pub fn print(ablation: &BlameAblation) {
    println!("Ablation — blame rules (threshold 40%)");
    println!(
        "  samples: {} faulty-B judgments, {} network-fault judgments",
        ablation.samples.0, ablation.samples.1
    );
    println!(
        "{:>28}  {:>14} {:>14}",
        "rule", "faulty guilty", "innocent guilty"
    );
    for (name, o) in [
        ("paper (exclude B, fuzzy max)", ablation.paper),
        ("include accused's probes", ablation.no_exclusion),
        ("noisy-OR combination", ablation.noisy_or),
    ] {
        println!(
            "{:>28}  {:>13.1}% {:>13.1}%",
            name,
            100.0 * o.p_faulty_guilty,
            100.0 * o.p_good_guilty
        );
    }
    println!();
    println!("Ablation — window size (p_good = 0.018, p_faulty = 0.938)");
    println!("{:>6}  {:>10}", "w", "minimal m");
    for (w, m) in window_sweep(0.018, 0.938) {
        match m {
            Some(m) => println!("{w:>6}  {m:>10}"),
            None => println!("{w:>6}  {:>10}", "none"),
        }
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use concilium_sim::SimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exclusion_rule_matters() {
        let mut rng = StdRng::seed_from_u64(601);
        let world = SimWorld::build(SimConfig::small(), &mut rng);
        let ab = blame_rules(&world, 1_500, &mut rng);
        // Letting the accused vote lets guilty nodes escape: the faulty
        // guilty rate must drop. The effect is bounded by how much honest
        // evidence dilutes the lies, so require a clear but modest gap.
        assert!(
            ab.no_exclusion.p_faulty_guilty < ab.paper.p_faulty_guilty - 0.02,
            "paper {} vs no-exclusion {}",
            ab.paper.p_faulty_guilty,
            ab.no_exclusion.p_faulty_guilty
        );
        // The paper rule itself convicts most guilty forwarders.
        assert!(ab.paper.p_faulty_guilty > 0.7);
    }

    #[test]
    fn exclusion_is_decisive_at_the_chain_end() {
        // §3.5: the true culprit D has no incriminating evidence against
        // it. With exclusion, no evidence → blame 1.0. Without exclusion,
        // D's own fabricated down-probes would fully exonerate it.
        let lying_only = vec![LinkEvidence {
            link: concilium_types::LinkId(0),
            observations: vec![false, false],
        }];
        let with_lies = blame_from_path_evidence(&lying_only, 0.9);
        let excluded = blame_from_path_evidence(
            &[LinkEvidence { link: concilium_types::LinkId(0), observations: vec![] }],
            0.9,
        );
        assert!(with_lies < 0.4, "lies exonerate: {with_lies}");
        assert_eq!(excluded, 1.0, "exclusion pins the culprit");
    }

    #[test]
    fn parallel_ablation_is_jobs_invariant() {
        let mut rng = StdRng::seed_from_u64(603);
        let world = SimWorld::build(SimConfig::small(), &mut rng);
        let serial = blame_rules_par(&world, 600, 42, 1);
        let parallel = blame_rules_par(&world, 600, 42, 4);
        assert_eq!(serial.paper, parallel.paper);
        assert_eq!(serial.no_exclusion, parallel.no_exclusion);
        assert_eq!(serial.noisy_or, parallel.noisy_or);
        assert_eq!(serial.samples, parallel.samples);
        // The parallel path still reproduces the ablation's headline effect.
        assert!(serial.no_exclusion.p_faulty_guilty < serial.paper.p_faulty_guilty);
    }

    #[test]
    fn noisy_or_blames_hosts_less() {
        let mut rng = StdRng::seed_from_u64(602);
        let world = SimWorld::build(SimConfig::small(), &mut rng);
        let ab = blame_rules(&world, 1_500, &mut rng);
        // Noisy-OR multiplies per-link goods, so blame ≤ fuzzy blame:
        // fewer guilty verdicts in BOTH classes.
        assert!(ab.noisy_or.p_faulty_guilty <= ab.paper.p_faulty_guilty + 1e-9);
        assert!(ab.noisy_or.p_good_guilty <= ab.paper.p_good_guilty + 1e-9);
    }

    #[test]
    fn larger_windows_need_proportionally_larger_m() {
        let sweep = window_sweep(0.018, 0.938);
        let at = |w: usize| sweep.iter().find(|(sw, _)| *sw == w).unwrap().1;
        assert!(at(20).is_some());
        let m100 = at(100).unwrap();
        let m500 = at(500).unwrap();
        assert!(m500 > m100, "m grows with w");
    }
}
